//! uLL run-queue scaling controller.
//!
//! Paper §4.1.3: "In the case of a high frequency of uLL workload
//! triggers, we can increase the number of ull_runqueue. In this case,
//! the target run queue for an uLL sandbox is chosen when pausing the
//! sandbox [balanced by] the number of paused sandboxes already
//! associated with each ull_runqueue."
//!
//! This controller decides *how many* reserved queues a host should run:
//! it watches the uLL trigger rate over a sliding window and sizes the
//! reservation so each queue stays below a target trigger rate, bounded
//! by a configured maximum (reserved queues are cores taken away from
//! general workloads — the trade-off the paper's design implies).

use horse_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UllScalerConfig {
    /// Sliding observation window.
    pub window: SimDuration,
    /// Target triggers per second per reserved queue. A 1 µs-sliced
    /// queue can absorb far more, but headroom keeps merge-plan
    /// maintenance cheap.
    pub triggers_per_sec_per_queue: f64,
    /// Lower bound on reserved queues (≥ 1: the fast path always needs a
    /// target).
    pub min_queues: usize,
    /// Upper bound (cores sacrificed from general workloads).
    pub max_queues: usize,
}

impl Default for UllScalerConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_secs(10),
            triggers_per_sec_per_queue: 100.0,
            min_queues: 1,
            max_queues: 8,
        }
    }
}

/// The sliding-window trigger-rate controller.
///
/// # Example
///
/// ```
/// use horse_faas::{UllScaler, UllScalerConfig};
/// use horse_sim::{SimDuration, SimTime};
///
/// let mut scaler = UllScaler::new(UllScalerConfig::default());
/// let t0 = SimTime::ZERO;
/// assert_eq!(scaler.recommended_queues(t0), 1);
/// // A burst of 2500 triggers over one second: 250/s/queue at 1 queue —
/// // the controller asks for more.
/// for i in 0..2_500u64 {
///     scaler.observe_trigger(t0 + SimDuration::from_micros(i * 400));
/// }
/// let after = t0 + SimDuration::from_secs(1);
/// assert!(scaler.recommended_queues(after) >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct UllScaler {
    config: UllScalerConfig,
    triggers: VecDeque<SimTime>,
}

impl UllScaler {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (`min > max`, zero rate or
    /// empty window).
    pub fn new(config: UllScalerConfig) -> Self {
        assert!(config.min_queues >= 1, "at least one uLL queue");
        assert!(config.min_queues <= config.max_queues, "min > max");
        assert!(config.triggers_per_sec_per_queue > 0.0, "zero target rate");
        assert!(config.window > SimDuration::ZERO, "empty window");
        Self {
            config,
            triggers: VecDeque::new(),
        }
    }

    /// Records one uLL trigger (a resume request).
    ///
    /// # Panics
    ///
    /// Panics if timestamps go backwards.
    pub fn observe_trigger(&mut self, at: SimTime) {
        if let Some(&last) = self.triggers.back() {
            assert!(at >= last, "triggers must be observed in time order");
        }
        self.triggers.push_back(at);
    }

    /// Trigger rate over the window ending at `now`, per second.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.expire(now);
        self.triggers.len() as f64 / self.config.window.as_secs_f64()
    }

    /// Recommended number of reserved uLL queues at `now`.
    pub fn recommended_queues(&mut self, now: SimTime) -> usize {
        let rate = self.rate(now);
        let wanted = (rate / self.config.triggers_per_sec_per_queue).ceil() as usize;
        wanted.clamp(self.config.min_queues, self.config.max_queues)
    }

    fn expire(&mut self, now: SimTime) {
        let horizon = self.config.window;
        while let Some(&front) = self.triggers.front() {
            if now.since(front.min(now)) > horizon {
                self.triggers.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn scaler(per_queue: f64, max: usize) -> UllScaler {
        UllScaler::new(UllScalerConfig {
            window: SimDuration::from_secs(1),
            triggers_per_sec_per_queue: per_queue,
            min_queues: 1,
            max_queues: max,
        })
    }

    #[test]
    fn idle_host_needs_one_queue() {
        let mut s = scaler(10.0, 8);
        assert_eq!(s.recommended_queues(t(0)), 1);
        assert_eq!(s.rate(t(500)), 0.0);
    }

    #[test]
    fn scaling_tracks_rate() {
        let mut s = scaler(10.0, 8);
        for i in 0..25 {
            s.observe_trigger(t(i * 40)); // 25 triggers in 1 s
        }
        assert_eq!(s.recommended_queues(t(1000)), 3, "ceil(25/10)");
    }

    #[test]
    fn recommendation_is_bounded() {
        let mut s = scaler(1.0, 4);
        for i in 0..100 {
            s.observe_trigger(t(i * 10));
        }
        assert_eq!(s.recommended_queues(t(1000)), 4, "clamped at max");
    }

    #[test]
    fn old_triggers_expire() {
        let mut s = scaler(10.0, 8);
        for i in 0..50 {
            s.observe_trigger(t(i));
        }
        assert!(s.recommended_queues(t(100)) >= 5);
        // Two windows later the burst has aged out.
        assert_eq!(s.recommended_queues(t(3_000)), 1);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order_triggers() {
        let mut s = scaler(10.0, 8);
        s.observe_trigger(t(100));
        s.observe_trigger(t(50));
    }

    #[test]
    #[should_panic(expected = "min > max")]
    fn rejects_degenerate_bounds() {
        UllScaler::new(UllScalerConfig {
            min_queues: 5,
            max_queues: 2,
            ..UllScalerConfig::default()
        });
    }
}
