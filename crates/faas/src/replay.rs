//! Trace replay: the keep-alive tax, measured.
//!
//! The paper's §1 motivation rests on the keep-alive economics of FaaS
//! platforms: warm starts require keeping sandboxes around, and how long
//! they are kept (the TTL) decides the warm-hit rate. This harness
//! replays a trace chunk through the platform under a configurable TTL
//! and reports the hit rate and initialization costs — reproducing the
//! trade-off curve from the Azure characterization the paper builds on.

use crate::invocation::StartStrategy;
use crate::platform::{FaasError, FaasPlatform, PlatformConfig};
use crate::pool::KeepAlive;
use crate::registry::FunctionId;
use horse_sim::rng::SeedFactory;
use horse_sim::{SimDuration, SimTime};
use horse_traces::{ArrivalSampler, Trace};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

/// Configuration of one replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Keep-alive policy applied to every function's warm pool.
    pub keep_alive: KeepAlive,
    /// Offset into the trace day.
    pub offset: SimDuration,
    /// Length of the replayed window.
    pub window: SimDuration,
    /// Cap on how many (most invoked) trace functions are replayed, to
    /// bound runtime on large traces.
    pub max_functions: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            keep_alive: KeepAlive::default_ttl(),
            offset: SimDuration::from_secs(600),
            window: SimDuration::from_secs(1_800),
            max_functions: 12,
            seed: 42,
        }
    }
}

/// Outcome of a replay run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayOutcome {
    /// Total invocations replayed.
    pub invocations: u64,
    /// Invocations served by a warm sandbox.
    pub warm_hits: u64,
    /// Invocations that fell back to a cold start.
    pub cold_starts: u64,
    /// Mean initialization time across all invocations, ns.
    pub mean_init_ns: f64,
    /// Sandboxes evicted by keep-alive during the window.
    pub evictions: u64,
}

impl ReplayOutcome {
    /// Warm-hit rate in `[0, 1]` (0 for an empty run).
    pub fn hit_rate(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.invocations as f64
        }
    }
}

/// Replays a trace chunk through a fresh platform under the given
/// keep-alive policy. Every arrival tries a warm start first and falls
/// back to a cold start on a miss (the standard platform behaviour the
/// paper describes in §1).
pub fn replay_trace(trace: &Trace, config: ReplayConfig) -> ReplayOutcome {
    // Pick the busiest functions up to the cap.
    let mut by_traffic: Vec<(usize, u64)> = trace
        .functions()
        .iter()
        .enumerate()
        .map(|(i, f)| (i, f.total_invocations()))
        .collect();
    by_traffic.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let selected: Vec<usize> = by_traffic
        .into_iter()
        .take(config.max_functions)
        .map(|(i, _)| i)
        .collect();

    let mut platform = FaasPlatform::new(PlatformConfig {
        seed: config.seed,
        ..PlatformConfig::default()
    });
    let cfg = SandboxConfig::builder()
        .vcpus(1)
        .ull(true)
        .build()
        .expect("valid");
    // Map trace index -> platform function.
    let mut fn_of = std::collections::HashMap::<usize, FunctionId>::new();
    for &ti in &selected {
        let f = platform.register(&trace.functions()[ti].func, Category::Cat2, cfg);
        platform.set_keep_alive(f, StartStrategy::Warm, config.keep_alive);
        fn_of.insert(ti, f);
    }

    let sampler = ArrivalSampler::new(trace, SeedFactory::new(config.seed));
    let arrivals = sampler.chunk(config.offset, config.window);

    let mut out = ReplayOutcome::default();
    let mut init_sum = 0f64;
    for a in arrivals {
        let Some(&f) = fn_of.get(&a.function) else {
            continue;
        };
        platform.advance_to(SimTime::ZERO + SimDuration::from_nanos(a.at.as_nanos()));
        let record = match platform.invoke(f, StartStrategy::Warm) {
            Ok(r) => {
                out.warm_hits += 1;
                r
            }
            Err(FaasError::NoWarmSandbox { .. }) => {
                out.cold_starts += 1;
                platform
                    .invoke(f, StartStrategy::Cold)
                    .expect("cold starts always succeed")
            }
            Err(e) => panic!("unexpected platform error: {e}"),
        };
        out.invocations += 1;
        init_sum += record.init_ns as f64;
    }
    out.mean_init_ns = if out.invocations == 0 {
        0.0
    } else {
        init_sum / out.invocations as f64
    };
    out.evictions = fn_of
        .values()
        .map(|&f| platform.pool_stats(f, StartStrategy::Warm).evictions)
        .sum();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_traces::SynthConfig;

    fn test_trace() -> Trace {
        SynthConfig {
            apps: 10,
            max_functions_per_app: 2,
            median_rpm: 2.0,
            rate_sigma: 1.0,
            minutes: 60,
            diurnal_amplitude: 0.0,
        }
        .generate(&SeedFactory::new(5))
    }

    fn run(ttl_secs: u64) -> ReplayOutcome {
        replay_trace(
            &test_trace(),
            ReplayConfig {
                keep_alive: KeepAlive::Ttl(SimDuration::from_secs(ttl_secs)),
                offset: SimDuration::from_secs(0),
                window: SimDuration::from_secs(1_200),
                max_functions: 8,
                seed: 5,
            },
        )
    }

    #[test]
    fn accounting_is_consistent() {
        let o = run(600);
        assert!(o.invocations > 0);
        assert_eq!(o.invocations, o.warm_hits + o.cold_starts);
        assert!(o.hit_rate() <= 1.0);
        assert!(o.mean_init_ns > 0.0);
    }

    #[test]
    fn longer_ttl_never_hurts_hit_rate() {
        let short = run(30);
        let long = run(1_200);
        assert!(
            long.hit_rate() >= short.hit_rate(),
            "ttl 1200s: {:.3} vs ttl 30s: {:.3}",
            long.hit_rate(),
            short.hit_rate()
        );
        // And a better hit rate means cheaper mean init.
        if long.hit_rate() > short.hit_rate() {
            assert!(long.mean_init_ns < short.mean_init_ns);
        }
        assert!(short.evictions >= long.evictions);
    }

    #[test]
    fn provisioned_mode_reaches_full_hit_rate_after_warmup() {
        let o = replay_trace(
            &test_trace(),
            ReplayConfig {
                keep_alive: KeepAlive::Provisioned,
                offset: SimDuration::from_secs(0),
                window: SimDuration::from_secs(1_200),
                max_functions: 8,
                seed: 5,
            },
        );
        // Only the very first invocation of each function is cold.
        assert!(o.cold_starts <= 8, "cold starts: {}", o.cold_starts);
        assert_eq!(o.evictions, 0);
        assert!(o.hit_rate() > 0.9);
    }

    #[test]
    fn replay_is_deterministic() {
        assert_eq!(run(300), run(300));
    }
}
