//! §5.4 experiment harness: colocating uLL workloads with longer-running
//! functions.
//!
//! The paper triggers the SeBS thumbnail function with arrival times from
//! a 30 s chunk of the Azure traces, while resuming 10 uLL sandboxes per
//! second, and measures the thumbnail latency distribution (mean / p95 /
//! p99) under vanilla and HORSE. The expected result: mean and p95
//! identical (uLL sandboxes are isolated on reserved run queues), p99
//! degraded by at most ≈30 µs (a 𝒫²𝒮ℳ merge thread occasionally
//! preempting a thumbnail instance — merge threads run at the highest
//! priority, §4.1.3).
//!
//! This harness is a discrete-event simulation over `horse-sim`: the
//! thumbnail service times and the preemption penalties are modeled; the
//! uLL resumes execute for real on the VMM substrate to obtain their
//! durations and splice-thread counts.

use horse_metrics::Histogram;
use horse_sched::{CpuTopology, GovernorPolicy, SchedConfig};
use horse_sim::rng::SeedFactory;
use horse_sim::{Engine, SimDuration, SimTime};
use horse_traces::{ArrivalSampler, SynthConfig, Trace};
use horse_vmm::{CostModel, PausePolicy, ResumeMode, SandboxConfig, Vmm};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Configuration of one colocation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocationConfig {
    /// vCPUs of the uLL sandboxes being resumed (paper sweeps 1–36).
    pub ull_vcpus: u32,
    /// uLL resume triggers per second (paper: 10 per 1 s).
    pub ull_triggers_per_sec: u32,
    /// Length of the trace chunk (paper: 30 s).
    pub duration_secs: u64,
    /// Whether uLL resumes use HORSE.
    pub horse: bool,
    /// Master seed.
    pub seed: u64,
}

impl ColocationConfig {
    /// The paper's setup.
    pub fn paper(ull_vcpus: u32, horse: bool, seed: u64) -> Self {
        Self {
            ull_vcpus,
            ull_triggers_per_sec: 10,
            duration_secs: 30,
            horse,
            seed,
        }
    }
}

/// Latency distribution of the thumbnail function over one run.
#[derive(Debug, Clone)]
pub struct ColocationResult {
    /// Completed thumbnail invocations.
    pub invocations: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// 95th percentile latency (ns).
    pub p95_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
    /// Full latency histogram.
    pub histogram: Histogram,
    /// Number of thumbnail instances preempted by merge threads.
    pub preemptions: u64,
}

/// Vanilla-vs-HORSE comparison at one uLL vCPU count.
#[derive(Debug, Clone)]
pub struct ColocationComparison {
    /// uLL sandbox vCPU count of this comparison.
    pub ull_vcpus: u32,
    /// The vanilla run.
    pub vanilla: ColocationResult,
    /// The HORSE run.
    pub horse: ColocationResult,
}

impl ColocationComparison {
    /// Relative p99 degradation of HORSE over vanilla (the paper's
    /// ≤0.00107 %).
    pub fn p99_overhead_pct(&self) -> f64 {
        if self.vanilla.p99_ns == 0 {
            return 0.0;
        }
        100.0 * (self.horse.p99_ns as f64 - self.vanilla.p99_ns as f64) / self.vanilla.p99_ns as f64
    }

    /// Relative mean difference (expected ≈0).
    pub fn mean_overhead_pct(&self) -> f64 {
        if self.vanilla.mean_ns == 0.0 {
            return 0.0;
        }
        100.0 * (self.horse.mean_ns - self.vanilla.mean_ns) / self.vanilla.mean_ns
    }
}

/// Discrete events of the colocation simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A thumbnail invocation arrives (trace-driven).
    ThumbArrival { id: u64, exec_ns: u64 },
    /// A thumbnail invocation finishes.
    ThumbComplete { id: u64, arrived: SimTime },
    /// Ten-per-second uLL resume trigger.
    UllTrigger,
}

/// Runs one colocation simulation.
pub fn run_colocation(config: ColocationConfig) -> ColocationResult {
    let seeds = SeedFactory::new(config.seed);
    let mut svc_rng = seeds.stream("thumb-service");
    let mut preempt_rng = seeds.stream("preempt");

    // Trace-driven arrivals: aggregate a synthetic Azure-like trace and
    // cut the requested chunk from a mid-day window.
    let trace: Trace = SynthConfig {
        apps: 30,
        median_rpm: 8.0,
        ..SynthConfig::default()
    }
    .generate(&seeds);
    let sampler = ArrivalSampler::new(&trace, seeds);
    let mut arrivals = sampler.chunk(
        SimDuration::from_secs(600),
        SimDuration::from_secs(config.duration_secs),
    );
    // The paper sizes the experiment so that "both the uLL workloads and
    // the thumbnail function instances theoretically have enough
    // available cores": thin bursty chunks down to what the host can
    // absorb without queueing (≈30 arrivals/s at 1.2 s service over 70
    // slots), keeping the trace's burst *pattern*.
    let max_arrivals = (config.duration_secs * 30) as usize;
    if arrivals.len() > max_arrivals {
        let step = arrivals.len() as f64 / max_arrivals as f64;
        arrivals = (0..max_arrivals)
            .map(|i| arrivals[(i as f64 * step) as usize])
            .collect();
    }

    // The VMM hosting the uLL sandboxes that get paused/resumed. The
    // resume durations come from real executions on the substrate.
    let mut vmm = Vmm::new(
        SchedConfig {
            topology: CpuTopology::r650(true),
            ull_queues: 1,
            governor_policy: GovernorPolicy::Performance,
            flavor: horse_sched::SchedFlavor::default(),
        },
        CostModel::calibrated(),
    );
    let ull_cfg = SandboxConfig::builder()
        .vcpus(config.ull_vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("valid config");
    let policy = if config.horse {
        PausePolicy::horse()
    } else {
        PausePolicy::vanilla()
    };
    let mode = if config.horse {
        ResumeMode::Horse
    } else {
        ResumeMode::Vanilla
    };
    let pool: Vec<_> = (0..config.ull_triggers_per_sec)
        .map(|_| {
            let id = vmm.create(ull_cfg);
            vmm.start(id).expect("starts");
            vmm.pause(id, policy).expect("pauses");
            id
        })
        .collect();

    // Thumbnail capacity: the r650 has 144 hyperthreads; 2-vCPU
    // instances, minus the reserved uLL queue, leave ample room — the
    // paper designed the experiment "to prevent measurement noise from
    // CPU contention".
    let capacity: u32 = 70;

    let mut engine: Engine<Ev> = Engine::new();
    for (i, a) in arrivals.iter().enumerate() {
        // Thumbnail service time: ≈1.2 s with sub-percent jitter — the
        // SeBS thumbnail does fixed-size work, so its latency is tightly
        // clustered (which is precisely why the paper can observe a
        // ~30 µs p99 shift at all).
        let jitter: f64 = svc_rng.gen_range(0.995..1.012);
        let exec_ns = (1_200_000_000.0 * jitter) as u64;
        engine.schedule(
            a.at,
            Ev::ThumbArrival {
                id: i as u64,
                exec_ns,
            },
        );
    }
    let trigger_period =
        SimDuration::from_nanos(1_000_000_000 / u64::from(config.ull_triggers_per_sec));
    engine.schedule(SimTime::ZERO + trigger_period, Ev::UllTrigger);

    let end = SimTime::ZERO + SimDuration::from_secs(config.duration_secs);
    let mut running: u32 = 0;
    let mut queue: VecDeque<(u64, SimTime, u64)> = VecDeque::new();
    let mut histogram = Histogram::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut preemptions = 0u64;
    let mut next_ull = 0usize;
    // In-flight invocations and their accumulated preemption penalties:
    // each merge thread that lands on a hyperthread running a thumbnail
    // delays that specific invocation (context switches + cache
    // pollution), and an unlucky long-running instance accumulates
    // several such hits over its lifetime — the paper's "extreme case"
    // adds up to ≈30 µs at its p99.
    let mut inflight: Vec<u64> = Vec::new();
    let mut penalty_ns: HashMap<u64, u64> = HashMap::new();

    while let Some((now, ev)) = engine.pop() {
        match ev {
            Ev::ThumbArrival { id, exec_ns } => {
                if now > end {
                    continue;
                }
                if running < capacity {
                    running += 1;
                    inflight.push(id);
                    engine.schedule(
                        now + SimDuration::from_nanos(exec_ns),
                        Ev::ThumbComplete { id, arrived: now },
                    );
                } else {
                    queue.push_back((id, now, exec_ns));
                }
            }
            Ev::ThumbComplete { id, arrived } => {
                let latency = (now - arrived).as_nanos() + penalty_ns.remove(&id).unwrap_or(0);
                inflight.retain(|&x| x != id);
                histogram.record(latency);
                latencies.push(latency);
                running = running.saturating_sub(1);
                if let Some((id, arrived, exec_ns)) = queue.pop_front() {
                    running += 1;
                    inflight.push(id);
                    engine.schedule(
                        now + SimDuration::from_nanos(exec_ns),
                        Ev::ThumbComplete { id, arrived },
                    );
                }
            }
            Ev::UllTrigger => {
                if now > end {
                    continue;
                }
                // Resume one pooled uLL sandbox for real, then re-pause it
                // (it runs its sub-microsecond workload and goes back to
                // the pool).
                let id = pool[next_ull % pool.len()];
                next_ull += 1;
                let outcome = vmm.resume(id, mode).expect("resumes");
                if config.horse && !inflight.is_empty() {
                    // Merge threads run at the highest priority and
                    // preempt whatever occupies their hyperthread. With
                    // up to one thread per resuming vCPU scattered over
                    // 144 hyperthreads, each thread hits a thumbnail
                    // vCPU with probability (2·running/144); most hits
                    // are absorbed by SMT slack, so only a fraction
                    // surfaces as latency.
                    let threads = outcome
                        .merge
                        .map_or(0, |m| m.splices)
                        .max(config.ull_vcpus as usize);
                    let busy = (2.0 * inflight.len() as f64 / 144.0).min(1.0);
                    for _ in 0..threads {
                        if preempt_rng.gen_range(0.0..1.0) < busy * 0.08 {
                            preemptions += 1;
                            let victim = inflight[preempt_rng.gen_range(0..inflight.len())];
                            // Two context switches plus cache pollution.
                            let hit = preempt_rng.gen_range(1_000..=3_000);
                            *penalty_ns.entry(victim).or_default() += hit;
                        }
                    }
                }
                vmm.pause(id, policy).expect("pauses");
                if now + trigger_period <= end {
                    engine.schedule(now + trigger_period, Ev::UllTrigger);
                }
            }
        }
    }

    // Percentiles are computed exactly from the sorted sample: the
    // paper's p99 effect (~30 µs on seconds-scale latencies, 0.00107 %)
    // sits below the log-bucketed histogram's quantization.
    latencies.sort_unstable();
    let exact_pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * latencies.len() as f64).ceil().max(1.0) as usize;
        latencies[rank.min(latencies.len()) - 1]
    };

    ColocationResult {
        invocations: histogram.len(),
        mean_ns: histogram.mean(),
        p95_ns: exact_pct(95.0),
        p99_ns: exact_pct(99.0),
        histogram,
        preemptions,
    }
}

/// Runs both modes and returns the comparison.
pub fn compare_colocation(ull_vcpus: u32, seed: u64) -> ColocationComparison {
    ColocationComparison {
        ull_vcpus,
        vanilla: run_colocation(ColocationConfig::paper(ull_vcpus, false, seed)),
        horse: run_colocation(ColocationConfig::paper(ull_vcpus, true, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_latency_distribution() {
        let r = run_colocation(ColocationConfig::paper(4, false, 7));
        assert!(
            r.invocations > 50,
            "trace chunk should trigger many thumbnails"
        );
        assert!(
            r.mean_ns > 1e9 * 0.8 && r.mean_ns < 1e9 * 2.5,
            "{}",
            r.mean_ns
        );
        assert!(r.p99_ns >= r.p95_ns);
        assert_eq!(r.preemptions, 0, "vanilla never preempts");
    }

    #[test]
    fn mean_and_p95_are_unaffected_by_horse() {
        let cmp = compare_colocation(36, 11);
        assert!(
            cmp.mean_overhead_pct().abs() < 0.01,
            "mean must be within 0.01%: {}",
            cmp.mean_overhead_pct()
        );
        let p95_delta =
            (cmp.horse.p95_ns as f64 - cmp.vanilla.p95_ns as f64).abs() / cmp.vanilla.p95_ns as f64;
        assert!(p95_delta < 0.01, "p95 must match: {p95_delta}");
    }

    #[test]
    fn p99_overhead_is_bounded_like_paper() {
        let cmp = compare_colocation(36, 11);
        let pct = cmp.p99_overhead_pct();
        // Paper: up to 0.00107% (~30µs on seconds-scale latencies). Allow
        // the same order of magnitude.
        assert!(
            pct >= 0.0 || pct.abs() < 0.01,
            "p99 should not improve much: {pct}"
        );
        assert!(pct < 0.05, "p99 overhead must stay tiny: {pct}%");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_colocation(ColocationConfig::paper(8, true, 3));
        let b = run_colocation(ColocationConfig::paper(8, true, 3));
        assert_eq!(a.invocations, b.invocations);
        assert_eq!(a.p99_ns, b.p99_ns);
        assert_eq!(a.preemptions, b.preemptions);
    }
}
