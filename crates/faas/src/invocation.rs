//! Start strategies and invocation records.

use crate::registry::FunctionId;
use serde::{Deserialize, Serialize};

/// How the platform obtains a ready sandbox for an invocation — the
/// paper's four FaaS scenarios (§2 and §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StartStrategy {
    /// Boot a new sandbox from scratch (≈1.5 s).
    Cold,
    /// Restore a FaaSnap-style snapshot (≈1.3 ms).
    Restore,
    /// Resume a paused warm sandbox through the vanilla path (≈1.1 µs at
    /// 1 vCPU).
    Warm,
    /// Resume through HORSE's fast path (≈150 ns, O(1) in vCPUs).
    Horse,
}

impl StartStrategy {
    /// All strategies, in the paper's Figure 4 order.
    pub const ALL: [StartStrategy; 4] = [
        StartStrategy::Cold,
        StartStrategy::Restore,
        StartStrategy::Warm,
        StartStrategy::Horse,
    ];

    /// Label used in tables ("cold", "restore", "warm", "horse").
    pub fn label(self) -> &'static str {
        match self {
            StartStrategy::Cold => "cold",
            StartStrategy::Restore => "restore",
            StartStrategy::Warm => "warm",
            StartStrategy::Horse => "horse",
        }
    }

    /// Whether this strategy consumes a pre-provisioned warm sandbox.
    pub fn needs_warm_pool(self) -> bool {
        matches!(self, StartStrategy::Warm | StartStrategy::Horse)
    }
}

impl std::fmt::Display for StartStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of one function invocation: the two quantities every
/// figure in the paper is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Which function ran.
    pub function: FunctionId,
    /// How the sandbox was obtained.
    pub strategy: StartStrategy,
    /// Time to make the sandbox ready to run the function (ns).
    pub init_ns: u64,
    /// Function execution time (ns).
    pub exec_ns: u64,
    /// Trace id minted for this invocation (0 when telemetry is
    /// disabled); every span the invocation emitted carries it, so a
    /// record links back to its causal trace.
    pub invocation: u64,
}

impl InvocationRecord {
    /// End-to-end pipeline duration.
    pub fn total_ns(&self) -> u64 {
        self.init_ns + self.exec_ns
    }

    /// Fraction of the pipeline spent initializing the sandbox — the
    /// y-axis of the paper's Figures 1 and 4.
    pub fn init_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.init_ns as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_enumerate() {
        assert_eq!(StartStrategy::ALL.len(), 4);
        assert_eq!(StartStrategy::Cold.label(), "cold");
        assert_eq!(StartStrategy::Horse.to_string(), "horse");
        assert!(StartStrategy::Warm.needs_warm_pool());
        assert!(StartStrategy::Horse.needs_warm_pool());
        assert!(!StartStrategy::Cold.needs_warm_pool());
        assert!(!StartStrategy::Restore.needs_warm_pool());
    }

    #[test]
    fn init_share_math() {
        let r = InvocationRecord {
            function: crate::registry::FunctionId::default_for_test(),
            strategy: StartStrategy::Warm,
            init_ns: 1_100,
            exec_ns: 700,
            invocation: 1,
        };
        assert_eq!(r.total_ns(), 1_800);
        assert!((r.init_share() - 1_100.0 / 1_800.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_share_is_zero() {
        let r = InvocationRecord {
            function: crate::registry::FunctionId::default_for_test(),
            strategy: StartStrategy::Cold,
            init_ns: 0,
            exec_ns: 0,
            invocation: 0,
        };
        assert_eq!(r.init_share(), 0.0);
    }
}
