//! Concurrent warm-sandbox pools: the sharded, `&self` counterpart of
//! [`WarmPool`](crate::WarmPool).
//!
//! The single-threaded pool serializes every `take`/`put` behind the
//! platform's `&mut self`; under a multi-threaded front end that lock
//! becomes the bottleneck long before the resume path does. This pool
//! shards its entries so concurrent drivers proceed in parallel:
//!
//! * each shard keeps its warm entries on a **lock-free Treiber stack**
//!   over a fixed slab of nodes (an atomic head packed as
//!   `version << 32 | slot`, ABA-proofed by the version counter) — the
//!   uncontended `take`/`put` fast path is a handful of atomic ops and
//!   takes no lock at all;
//! * entries beyond a shard's slab capacity overflow into a small
//!   mutex-guarded deque (the cold path — reached only when a single
//!   function pools more than [`SHARD_COUNT`]` × `[`SLOTS_PER_SHARD`]
//!   sandboxes);
//! * statistics ([`PoolStats`]) and the keep-alive policy live on
//!   atomics, so readers never block writers.
//!
//! Each driver thread is pinned to a preferred shard (round-robin
//! assignment on first use), which keeps a single-threaded driver on
//! one shard — preserving the exact LIFO reuse order (and therefore the
//! bit-identical benchmark baseline) of the unsharded pool whenever the
//! pool holds at most one shard's capacity.

use crate::pool::{KeepAlive, PoolStats};
use horse_sched::SandboxId;
use horse_sim::{SimDuration, SimTime};
use horse_telemetry::contention::{self, ContentionSite};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per pool (power of two).
pub const SHARD_COUNT: usize = 8;

/// Lock-free slab slots per shard; puts beyond this spill to the
/// shard's mutex-guarded overflow deque.
pub const SLOTS_PER_SHARD: usize = 32;

/// Slot-index sentinel marking an empty stack.
const NIL: u64 = u32::MAX as u64;
/// Low 32 bits of a packed head word: the top-of-stack slot index.
const IDX_MASK: u64 = 0xFFFF_FFFF;

/// Keep-alive encoding on one atomic: `u64::MAX` means provisioned
/// (never expire), anything else is the TTL in nanoseconds.
const PROVISIONED: u64 = u64::MAX;

fn encode_keep_alive(policy: KeepAlive) -> u64 {
    match policy {
        KeepAlive::Provisioned => PROVISIONED,
        KeepAlive::Ttl(ttl) => ttl.as_nanos().min(PROVISIONED - 1),
    }
}

fn decode_keep_alive(raw: u64) -> KeepAlive {
    if raw == PROVISIONED {
        KeepAlive::Provisioned
    } else {
        KeepAlive::Ttl(SimDuration::from_nanos(raw))
    }
}

/// Whether an entry parked at `since_ns` has outlived the keep-alive
/// `ka` (encoded) by time `now_ns`. Mirrors `WarmPool`'s guard against
/// entries stamped in the future: they count as age zero.
fn expired(ka: u64, since_ns: u64, now_ns: u64) -> bool {
    ka != PROVISIONED && now_ns.saturating_sub(since_ns) > ka
}

/// The preferred shard of the calling thread. Driver threads are
/// handed shard slots round-robin on first use, so up to
/// [`SHARD_COUNT`] drivers start out contention-free; the assignment is
/// stable for the thread's lifetime, which keeps a single-threaded
/// driver on exactly one shard (strict LIFO within slab capacity).
fn shard_hint() -> usize {
    static NEXT_DRIVER: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    HINT.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            v = NEXT_DRIVER.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
            h.set(v);
        }
        v
    })
}

/// One slab slot. Payload stores are `Relaxed`; they are published by
/// the `Release` CAS that links the slot into the warm stack and read
/// after the `Acquire` load that observed it there.
#[derive(Debug)]
struct Slot {
    /// Index of the next slot down the stack (warm or free), `NIL` at
    /// the bottom.
    next: AtomicU64,
    /// The pooled sandbox id (valid only while on the warm stack).
    id: AtomicU64,
    /// Pause timestamp in nanoseconds (valid only while on the warm
    /// stack).
    since: AtomicU64,
}

/// Pops the top slot off a packed Treiber stack. The version half of
/// the head word changes on every successful push *and* pop, so a
/// concurrent recycle of the observed top slot (ABA) fails the CAS.
/// Failed CAS iterations are attributed to `site` when the profiling
/// plane is on ([`contention::cas_retry`] is free otherwise).
fn stack_pop(head: &AtomicU64, slots: &[Slot], site: ContentionSite) -> Option<u32> {
    let mut cur = head.load(Ordering::Acquire);
    let mut retries = 0u64;
    loop {
        let idx = cur & IDX_MASK;
        if idx == NIL {
            contention::cas_retry(site, retries);
            return None;
        }
        let next = slots[idx as usize].next.load(Ordering::Relaxed);
        let bumped = ((cur >> 32).wrapping_add(1) << 32) | next;
        match head.compare_exchange_weak(cur, bumped, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                contention::cas_retry(site, retries);
                return Some(idx as u32);
            }
            Err(seen) => {
                retries += 1;
                cur = seen;
            }
        }
    }
}

/// Pushes a slot the caller exclusively owns onto a packed Treiber
/// stack. The `Release` CAS publishes the slot's payload stores.
/// Failed CAS iterations are attributed to `site` like [`stack_pop`]'s.
fn stack_push(head: &AtomicU64, slots: &[Slot], idx: u32, site: ContentionSite) {
    let mut cur = head.load(Ordering::Relaxed);
    let mut retries = 0u64;
    loop {
        slots[idx as usize]
            .next
            .store(cur & IDX_MASK, Ordering::Relaxed);
        let bumped = ((cur >> 32).wrapping_add(1) << 32) | u64::from(idx);
        match head.compare_exchange_weak(cur, bumped, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => {
                contention::cas_retry(site, retries);
                return;
            }
            Err(seen) => {
                retries += 1;
                cur = seen;
            }
        }
    }
}

#[derive(Debug)]
struct Shard {
    /// Top of the warm stack (packed `version << 32 | slot`).
    warm_head: AtomicU64,
    /// Top of the free-slot stack (same packing).
    free_head: AtomicU64,
    slots: Vec<Slot>,
    /// Overflow beyond the slab: (sandbox, pause time), oldest first.
    cold: Mutex<VecDeque<(SandboxId, SimTime)>>,
    /// Cheap emptiness probe for `cold` so the take fast path never
    /// touches the mutex.
    cold_len: AtomicU64,
    /// Entries currently on the warm stack (occupancy gauge; racy under
    /// concurrency like every other probe here).
    warm_len: AtomicU64,
    /// Entries lazily expired by `take`, awaiting destruction by the
    /// platform.
    doomed: Mutex<Vec<SandboxId>>,
}

impl Shard {
    fn new() -> Self {
        let slots: Vec<Slot> = (0..SLOTS_PER_SHARD)
            .map(|i| Slot {
                // Free list threads every slot: i -> i+1 -> ... -> NIL.
                next: AtomicU64::new(if i + 1 < SLOTS_PER_SHARD {
                    (i + 1) as u64
                } else {
                    NIL
                }),
                id: AtomicU64::new(0),
                since: AtomicU64::new(0),
            })
            .collect();
        Self {
            warm_head: AtomicU64::new(NIL),
            free_head: AtomicU64::new(0),
            slots,
            cold: Mutex::new(VecDeque::new()),
            cold_len: AtomicU64::new(0),
            warm_len: AtomicU64::new(0),
            doomed: Mutex::new(Vec::new()),
        }
    }

    /// Drains the warm stack into `(slot, id, since)` triples, top
    /// first. The caller owns the popped slots. `warm_len` is left
    /// untouched: drains are transient (the caller restores survivors
    /// and accounts removals itself).
    fn drain_stack(&self) -> Vec<(u32, u64, u64)> {
        let mut out = Vec::new();
        while let Some(idx) = stack_pop(&self.warm_head, &self.slots, ContentionSite::WarmStackCas)
        {
            let slot = &self.slots[idx as usize];
            out.push((
                idx,
                slot.id.load(Ordering::Relaxed),
                slot.since.load(Ordering::Relaxed),
            ));
        }
        out
    }

    /// Restores drained survivors (in `drain_stack`'s top-first order)
    /// onto the warm stack, preserving their original LIFO order.
    fn restore_stack(&self, survivors: &[(u32, u64, u64)]) {
        for &(idx, _, _) in survivors.iter().rev() {
            stack_push(
                &self.warm_head,
                &self.slots,
                idx,
                ContentionSite::WarmStackCas,
            );
        }
    }
}

/// Atomic [`PoolStats`] mirror.
#[derive(Debug, Default)]
struct AtomicPoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl AtomicPoolStats {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A sharded, concurrently usable pool of paused warm sandboxes for
/// one function. Every operation takes `&self`.
///
/// Semantics match [`WarmPool`](crate::WarmPool) — LIFO reuse for
/// cache warmth, lazy expiry on `take` (an expired sandbox is never
/// handed out), eager sweeps via [`ShardedWarmPool::evict_expired_into`] —
/// with one documented relaxation: the strict *global* LIFO order is
/// guaranteed only while the pool holds at most one shard's slab
/// ([`SLOTS_PER_SHARD`] entries) per driver thread; beyond that,
/// overflow entries interleave. Under concurrent drivers the reuse
/// order is inherently racy anyway.
///
/// # Example
///
/// ```
/// use horse_faas::{KeepAlive, ShardedWarmPool};
/// use horse_sched::SandboxId;
/// use horse_sim::{SimDuration, SimTime};
///
/// let pool = ShardedWarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(60)));
/// pool.put(SandboxId::new(1), SimTime::ZERO); // note: &self
/// let t30 = SimTime::ZERO + SimDuration::from_secs(30);
/// assert_eq!(pool.take(t30), Some(SandboxId::new(1)));
/// ```
#[derive(Debug)]
pub struct ShardedWarmPool {
    shards: Vec<Shard>,
    /// Encoded keep-alive policy (`u64::MAX` = provisioned).
    keep_alive_ns: AtomicU64,
    /// Total pooled entries across shards (warm stacks + overflow).
    len: AtomicU64,
    stats: AtomicPoolStats,
}

impl ShardedWarmPool {
    /// Creates an empty pool with the given keep-alive policy.
    pub fn new(keep_alive: KeepAlive) -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
            keep_alive_ns: AtomicU64::new(encode_keep_alive(keep_alive)),
            len: AtomicU64::new(0),
            stats: AtomicPoolStats::default(),
        }
    }

    /// Number of pooled sandboxes (a racy snapshot under concurrency).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) as usize
    }

    /// Whether the pool is empty (racy snapshot, like [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The active keep-alive policy.
    pub fn keep_alive(&self) -> KeepAlive {
        decode_keep_alive(self.keep_alive_ns.load(Ordering::Relaxed))
    }

    /// Changes the keep-alive policy (e.g. upgrading a plain keep-alive
    /// pool to provisioned concurrency). Pooled entries are kept.
    pub fn set_keep_alive(&self, keep_alive: KeepAlive) {
        self.keep_alive_ns
            .store(encode_keep_alive(keep_alive), Ordering::Relaxed);
    }

    /// Usage statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats.snapshot()
    }

    /// Returns a warm sandbox (most recently used first within the
    /// calling thread's shard), or `None` on a miss. Entries idle past
    /// the TTL are lazily evicted — `take` never hands out an expired
    /// sandbox; the platform reaps them via [`Self::drain_doomed`].
    pub fn take(&self, now: SimTime) -> Option<SandboxId> {
        let now_ns = now.as_nanos();
        let ka = self.keep_alive_ns.load(Ordering::Relaxed);
        let start = shard_hint();
        for i in 0..SHARD_COUNT {
            let shard = &self.shards[(start + i) % SHARD_COUNT];
            // Overflow entries are newer than anything on the slab (a
            // put only spills once its shard's slab is full), so drain
            // them first to keep single-threaded reuse LIFO.
            if shard.cold_len.load(Ordering::Relaxed) > 0 {
                let mut cold =
                    contention::timed(ContentionSite::PoolColdOverflow, || shard.cold.lock());
                while let Some((id, since)) = cold.pop_back() {
                    shard.cold_len.fetch_sub(1, Ordering::Relaxed);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    if expired(ka, since.as_nanos(), now_ns) {
                        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                        contention::timed(ContentionSite::PoolDoomedList, || shard.doomed.lock())
                            .push(id);
                        continue;
                    }
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(id);
                }
            }
            while let Some(idx) =
                stack_pop(&shard.warm_head, &shard.slots, ContentionSite::WarmStackCas)
            {
                let slot = &shard.slots[idx as usize];
                let id = SandboxId::new(slot.id.load(Ordering::Relaxed));
                let since_ns = slot.since.load(Ordering::Relaxed);
                stack_push(
                    &shard.free_head,
                    &shard.slots,
                    idx,
                    ContentionSite::FreeStackCas,
                );
                shard.warm_len.fetch_sub(1, Ordering::Relaxed);
                self.len.fetch_sub(1, Ordering::Relaxed);
                if expired(ka, since_ns, now_ns) {
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    contention::timed(ContentionSite::PoolDoomedList, || shard.doomed.lock())
                        .push(id);
                    continue;
                }
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Some(id);
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Returns a sandbox to the pool after an invocation (keep-alive
    /// clock restarts). Lands on the calling thread's shard; spills to
    /// the shard's overflow deque only when its slab is full.
    pub fn put(&self, id: SandboxId, now: SimTime) {
        let shard = &self.shards[shard_hint()];
        if let Some(idx) = stack_pop(&shard.free_head, &shard.slots, ContentionSite::FreeStackCas) {
            let slot = &shard.slots[idx as usize];
            slot.id.store(id.as_u64(), Ordering::Relaxed);
            slot.since.store(now.as_nanos(), Ordering::Relaxed);
            stack_push(
                &shard.warm_head,
                &shard.slots,
                idx,
                ContentionSite::WarmStackCas,
            );
            shard.warm_len.fetch_add(1, Ordering::Relaxed);
        } else {
            contention::timed(ContentionSite::PoolColdOverflow, || shard.cold.lock())
                .push_back((id, now));
            shard.cold_len.fetch_add(1, Ordering::Relaxed);
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Sandboxes lazily evicted by [`Self::take`] since the last drain:
    /// the caller owns their destruction.
    pub fn drain_doomed(&self) -> Vec<SandboxId> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut contention::timed(
                ContentionSite::PoolDoomedList,
                || shard.doomed.lock(),
            ));
        }
        out
    }

    /// Per-shard occupancy: `(warm slab entries, cold overflow depth)`
    /// in shard order — the queue-depth signal behind the per-shard
    /// pool gauges. A racy snapshot, like [`Self::len`].
    pub fn shard_occupancy(&self) -> [(u64, u64); SHARD_COUNT] {
        std::array::from_fn(|i| {
            let shard = &self.shards[i];
            (
                shard.warm_len.load(Ordering::Relaxed),
                shard.cold_len.load(Ordering::Relaxed),
            )
        })
    }

    /// Removes a specific sandbox from the pool (quarantine path),
    /// returning whether it was present. Slow path: briefly drains each
    /// shard's stack to inspect it.
    pub fn remove(&self, id: SandboxId) -> bool {
        let raw = id.as_u64();
        let mut found = false;
        for shard in &self.shards {
            let drained = shard.drain_stack();
            let mut survivors = Vec::with_capacity(drained.len());
            for entry in drained {
                if !found && entry.1 == raw {
                    found = true;
                    stack_push(
                        &shard.free_head,
                        &shard.slots,
                        entry.0,
                        ContentionSite::FreeStackCas,
                    );
                    shard.warm_len.fetch_sub(1, Ordering::Relaxed);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                } else {
                    survivors.push(entry);
                }
            }
            shard.restore_stack(&survivors);
            if found {
                return true;
            }
            let mut cold =
                contention::timed(ContentionSite::PoolColdOverflow, || shard.cold.lock());
            let before = cold.len();
            cold.retain(|&(e, _)| e != id);
            let removed = before - cold.len();
            if removed > 0 {
                shard.cold_len.fetch_sub(removed as u64, Ordering::Relaxed);
                self.len.fetch_sub(removed as u64, Ordering::Relaxed);
                return true;
            }
        }
        found
    }

    /// Removes every sandbox idle past the TTL, appending them to `buf`
    /// for the caller to destroy (the reuse-buffer sweep — no per-sweep
    /// allocation). Provisioned pools never evict.
    pub fn evict_expired_into(&self, now: SimTime, buf: &mut Vec<SandboxId>) {
        let ka = self.keep_alive_ns.load(Ordering::Relaxed);
        if ka == PROVISIONED {
            return;
        }
        let now_ns = now.as_nanos();
        for shard in &self.shards {
            let drained = shard.drain_stack();
            let mut survivors = Vec::with_capacity(drained.len());
            for entry in drained {
                if expired(ka, entry.2, now_ns) {
                    buf.push(SandboxId::new(entry.1));
                    stack_push(
                        &shard.free_head,
                        &shard.slots,
                        entry.0,
                        ContentionSite::FreeStackCas,
                    );
                    shard.warm_len.fetch_sub(1, Ordering::Relaxed);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                } else {
                    survivors.push(entry);
                }
            }
            shard.restore_stack(&survivors);
            let mut cold =
                contention::timed(ContentionSite::PoolColdOverflow, || shard.cold.lock());
            let before = cold.len();
            cold.retain(|&(e, since)| {
                let keep = !expired(ka, since.as_nanos(), now_ns);
                if !keep {
                    buf.push(e);
                }
                keep
            });
            let evicted = (before - cold.len()) as u64;
            if evicted > 0 {
                shard.cold_len.fetch_sub(evicted, Ordering::Relaxed);
                self.len.fetch_sub(evicted, Ordering::Relaxed);
                self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Allocating convenience wrapper over [`Self::evict_expired_into`].
    pub fn evict_expired(&self, now: SimTime) -> Vec<SandboxId> {
        let mut out = Vec::new();
        self.evict_expired_into(now, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn take_is_lifo_for_cache_warmth() {
        let p = ShardedWarmPool::new(KeepAlive::default_ttl());
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(1));
        assert_eq!(p.take(t(2)), Some(SandboxId::new(2)));
        assert_eq!(p.take(t(2)), Some(SandboxId::new(1)));
        assert_eq!(p.take(t(2)), None);
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn lifo_survives_slab_overflow_single_threaded() {
        let p = ShardedWarmPool::new(KeepAlive::default_ttl());
        let n = SLOTS_PER_SHARD as u64 + 10;
        for i in 0..n {
            p.put(SandboxId::new(i), t(i));
        }
        assert_eq!(p.len(), n as usize);
        for i in (0..n).rev() {
            assert_eq!(p.take(t(n)), Some(SandboxId::new(i)), "entry {i}");
        }
        assert!(p.is_empty());
    }

    #[test]
    fn take_never_hands_out_expired_entries() {
        let p = ShardedWarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(100)));
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(90));
        assert_eq!(p.take(t(150)), Some(SandboxId::new(2)), "2 is still warm");
        assert_eq!(p.take(t(150)), None, "1 expired at t=100");
        let s = p.stats();
        assert_eq!(s.evictions, 1, "lazy eviction is counted");
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(p.drain_doomed(), vec![SandboxId::new(1)]);
        assert!(p.drain_doomed().is_empty(), "drain is one-shot");
    }

    #[test]
    fn remove_quarantines_a_specific_entry() {
        let p = ShardedWarmPool::new(KeepAlive::default_ttl());
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(0));
        assert!(p.remove(SandboxId::new(1)));
        assert!(!p.remove(SandboxId::new(1)), "already gone");
        assert_eq!(p.take(t(1)), Some(SandboxId::new(2)));
        assert_eq!(p.take(t(1)), None);
    }

    #[test]
    fn eviction_sweep_reuses_the_buffer() {
        let p = ShardedWarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(100)));
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(50));
        let mut buf = Vec::new();
        p.evict_expired_into(t(99), &mut buf);
        assert!(buf.is_empty());
        p.evict_expired_into(t(101), &mut buf);
        assert_eq!(buf, vec![SandboxId::new(1)]);
        p.evict_expired_into(t(151), &mut buf);
        assert_eq!(buf, vec![SandboxId::new(1), SandboxId::new(2)], "appends");
        assert!(p.is_empty());
        assert_eq!(p.stats().evictions, 2);
    }

    #[test]
    fn provisioned_pools_never_expire() {
        let p = ShardedWarmPool::new(KeepAlive::Provisioned);
        p.put(SandboxId::new(7), t(0));
        assert!(p.evict_expired(t(1_000_000)).is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p.keep_alive(), KeepAlive::Provisioned);
    }

    #[test]
    fn policy_upgrade_is_visible() {
        let p = ShardedWarmPool::new(KeepAlive::default_ttl());
        assert_eq!(p.keep_alive(), KeepAlive::default_ttl());
        p.set_keep_alive(KeepAlive::Provisioned);
        assert_eq!(p.keep_alive(), KeepAlive::Provisioned);
    }

    #[test]
    fn shard_count_matches_the_gauge_vocabulary() {
        // The per-shard occupancy/cold-depth gauges in horse-telemetry
        // are a closed vocabulary sized for this pool's shard count.
        assert_eq!(SHARD_COUNT, horse_telemetry::counters::POOL_GAUGE_SHARDS);
    }

    #[test]
    fn shard_occupancy_tracks_slab_and_overflow() {
        let p = ShardedWarmPool::new(KeepAlive::default_ttl());
        let occ_sum = |p: &ShardedWarmPool| -> (u64, u64) {
            p.shard_occupancy()
                .iter()
                .fold((0, 0), |(w, c), &(sw, sc)| (w + sw, c + sc))
        };
        assert_eq!(occ_sum(&p), (0, 0));
        // Fill past one shard's slab so the overflow deque is exercised
        // (single-threaded drivers stay on one shard).
        let n = SLOTS_PER_SHARD as u64 + 5;
        for i in 0..n {
            p.put(SandboxId::new(i), t(0));
        }
        assert_eq!(occ_sum(&p), (SLOTS_PER_SHARD as u64, 5));
        // Takes drain overflow first, then the slab.
        for _ in 0..5 {
            p.take(t(1)).unwrap();
        }
        assert_eq!(occ_sum(&p), (SLOTS_PER_SHARD as u64, 0));
        for _ in 0..SLOTS_PER_SHARD {
            p.take(t(1)).unwrap();
        }
        assert_eq!(occ_sum(&p), (0, 0));
        // Quarantine and expiry keep the gauge honest.
        p.put(SandboxId::new(100), t(2));
        p.put(SandboxId::new(101), t(2));
        assert!(p.remove(SandboxId::new(100)));
        assert_eq!(occ_sum(&p), (1, 0));
        p.set_keep_alive(KeepAlive::Ttl(SimDuration::from_secs(1)));
        let mut buf = Vec::new();
        p.evict_expired_into(t(60), &mut buf);
        assert_eq!(buf, vec![SandboxId::new(101)]);
        assert_eq!(occ_sum(&p), (0, 0));
    }

    #[test]
    fn contended_treiber_stacks_count_cas_retries_when_profiled() {
        use horse_telemetry::{contention, profiling};
        // Process-global profiling flag: only this test (in this
        // binary) enables it, and only around a burst of contended
        // traffic; the counters are cumulative so >= is asserted.
        let pool = Arc::new(ShardedWarmPool::new(KeepAlive::Provisioned));
        for i in 0..16u64 {
            pool.put(SandboxId::new(i), SimTime::ZERO);
        }
        let before: u64 = contention::snapshot().iter().map(|s| s.acquisitions).sum();
        profiling::set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        if let Some(id) = pool.take(SimTime::ZERO) {
                            pool.put(id, SimTime::ZERO);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let after: u64 = contention::snapshot().iter().map(|s| s.acquisitions).sum();
        assert!(after >= before, "counters are monotonic");

        // Deterministic single-threaded check: an overflow put (slab
        // full) must take — and time — the cold mutex.
        let cold_before = contention::snapshot()
            .iter()
            .find(|s| s.site == contention::ContentionSite::PoolColdOverflow)
            .unwrap()
            .acquisitions;
        let p = ShardedWarmPool::new(KeepAlive::Provisioned);
        for i in 0..=SLOTS_PER_SHARD as u64 {
            p.put(SandboxId::new(i), SimTime::ZERO);
        }
        profiling::set_enabled(false);
        let cold_after = contention::snapshot()
            .iter()
            .find(|s| s.site == contention::ContentionSite::PoolColdOverflow)
            .unwrap()
            .acquisitions;
        assert!(
            cold_after > cold_before,
            "the overflow put acquired the timed cold lock"
        );
    }

    /// Forces every shard's packed stack heads to a version just below
    /// `u32::MAX` so the next few operations wrap the 32-bit version
    /// counter through zero.
    fn pin_versions_near_wraparound(p: &ShardedWarmPool) {
        const NEAR_WRAP: u64 = (u32::MAX - 2) as u64;
        for shard in &p.shards {
            let wh = shard.warm_head.load(Ordering::Relaxed);
            shard
                .warm_head
                .store((NEAR_WRAP << 32) | (wh & IDX_MASK), Ordering::Relaxed);
            let fh = shard.free_head.load(Ordering::Relaxed);
            shard
                .free_head
                .store((NEAR_WRAP << 32) | (fh & IDX_MASK), Ordering::Relaxed);
        }
    }

    /// ABA-safety across version-counter wraparound. The Treiber heads
    /// pack `version << 32 | slot` and bump the version with
    /// `wrapping_add`; correctness must not depend on versions being
    /// monotonic, only on them *changing* — including across the wrap
    /// through zero. Starts every head at `u32::MAX − 2` and drives both
    /// a single-threaded LIFO cycle and a concurrent conservation
    /// workload across the boundary.
    #[test]
    fn version_counter_wraparound_is_aba_safe() {
        // Single-threaded: exact LIFO must survive the wrap.
        let p = ShardedWarmPool::new(KeepAlive::Provisioned);
        pin_versions_near_wraparound(&p);
        for i in 0..8u64 {
            p.put(SandboxId::new(i), t(0));
        }
        for i in (0..8u64).rev() {
            assert_eq!(p.take(t(1)), Some(SandboxId::new(i)), "entry {i}");
        }
        assert_eq!(p.take(t(1)), None);
        // The driving thread's shard performed 16+ version bumps from
        // u32::MAX − 2, so its warm head must have wrapped past zero.
        let min_version = p
            .shards
            .iter()
            .map(|s| s.warm_head.load(Ordering::Relaxed) >> 32)
            .min()
            .unwrap();
        assert!(
            min_version < 1_000,
            "expected a wrapped version near zero, got {min_version}"
        );

        // Concurrent: conservation while every shard's counters cross
        // the wrap under contention.
        let pool = Arc::new(ShardedWarmPool::new(KeepAlive::Provisioned));
        pin_versions_near_wraparound(&pool);
        let initial = 48u64;
        for i in 0..initial {
            pool.put(SandboxId::new(i), SimTime::ZERO);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut held: Vec<SandboxId> = Vec::new();
                    for r in 0..1_000 {
                        if let Some(id) = pool.take(SimTime::ZERO) {
                            held.push(id);
                        }
                        if r % 3 == 0 {
                            for id in held.drain(..) {
                                pool.put(id, SimTime::ZERO);
                            }
                        }
                    }
                    held
                })
            })
            .collect();
        let mut seen: Vec<u64> = Vec::new();
        for h in handles {
            seen.extend(h.join().unwrap().into_iter().map(|id| id.as_u64()));
        }
        while let Some(id) = pool.take(SimTime::ZERO) {
            seen.push(id.as_u64());
        }
        seen.sort_unstable();
        assert_eq!(seen.len() as u64, initial, "no sandbox lost or duplicated");
        seen.dedup();
        assert_eq!(seen.len() as u64, initial, "every id unique after the wrap");
        assert_eq!(pool.len(), 0);
    }

    /// Conservation under contention: N threads cycle take/put against
    /// one pool; no sandbox is ever lost, duplicated, or handed to two
    /// threads at once.
    #[test]
    fn concurrent_take_put_conserves_sandboxes() {
        let pool = Arc::new(ShardedWarmPool::new(KeepAlive::Provisioned));
        let initial = 64u64;
        for i in 0..initial {
            pool.put(SandboxId::new(i), SimTime::ZERO);
        }
        let threads = 8;
        let rounds = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut held: Vec<SandboxId> = Vec::new();
                    let mut successes = 0u64;
                    for r in 0..rounds {
                        if let Some(id) = pool.take(SimTime::ZERO) {
                            held.push(id);
                            successes += 1;
                        }
                        // Return everything every few rounds so takes
                        // keep succeeding.
                        if r % 3 == 0 {
                            for id in held.drain(..) {
                                pool.put(id, SimTime::ZERO);
                            }
                        }
                    }
                    (held, successes)
                })
            })
            .collect();
        let mut seen: Vec<u64> = Vec::new();
        let mut successes = 0u64;
        for h in handles {
            let (held, n) = h.join().unwrap();
            seen.extend(held.into_iter().map(|id| id.as_u64()));
            successes += n;
        }
        // Drain what is still pooled.
        while let Some(id) = pool.take(SimTime::ZERO) {
            seen.push(id.as_u64());
            successes += 1;
        }
        seen.sort_unstable();
        assert_eq!(seen.len() as u64, initial, "no sandbox lost or duplicated");
        seen.dedup();
        assert_eq!(seen.len() as u64, initial, "every id is unique");
        assert_eq!(pool.len(), 0);
        let s = pool.stats();
        assert_eq!(s.evictions, 0, "provisioned entries never expire");
        assert_eq!(s.hits, successes, "hits count every successful take");
    }
}
