//! §5.2 experiment harness: CPU and memory overhead of HORSE.
//!
//! Reproduces the paper's procedure: on a server running 10 background
//! 1-vCPU CPU-stress sandboxes, 10 uLL sandboxes are created, paused for
//! 5 s, then resumed; CPU and memory usage are sampled every 500 ms. The
//! experiment runs once with vanilla pause/resume and once with HORSE,
//! and the comparison yields the paper's three observations: a small CPU
//! increase at pause time, no steady-state increase, a small CPU increase
//! at resume time, and a sub-percent memory overhead from the 𝒫²𝒮ℳ
//! structures.

use horse_metrics::TimeSeries;
use horse_sched::{CpuTopology, GovernorPolicy, SchedConfig};
use horse_sim::{Sampler, SimDuration, SimTime};
use horse_vmm::{CostModel, PausePolicy, ResumeMode, SandboxConfig, Vmm};
use serde::{Deserialize, Serialize};

/// Sampling period: 500 ms, as in the paper.
pub const SAMPLE_PERIOD_NS: u64 = 500_000_000;

/// Configuration of one overhead run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadConfig {
    /// vCPUs of each uLL sandbox (the paper sweeps 1–36).
    pub ull_vcpus: u32,
    /// Number of uLL sandboxes (paper: 10).
    pub ull_sandboxes: u32,
    /// Number of background CPU-stress sandboxes (paper: 10, 1 vCPU,
    /// 512 MB each — ≈5 GB total).
    pub background_sandboxes: u32,
    /// Whether pause/resume go through HORSE.
    pub horse: bool,
}

impl OverheadConfig {
    /// The paper's setup at a given uLL vCPU count.
    pub fn paper(ull_vcpus: u32, horse: bool) -> Self {
        Self {
            ull_vcpus,
            ull_sandboxes: 10,
            background_sandboxes: 10,
            horse,
        }
    }
}

/// Result of one overhead run.
#[derive(Debug, Clone)]
pub struct OverheadRun {
    /// CPU usage samples (percent of all host cores), every 500 ms.
    pub cpu: TimeSeries,
    /// Memory usage samples (bytes), every 500 ms.
    pub memory: TimeSeries,
    /// Peak 𝒫²𝒮ℳ structure footprint (bytes).
    pub plan_bytes_peak: usize,
    /// Base memory used by all sandboxes (bytes).
    pub base_memory_bytes: u64,
    /// Total pause-phase overhead work (ns of CPU time).
    pub pause_overhead_ns: u64,
    /// Total resume-phase overhead work (ns of CPU time).
    pub resume_overhead_ns: u64,
}

/// Side-by-side comparison of a vanilla and a HORSE run.
#[derive(Debug, Clone)]
pub struct OverheadComparison {
    /// The vanilla run.
    pub vanilla: OverheadRun,
    /// The HORSE run.
    pub horse: OverheadRun,
}

impl OverheadComparison {
    /// Peak memory overhead of HORSE over vanilla, in bytes (the paper's
    /// "up to 528 KB").
    pub fn memory_overhead_bytes(&self) -> usize {
        self.horse.plan_bytes_peak
    }

    /// Memory overhead relative to the sandboxes' memory (paper: ≈0.11 %
    /// of ≈5 GB).
    pub fn memory_overhead_pct(&self) -> f64 {
        100.0 * self.horse.plan_bytes_peak as f64 / self.horse.base_memory_bytes as f64
    }

    /// Extra CPU billed during the pause phase, as a percentage of one
    /// sampling interval of host capacity (paper: ≤0.3 %).
    pub fn cpu_pause_overhead_pct(&self, cores: u32) -> f64 {
        let extra = self
            .horse
            .pause_overhead_ns
            .saturating_sub(self.vanilla.pause_overhead_ns);
        100.0 * extra as f64 / (f64::from(cores) * SAMPLE_PERIOD_NS as f64)
    }

    /// Extra CPU billed during the resume phase (paper: ≤2.7 %). HORSE
    /// resumes are *cheaper* per-call but spawn splice threads; the
    /// paper's number also includes those threads' scheduling cost, which
    /// our model charges via the splice-thread kickoff cost.
    pub fn cpu_resume_overhead_pct(&self, cores: u32) -> f64 {
        let extra = self
            .horse
            .resume_overhead_ns
            .saturating_sub(self.vanilla.resume_overhead_ns);
        100.0 * extra as f64 / (f64::from(cores) * SAMPLE_PERIOD_NS as f64)
    }

    /// CPU increase of the HORSE run's *pause phase* over the steady
    /// state — the quantity the paper's "up to 0.3 % when pausing"
    /// measures.
    pub fn cpu_pause_phase_pct(&self, cores: u32) -> f64 {
        100.0 * self.horse.pause_overhead_ns as f64 / (f64::from(cores) * SAMPLE_PERIOD_NS as f64)
    }

    /// CPU increase of the HORSE run's *resume phase* over the steady
    /// state — the paper's "up to 2.7 % when resuming" (includes the
    /// splice threads and the unleashed uLL workload burst).
    pub fn cpu_resume_phase_pct(&self, cores: u32) -> f64 {
        100.0 * self.horse.resume_overhead_ns as f64 / (f64::from(cores) * SAMPLE_PERIOD_NS as f64)
    }
}

/// Runs the §5.2 experiment once.
///
/// Timeline (virtual): background sandboxes run throughout; uLL sandboxes
/// start at t=0.5 s, pause at t=1 s, stay paused 5 s, resume at t=6 s;
/// sampling ends at t=8 s.
pub fn run_overhead(config: OverheadConfig) -> OverheadRun {
    let topology = CpuTopology::r650(false);
    let cores = topology.logical_cpus();
    let mut vmm = Vmm::new(
        SchedConfig {
            topology,
            ull_queues: 1,
            governor_policy: GovernorPolicy::Performance,
            flavor: horse_sched::SchedFlavor::default(),
        },
        CostModel::calibrated(),
    );

    // Background occupants: 1 vCPU, 512 MB each.
    let bg_cfg = SandboxConfig::builder()
        .vcpus(1)
        .memory_mb(512)
        .build()
        .expect("valid");
    for _ in 0..config.background_sandboxes {
        let id = vmm.create(bg_cfg);
        vmm.start(id).expect("fresh sandbox starts");
    }

    // uLL sandboxes.
    let ull_cfg = SandboxConfig::builder()
        .vcpus(config.ull_vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("valid");
    let ull_ids: Vec<_> = (0..config.ull_sandboxes)
        .map(|_| vmm.create(ull_cfg))
        .collect();
    for &id in &ull_ids {
        vmm.start(id).expect("fresh sandbox starts");
    }

    let base_memory_bytes = u64::from(config.background_sandboxes + config.ull_sandboxes)
        * u64::from(bg_cfg.memory_mb())
        * 1024
        * 1024;

    let policy = if config.horse {
        PausePolicy::horse()
    } else {
        PausePolicy::vanilla()
    };
    let mode = if config.horse {
        ResumeMode::Horse
    } else {
        ResumeMode::Vanilla
    };

    let mut cpu = TimeSeries::new(if config.horse {
        "cpu_horse"
    } else {
        "cpu_vanilla"
    });
    let mut memory = TimeSeries::new(if config.horse {
        "mem_horse"
    } else {
        "mem_vanilla"
    });
    let mut plan_bytes_peak = 0usize;
    let mut pause_overhead_ns = 0u64;
    let mut resume_overhead_ns = 0u64;

    // Busy background cores: each background sandbox burns one core; the
    // running uLL sandboxes are idle (waiting for triggers).
    let bg_core_pct = 100.0 * f64::from(config.background_sandboxes) / f64::from(cores);

    let mut sampler = Sampler::new(SimDuration::from_nanos(SAMPLE_PERIOD_NS));
    let end = SimTime::ZERO + SimDuration::from_millis(7_500);
    let pause_sample = 2; // t = 1 s
    let resume_sample = 12; // t = 6 s
    for s in sampler.due(end) {
        let mut interval_overhead_ns = 0u64;
        if s == pause_sample {
            for &id in &ull_ids {
                let report = vmm.pause(id, policy).expect("running sandbox pauses");
                interval_overhead_ns += report.cost_ns;
            }
            pause_overhead_ns = interval_overhead_ns;
        }
        if s == resume_sample {
            for &id in &ull_ids {
                let outcome = vmm.resume(id, mode).expect("paused sandbox resumes");
                // CPU billed in this interval: the resume pipeline, the
                // 𝒫²𝒮ℳ splice threads' work on other cores, and the uLL
                // workload burst that the resume unleashes ("the workload
                // rapidly ends even after resuming", §5.2 — but its burst
                // is what the paper's resume-phase sample captures).
                interval_overhead_ns += outcome.breakdown.total_ns();
                if let Some(m) = outcome.merge {
                    interval_overhead_ns += m.splices as u64 * 50;
                }
                interval_overhead_ns +=
                    horse_workloads::Category::Cat1.mean_exec_ns() * u64::from(config.ull_vcpus);
            }
            resume_overhead_ns = interval_overhead_ns;
        }
        let plan_bytes = vmm.total_plan_memory_bytes();
        plan_bytes_peak = plan_bytes_peak.max(plan_bytes);
        let cpu_pct = bg_core_pct
            + 100.0 * interval_overhead_ns as f64 / (f64::from(cores) * SAMPLE_PERIOD_NS as f64);
        cpu.push(s * SAMPLE_PERIOD_NS, cpu_pct);
        memory.push(
            s * SAMPLE_PERIOD_NS,
            base_memory_bytes as f64 + plan_bytes as f64,
        );
    }

    OverheadRun {
        cpu,
        memory,
        plan_bytes_peak,
        base_memory_bytes,
        pause_overhead_ns,
        resume_overhead_ns,
    }
}

/// Runs the experiment in both modes and returns the comparison.
pub fn compare_overhead(ull_vcpus: u32) -> OverheadComparison {
    OverheadComparison {
        vanilla: run_overhead(OverheadConfig::paper(ull_vcpus, false)),
        horse: run_overhead(OverheadConfig::paper(ull_vcpus, true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_overhead_is_subpercent() {
        let cmp = compare_overhead(36);
        assert!(cmp.memory_overhead_bytes() > 0, "plans occupy memory");
        let pct = cmp.memory_overhead_pct();
        assert!(pct < 1.0, "paper: <1% memory overhead, got {pct}");
        assert_eq!(cmp.vanilla.plan_bytes_peak, 0, "vanilla has no plans");
    }

    #[test]
    fn cpu_overheads_are_small_and_phased() {
        let cmp = compare_overhead(36);
        let cores = 72;
        let pause = cmp.cpu_pause_overhead_pct(cores);
        let resume = cmp.cpu_resume_overhead_pct(cores);
        assert!(pause < 1.0, "paper: ≤0.3% pause overhead, got {pause}");
        assert!(
            resume.abs() < 2.7 + 1.0,
            "paper: ≤2.7% resume overhead, got {resume}"
        );
        // HORSE pause does strictly more work than vanilla pause.
        assert!(cmp.horse.pause_overhead_ns > cmp.vanilla.pause_overhead_ns);
        // HORSE resume does strictly less critical-path work.
        assert!(cmp.horse.resume_overhead_ns < cmp.vanilla.resume_overhead_ns);
    }

    #[test]
    fn series_have_expected_shape() {
        let run = run_overhead(OverheadConfig::paper(8, true));
        assert_eq!(run.cpu.len(), 16);
        assert_eq!(run.memory.len(), 16);
        // Memory rises when paused (plans exist) and falls after resume.
        let samples = run.memory.samples();
        assert!(
            samples[3].value > samples[0].value,
            "plans appear after pause"
        );
        assert!(
            samples[14].value <= samples[3].value,
            "plans released at resume"
        );
        // CPU peaks at the pause and resume samples.
        let cpu = run.cpu.samples();
        assert!(cpu[2].value >= cpu[1].value);
        assert!(cpu[12].value >= cpu[11].value);
    }

    #[test]
    fn overhead_grows_with_vcpus() {
        let small = compare_overhead(1);
        let large = compare_overhead(36);
        assert!(large.memory_overhead_bytes() >= small.memory_overhead_bytes());
        assert!(
            large.horse.pause_overhead_ns > small.horse.pause_overhead_ns,
            "bigger sandboxes cost more to precompute"
        );
    }
}
