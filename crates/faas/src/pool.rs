//! Warm-sandbox pools with keep-alive eviction.
//!
//! "FaaS platforms implement a keep-alive strategy, which consists of
//! keeping a sandbox active for a fixed time after the function that was
//! running ends its execution" (paper §1). This module implements that
//! policy: paused sandboxes wait in a per-function pool and are evicted
//! (destroyed) once idle longer than the keep-alive TTL — unless they
//! are *provisioned* (Azure Premium / Lambda Provisioned Concurrency /
//! Alibaba Provisioned Mode), in which case they never expire.

use horse_sched::SandboxId;
use horse_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Keep-alive policy of a warm pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeepAlive {
    /// Evict sandboxes idle longer than this duration (the common
    /// platform default is ~10 minutes).
    Ttl(SimDuration),
    /// Never evict: provisioned concurrency (the paper's premium-option
    /// warm starts).
    Provisioned,
}

impl KeepAlive {
    /// The typical public-cloud default: 10 minutes.
    pub fn default_ttl() -> Self {
        KeepAlive::Ttl(SimDuration::from_secs(600))
    }
}

/// Usage statistics of a pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Requests served from the pool (warm hits).
    pub hits: u64,
    /// Requests that found the pool empty (cold fallbacks).
    pub misses: u64,
    /// Sandboxes evicted by keep-alive expiry.
    pub evictions: u64,
}

/// A FIFO pool of paused warm sandboxes for one function.
///
/// # Example
///
/// ```
/// use horse_faas::{KeepAlive, WarmPool};
/// use horse_sched::SandboxId;
/// use horse_sim::{SimDuration, SimTime};
///
/// let mut pool = WarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(60)));
/// pool.put(SandboxId::new(1), SimTime::ZERO);
/// // Still warm after 30 s:
/// let t30 = SimTime::ZERO + SimDuration::from_secs(30);
/// assert_eq!(pool.take(t30), Some(SandboxId::new(1)));
/// pool.put(SandboxId::new(1), t30);
/// // Expired after 2 more minutes:
/// let t150 = SimTime::ZERO + SimDuration::from_secs(150);
/// let expired = pool.evict_expired(t150);
/// assert_eq!(expired, vec![SandboxId::new(1)]);
/// assert_eq!(pool.take(t150), None);
/// ```
#[derive(Debug, Clone)]
pub struct WarmPool {
    /// (sandbox, last-used time), oldest first.
    entries: VecDeque<(SandboxId, SimTime)>,
    keep_alive: KeepAlive,
    stats: PoolStats,
    /// Expired entries lazily evicted by [`WarmPool::take`], awaiting
    /// destruction by the platform (the pool hands out ids, it does not
    /// own the sandboxes).
    doomed: Vec<SandboxId>,
}

impl WarmPool {
    /// Creates an empty pool with the given keep-alive policy.
    pub fn new(keep_alive: KeepAlive) -> Self {
        Self {
            entries: VecDeque::new(),
            keep_alive,
            stats: PoolStats::default(),
            doomed: Vec::new(),
        }
    }

    /// Number of pooled sandboxes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The active keep-alive policy.
    pub fn keep_alive(&self) -> KeepAlive {
        self.keep_alive
    }

    /// Changes the keep-alive policy (e.g. upgrading a plain keep-alive
    /// pool to provisioned concurrency). Pooled entries are kept.
    pub fn set_keep_alive(&mut self, keep_alive: KeepAlive) {
        self.keep_alive = keep_alive;
    }

    /// Usage statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Returns a warm sandbox (most recently used first, maximizing cache
    /// warmth), or `None` on a miss.
    ///
    /// Entries idle past the TTL are lazily evicted first — `take` must
    /// never hand out a sandbox that keep-alive has already expired, even
    /// if the platform has not run [`WarmPool::evict_expired`] since the
    /// deadline passed. Lazily evicted sandboxes are surfaced through
    /// [`WarmPool::drain_doomed`] for the platform to destroy.
    pub fn take(&mut self, now: SimTime) -> Option<SandboxId> {
        // Lazy expiry lands straight in the doomed buffer: no per-take
        // allocation on the hot path.
        let mut doomed = std::mem::take(&mut self.doomed);
        self.evict_expired_into(now, &mut doomed);
        self.doomed = doomed;
        match self.entries.pop_back() {
            Some((id, _)) => {
                self.stats.hits += 1;
                Some(id)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Sandboxes lazily evicted by [`WarmPool::take`] since the last
    /// drain: the caller owns their destruction.
    pub fn drain_doomed(&mut self) -> Vec<SandboxId> {
        std::mem::take(&mut self.doomed)
    }

    /// Removes a specific sandbox from the pool (quarantine path),
    /// returning whether it was present.
    pub fn remove(&mut self, id: SandboxId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(e, _)| *e != id);
        before != self.entries.len()
    }

    /// Returns a sandbox to the pool after an invocation (keep-alive
    /// clock restarts).
    pub fn put(&mut self, id: SandboxId, now: SimTime) {
        self.entries.push_back((id, now));
    }

    /// Removes every sandbox idle past the TTL, returning them for the
    /// caller to destroy. Provisioned pools never evict.
    pub fn evict_expired(&mut self, now: SimTime) -> Vec<SandboxId> {
        let mut evicted = Vec::new();
        self.evict_expired_into(now, &mut evicted);
        evicted
    }

    /// Like [`WarmPool::evict_expired`], but appends the evicted ids to
    /// a caller-owned buffer instead of allocating a fresh `Vec` — the
    /// periodic eviction sweep runs this against one reused buffer.
    pub fn evict_expired_into(&mut self, now: SimTime, buf: &mut Vec<SandboxId>) {
        let KeepAlive::Ttl(ttl) = self.keep_alive else {
            return;
        };
        while let Some(&(id, since)) = self.entries.front() {
            if now.since(since.min(now)) > ttl {
                self.entries.pop_front();
                buf.push(id);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn take_is_lifo_for_cache_warmth() {
        let mut p = WarmPool::new(KeepAlive::default_ttl());
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(1));
        assert_eq!(p.take(t(2)), Some(SandboxId::new(2)));
        assert_eq!(p.take(t(2)), Some(SandboxId::new(1)));
        assert_eq!(p.take(t(2)), None);
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn take_never_hands_out_expired_entries() {
        // Regression: `take` used to ignore `now`, handing out sandboxes
        // the keep-alive policy had already expired.
        let mut p = WarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(100)));
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(90));
        assert_eq!(p.take(t(150)), Some(SandboxId::new(2)), "2 is still warm");
        assert_eq!(p.take(t(150)), None, "1 expired at t=100");
        let s = p.stats();
        assert_eq!(s.evictions, 1, "lazy eviction is counted");
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(p.drain_doomed(), vec![SandboxId::new(1)]);
        assert!(p.drain_doomed().is_empty(), "drain is one-shot");
    }

    #[test]
    fn remove_quarantines_a_specific_entry() {
        let mut p = WarmPool::new(KeepAlive::default_ttl());
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(0));
        assert!(p.remove(SandboxId::new(1)));
        assert!(!p.remove(SandboxId::new(1)), "already gone");
        assert_eq!(p.take(t(1)), Some(SandboxId::new(2)));
        assert_eq!(p.take(t(1)), None);
    }

    #[test]
    fn ttl_evicts_oldest_first() {
        let mut p = WarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(100)));
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(50));
        assert!(p.evict_expired(t(99)).is_empty());
        assert_eq!(p.evict_expired(t(101)), vec![SandboxId::new(1)]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.evict_expired(t(151)), vec![SandboxId::new(2)]);
        assert!(p.is_empty());
        assert_eq!(p.stats().evictions, 2);
    }

    #[test]
    fn evict_expired_into_appends_to_a_reused_buffer() {
        let mut p = WarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(100)));
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(50));
        let mut buf = Vec::new();
        p.evict_expired_into(t(99), &mut buf);
        assert!(buf.is_empty());
        p.evict_expired_into(t(101), &mut buf);
        assert_eq!(buf, vec![SandboxId::new(1)]);
        p.evict_expired_into(t(151), &mut buf);
        assert_eq!(buf, vec![SandboxId::new(1), SandboxId::new(2)], "appends");
        assert!(p.is_empty());
        assert_eq!(p.stats().evictions, 2);
    }

    #[test]
    fn provisioned_pools_never_expire() {
        let mut p = WarmPool::new(KeepAlive::Provisioned);
        p.put(SandboxId::new(7), t(0));
        assert!(p.evict_expired(t(1_000_000)).is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p.keep_alive(), KeepAlive::Provisioned);
    }

    #[test]
    fn put_restarts_the_clock() {
        let mut p = WarmPool::new(KeepAlive::Ttl(SimDuration::from_secs(100)));
        p.put(SandboxId::new(1), t(0));
        let id = p.take(t(90)).unwrap();
        p.put(id, t(90)); // used at t=90: fresh again
        assert!(p.evict_expired(t(150)).is_empty());
        assert_eq!(p.evict_expired(t(191)), vec![SandboxId::new(1)]);
    }
}
