//! # horse-faas — the FaaS platform layer
//!
//! The serverless platform of the HORSE reproduction, tying the VMM and
//! scheduler substrates to the paper's end-to-end experiments:
//!
//! * [`FaasPlatform`] — function registry, provisioned-concurrency warm
//!   pools with keep-alive, and the four start strategies
//!   ([`StartStrategy`]: cold / restore / warm / horse) whose
//!   initialization-vs-execution split is Table 1 and Figures 1 & 4;
//! * [`overhead`] — the §5.2 CPU/memory overhead experiment;
//! * [`colocation`] — the §5.4 uLL-with-long-running colocation
//!   experiment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
pub mod colocation;
mod invocation;
pub mod overhead;
mod platform;
mod pool;
mod registry;
pub mod replay;
mod ring;
mod sharded_pool;
mod ull_scaler;

pub use cluster::{Cluster, DispatchPolicy, Disposition, HostId, Request};
pub use invocation::{InvocationRecord, StartStrategy};
pub use platform::{FaasError, FaasPlatform, PlatformConfig, WARM_TRIGGER_NS};
pub use pool::{KeepAlive, PoolStats, WarmPool};
pub use registry::{FunctionId, FunctionMeta, FunctionRegistry};
pub use ring::{RingFull, SubmissionRing};
pub use sharded_pool::{ShardedWarmPool, SHARD_COUNT, SLOTS_PER_SHARD};
pub use ull_scaler::{UllScaler, UllScalerConfig};
