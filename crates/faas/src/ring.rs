//! Bounded MPSC submission rings for the batched invoke path.
//!
//! A [`SubmissionRing`] is a fixed-capacity multi-producer ring of
//! [`Request`]s in the style of Vyukov's bounded MPMC queue: every slot
//! carries its own sequence word, producers claim slots with one CAS on
//! the tail cursor, and the slot's sequence store is the publication
//! barrier. The crate forbids `unsafe`, so the payload itself lives in
//! three `AtomicU64` words per slot (function id, packed
//! strategy/class/deadline-present bits, deadline value) written and
//! read with `Relaxed` ordering *inside* the acquire/release window the
//! sequence word establishes — the protocol, not the payload atomics,
//! provides the exclusion.
//!
//! The ring never allocates after construction: `push` is one CAS plus
//! four atomic stores, `pop` one CAS plus four atomic loads. Capacity
//! is rounded up to a power of two so cursor-to-slot mapping is a mask.
//!
//! Ordering guarantees (checked by the `horse-check` interleaving
//! explorer):
//!
//! * **No loss, no duplication** — every successfully pushed request is
//!   popped exactly once.
//! * **Per-producer FIFO** — two requests pushed by the same thread are
//!   popped in push order (the tail CAS totally orders claims, and a
//!   producer's second claim necessarily follows its first).
//! * **Global FIFO at one producer** — with a single producer the pop
//!   order is exactly the push order, which is what makes the batched
//!   submission path bit-identical to the sequential one at `threads=1`.

use crate::cluster::Request;
use crate::invocation::StartStrategy;
use crate::registry::FunctionId;
use horse_reliability::RequestClass;
use std::sync::atomic::{AtomicU64, Ordering};

/// `push` found every slot occupied; the request is handed back so the
/// producer can drain or serve it directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull(pub Request);

impl std::fmt::Display for RingFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submission ring full")
    }
}

impl std::error::Error for RingFull {}

/// One ring slot: the Vyukov sequence word plus the encoded payload.
#[derive(Debug)]
struct Slot {
    /// Protocol state. `seq == pos` ⇒ free for the producer claiming
    /// `pos`; `seq == pos + 1` ⇒ published, ready for the consumer at
    /// `pos`; `seq == pos + capacity` ⇒ consumed, free for the producer
    /// claiming `pos + capacity`.
    seq: AtomicU64,
    /// [`FunctionId::as_u64`] of the request's function.
    func: AtomicU64,
    /// Packed strategy index (bits 0–1), class bit (bit 2) and
    /// deadline-present bit (bit 3).
    meta: AtomicU64,
    /// Deadline budget in virtual ns (meaningful iff bit 3 of `meta`).
    deadline: AtomicU64,
}

/// Packs the copyable request fields into the slot's two payload words
/// (plus the function word).
fn encode(req: &Request) -> (u64, u64, u64) {
    let strategy = StartStrategy::ALL
        .iter()
        .position(|&s| s == req.strategy)
        .expect("every strategy is in ALL") as u64;
    let class = match req.class {
        RequestClass::Ull => 0u64,
        RequestClass::Background => 1,
    };
    let (present, deadline) = match req.deadline_ns {
        Some(ns) => (1u64, ns),
        None => (0, 0),
    };
    (
        req.function.as_u64(),
        strategy | (class << 2) | (present << 3),
        deadline,
    )
}

/// Inverse of [`encode`].
fn decode(func: u64, meta: u64, deadline: u64) -> Request {
    Request {
        function: FunctionId::from_raw(func),
        strategy: StartStrategy::ALL[(meta & 0b11) as usize],
        class: if meta & 0b100 == 0 {
            RequestClass::Ull
        } else {
            RequestClass::Background
        },
        deadline_ns: (meta & 0b1000 != 0).then_some(deadline),
    }
}

/// A fixed-capacity multi-producer submission ring (see module docs).
///
/// `push` is safe from any number of threads. `pop` is also thread-safe
/// (the head cursor is CAS-claimed), but the intended shape is MPSC:
/// many producers enqueue, one drainer at a time feeds
/// [`FaasPlatform::invoke_batch`](crate::FaasPlatform::invoke_batch).
#[derive(Debug)]
pub struct SubmissionRing {
    slots: Box<[Slot]>,
    /// Producer cursor: the next position to claim.
    tail: AtomicU64,
    /// Consumer cursor: the next position to read.
    head: AtomicU64,
    /// `slots.len() - 1`; the length is a power of two.
    mask: u64,
}

impl SubmissionRing {
    /// Builds a ring holding at least `capacity` requests (rounded up
    /// to the next power of two, minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring needs at least one slot");
        let cap = capacity.next_power_of_two().max(2) as u64;
        let slots: Box<[Slot]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                func: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                deadline: AtomicU64::new(0),
            })
            .collect();
        Self {
            slots,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            mask: cap - 1,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate occupancy (exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a request, returning its global submission sequence —
    /// the total order the consumer will observe. Fails with
    /// [`RingFull`] (handing the request back) when every slot is
    /// occupied; the producer should drain or serve directly, never
    /// spin.
    pub fn push(&self, request: Request) -> Result<u64, RingFull> {
        let (func, meta, deadline) = encode(&request);
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&pos) {
                std::cmp::Ordering::Equal => {
                    // The slot is free for exactly this position; the CAS
                    // on the tail makes the claim exclusive.
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            slot.func.store(func, Ordering::Relaxed);
                            slot.meta.store(meta, Ordering::Relaxed);
                            slot.deadline.store(deadline, Ordering::Relaxed);
                            // Publication: the consumer's acquire load of
                            // `seq` orders the payload reads after these
                            // stores.
                            slot.seq.store(pos + 1, Ordering::Release);
                            return Ok(pos);
                        }
                        Err(current) => pos = current,
                    }
                }
                std::cmp::Ordering::Less => {
                    // seq < pos: the slot still holds an unconsumed entry
                    // from one lap ago — the ring is full.
                    return Err(RingFull(request));
                }
                std::cmp::Ordering::Greater => {
                    // Another producer claimed this position; reload.
                    pos = self.tail.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Dequeues the oldest request, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<Request> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&(pos + 1)) {
                std::cmp::Ordering::Equal => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let func = slot.func.load(Ordering::Relaxed);
                            let meta = slot.meta.load(Ordering::Relaxed);
                            let deadline = slot.deadline.load(Ordering::Relaxed);
                            // Hand the slot to the producer one lap ahead
                            // only after the payload is out.
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(decode(func, meta, deadline));
                        }
                        Err(current) => pos = current,
                    }
                }
                std::cmp::Ordering::Less => {
                    // seq == pos: the slot is free — nothing published at
                    // this position yet.
                    return None;
                }
                std::cmp::Ordering::Greater => {
                    // Another consumer took this position; reload.
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Drains everything currently published into `out`, in submission
    /// order, returning how many were moved.
    pub fn drain_into(&self, out: &mut Vec<Request>) -> usize {
        let before = out.len();
        while let Some(req) = self.pop() {
            out.push(req);
        }
        out.len() - before
    }
}

// Producers on many threads share one ring behind an `Arc`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SubmissionRing>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn req(function: u64, strategy: StartStrategy, deadline_ns: Option<u64>) -> Request {
        Request {
            function: FunctionId::from_raw(function),
            strategy,
            class: if deadline_ns.is_some() {
                RequestClass::Background
            } else {
                RequestClass::Ull
            },
            deadline_ns,
        }
    }

    #[test]
    fn encode_decode_roundtrips_every_field() {
        for strategy in StartStrategy::ALL {
            for deadline in [None, Some(0u64), Some(1), Some(u64::MAX)] {
                for class in [RequestClass::Ull, RequestClass::Background] {
                    let r = Request {
                        function: FunctionId::from_raw(u64::MAX),
                        strategy,
                        class,
                        deadline_ns: deadline,
                    };
                    let (f, m, d) = encode(&r);
                    assert_eq!(decode(f, m, d), r);
                }
            }
        }
    }

    #[test]
    fn fifo_within_one_producer() {
        let ring = SubmissionRing::with_capacity(8);
        for i in 0..5u64 {
            let seq = ring.push(req(i, StartStrategy::Horse, Some(i))).unwrap();
            assert_eq!(seq, i, "push returns the global sequence");
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5u64 {
            assert_eq!(ring.pop().unwrap().function.as_u64(), i);
        }
        assert!(ring.pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_hands_the_request_back() {
        let ring = SubmissionRing::with_capacity(2);
        ring.push(req(0, StartStrategy::Warm, None)).unwrap();
        ring.push(req(1, StartStrategy::Warm, None)).unwrap();
        let err = ring.push(req(2, StartStrategy::Warm, None)).unwrap_err();
        assert_eq!(err.0.function.as_u64(), 2, "the rejected request");
        assert_eq!(err.to_string(), "submission ring full");
        // Freeing one slot re-admits one push.
        assert_eq!(ring.pop().unwrap().function.as_u64(), 0);
        ring.push(req(2, StartStrategy::Warm, None)).unwrap();
        assert_eq!(ring.pop().unwrap().function.as_u64(), 1);
        assert_eq!(ring.pop().unwrap().function.as_u64(), 2);
    }

    #[test]
    fn wraparound_survives_many_laps() {
        let ring = SubmissionRing::with_capacity(4);
        let mut out = Vec::new();
        for lap in 0..100u64 {
            for i in 0..3 {
                ring.push(req(lap * 3 + i, StartStrategy::Horse, None))
                    .unwrap();
            }
            ring.drain_into(&mut out);
        }
        assert_eq!(out.len(), 300);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.function.as_u64(), i as u64, "global FIFO across laps");
        }
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(SubmissionRing::with_capacity(1).capacity(), 2);
        assert_eq!(SubmissionRing::with_capacity(3).capacity(), 4);
        assert_eq!(SubmissionRing::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        use std::sync::Arc;
        let ring = Arc::new(SubmissionRing::with_capacity(1024));
        let producers = 4;
        let per = 200u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let id = (p as u64) * 1_000 + i;
                        ring.push(req(id, StartStrategy::Horse, None)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out), producers * per as usize);
        // No duplication, per-producer FIFO.
        let mut seen: Vec<u64> = out.iter().map(|r| r.function.as_u64()).collect();
        for p in 0..producers as u64 {
            let mine: Vec<u64> = seen.iter().copied().filter(|id| id / 1_000 == p).collect();
            let expected: Vec<u64> = (0..per).map(|i| p * 1_000 + i).collect();
            assert_eq!(mine, expected, "producer {p} stays FIFO");
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), producers * per as usize, "no duplicates");
    }
}
