//! Function registry.

use horse_vmm::SandboxConfig;
use horse_workloads::Category;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(u64);

impl FunctionId {
    /// Raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw form. Crate-internal: the submission
    /// ring round-trips ids through its encoded slot words, and only
    /// ids minted by [`FunctionRegistry::register`] ever enter a ring.
    pub(crate) const fn from_raw(raw: u64) -> Self {
        FunctionId(raw)
    }
}

#[cfg(test)]
impl FunctionId {
    /// Fixed id for unit tests in this crate.
    pub(crate) fn default_for_test() -> Self {
        FunctionId(0)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Metadata of a registered function: what it is and what sandbox it
/// needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionMeta {
    name: String,
    category: Category,
    config: SandboxConfig,
}

impl FunctionMeta {
    /// Creates function metadata.
    pub fn new(name: impl Into<String>, category: Category, config: SandboxConfig) -> Self {
        Self {
            name: name.into(),
            category,
            config,
        }
    }

    /// Function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload category (drives the simulated service time).
    pub fn category(&self) -> Category {
        self.category
    }

    /// Sandbox configuration template for instances of this function.
    pub fn config(&self) -> SandboxConfig {
        self.config
    }
}

/// The platform's function registry.
///
/// # Example
///
/// ```
/// use horse_faas::FunctionRegistry;
/// use horse_vmm::SandboxConfig;
/// use horse_workloads::Category;
///
/// let mut reg = FunctionRegistry::new();
/// let id = reg.register("nat", Category::Cat2, SandboxConfig::default());
/// assert_eq!(reg.get(id).unwrap().name(), "nat");
/// assert_eq!(reg.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FunctionRegistry {
    functions: Vec<FunctionMeta>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function, returning its id.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        category: Category,
        config: SandboxConfig,
    ) -> FunctionId {
        let id = FunctionId(self.functions.len() as u64);
        self.functions
            .push(FunctionMeta::new(name, category, config));
        id
    }

    /// Looks up a function.
    pub fn get(&self, id: FunctionId) -> Option<&FunctionMeta> {
        self.functions.get(id.0 as usize)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Iterates over `(id, meta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionMeta)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, m)| (FunctionId(i as u64), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = FunctionRegistry::new();
        assert!(r.is_empty());
        let a = r.register("fw", Category::Cat1, SandboxConfig::default());
        let b = r.register("nat", Category::Cat2, SandboxConfig::default());
        assert_ne!(a, b);
        assert_eq!(r.get(a).unwrap().category(), Category::Cat1);
        assert_eq!(r.get(b).unwrap().name(), "nat");
        assert_eq!(r.iter().count(), 2);
        assert_eq!(b.to_string(), "fn1");
        assert_eq!(b.as_u64(), 1);
    }

    #[test]
    fn unknown_id_is_none() {
        let r = FunctionRegistry::new();
        assert!(r.get(FunctionId(3)).is_none());
    }
}
