//! Platform-level telemetry: invoke spans, exec spans, pool
//! hit/miss instants and the invoke counters.

use horse_faas::{FaasError, FaasPlatform, PlatformConfig, StartStrategy};
use horse_telemetry::{Counter, EventKind, Recorder};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

fn platform() -> FaasPlatform {
    let mut p = FaasPlatform::new(PlatformConfig::default());
    p.set_recorder(Recorder::enabled());
    p
}

fn ull_config() -> SandboxConfig {
    SandboxConfig::builder().vcpus(2).ull(true).build().unwrap()
}

#[test]
fn horse_invoke_traces_hit_resume_invoke_and_exec() {
    let mut p = platform();
    let f = p.register("nat", Category::Cat2, ull_config());
    p.provision(f, 1, StartStrategy::Horse).unwrap();
    let record = p.invoke(f, StartStrategy::Horse).unwrap();

    let rec = p.recorder().clone();
    assert_eq!(rec.counter_value(Counter::InvokesHorse), 1);
    assert_eq!(rec.counter_value(Counter::PoolHits), 1);
    assert_eq!(rec.counter_value(Counter::PoolMisses), 0);

    let snap = rec.drain();
    assert_eq!(snap.dropped, 0);

    let invoke = snap
        .events
        .iter()
        .find(|e| e.kind == EventKind::InvokeHorse)
        .expect("invoke span");
    assert_eq!(invoke.dur_ns, record.init_ns);
    let exec = snap
        .events
        .iter()
        .find(|e| e.kind == EventKind::Exec)
        .expect("exec span");
    assert_eq!(
        exec.start_ns,
        invoke.end_ns(),
        "exec follows initialization"
    );
    assert_eq!(exec.dur_ns, record.exec_ns);

    let hit = snap
        .events
        .iter()
        .find(|e| e.kind == EventKind::PoolHit)
        .expect("pool-hit instant");
    assert!(hit.start_ns <= invoke.start_ns);

    // The HORSE start resumed a sandbox: the six-step pipeline sits
    // inside the invoke window.
    let resume = snap
        .events
        .iter()
        .find(|e| e.kind == EventKind::Resume)
        .expect("resume span");
    assert!(resume.start_ns >= invoke.start_ns);
    assert!(resume.end_ns() <= invoke.end_ns());
}

#[test]
fn pool_miss_is_an_instant_not_an_invoke() {
    let mut p = platform();
    let f = p.register("filter", Category::Cat3, ull_config());
    let err = p.invoke(f, StartStrategy::Horse).unwrap_err();
    assert_eq!(
        err,
        FaasError::NoWarmSandbox {
            function: f,
            strategy: StartStrategy::Horse
        }
    );

    let rec = p.recorder().clone();
    assert_eq!(rec.counter_value(Counter::PoolMisses), 1);
    assert_eq!(rec.counter_value(Counter::InvokesHorse), 0);
    let snap = rec.drain();
    assert!(snap.events.iter().any(|e| e.kind == EventKind::PoolMiss));
    assert!(!snap.events.iter().any(|e| e.kind == EventKind::InvokeHorse));
}

#[test]
fn cold_and_warm_strategies_use_their_own_kinds() {
    let mut p = platform();
    let f = p.register("fw", Category::Cat1, ull_config());
    p.invoke(f, StartStrategy::Cold).unwrap();
    p.provision(f, 1, StartStrategy::Warm).unwrap();
    p.invoke(f, StartStrategy::Warm).unwrap();

    let rec = p.recorder().clone();
    assert_eq!(rec.counter_value(Counter::InvokesCold), 1);
    assert_eq!(rec.counter_value(Counter::InvokesWarm), 1);
    let snap = rec.drain();
    assert!(snap.events.iter().any(|e| e.kind == EventKind::InvokeCold));
    assert!(snap.events.iter().any(|e| e.kind == EventKind::InvokeWarm));
    assert_eq!(
        snap.events
            .iter()
            .filter(|e| e.kind == EventKind::Exec)
            .count(),
        2
    );
}
