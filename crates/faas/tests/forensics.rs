//! End-to-end forensics: a seeded churn soak through the reliability
//! plane must stitch into one complete span tree per submission.
//!
//! This is the integration half of the forensics acceptance: the unit
//! and property tests in `horse-telemetry` exercise the stitcher on
//! synthetic streams; here the *real* emission pipeline — `Cluster::
//! submit` / `submit_batch` over admission control, breakers, retries,
//! hedging and host churn — produces the events, and the stitched
//! result must be orphan-free, ledger-consistent and bit-identical
//! across same-seed replays.

use std::collections::BTreeMap;

use horse_faas::{
    Cluster, DispatchPolicy, Disposition, FunctionId, HostId, Request, StartStrategy,
};
use horse_faults::{FaultInjector, FaultPlan, FaultSite, FaultTrigger, RetryPolicy};
use horse_reliability::{ChurnConfig, ChurnSchedule, ReliabilityConfig, RequestClass};
use horse_sim::rng::SeedFactory;
use horse_telemetry::forensics::{outcome, ForensicIndex};
use horse_telemetry::{EventKind, Recorder, TelemetryConfig};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;
use rand::rngs::StdRng;
use rand::Rng;

const HOSTS: usize = 6;
const TARGET_SUBMISSIONS: u64 = 3_000;
const BURST: usize = 64;
const BURST_EVERY: u64 = 512;
const PROVISION: usize = 6;
const REPLENISH_EVERY: u64 = 32;
const ULL_DEADLINE_NS: u64 = 100_000;
const BG_DEADLINE_NS: u64 = 50_000_000;

/// Disposition tallies kept outside the plane, from returned values.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Tally {
    submissions: u64,
    completions: u64,
    sheds: u64,
    deadline_misses: u64,
    failures: u64,
    hedged_completions: u64,
    met_deadline: u64,
}

struct Soak {
    index: ForensicIndex,
    tally: Tally,
    internal: horse_reliability::StatsSnapshot,
}

fn ull_request(f: FunctionId) -> Request {
    Request {
        function: f,
        strategy: StartStrategy::Horse,
        class: RequestClass::Ull,
        deadline_ns: Some(ULL_DEADLINE_NS),
    }
}

fn bg_request(f: FunctionId, rng: &mut StdRng) -> Request {
    Request {
        function: f,
        strategy: StartStrategy::Warm,
        class: RequestClass::Background,
        deadline_ns: if rng.gen_bool(0.5) {
            Some(BG_DEADLINE_NS)
        } else {
            None
        },
    }
}

/// The `slo_report` soak, shrunk to test scale: 6 hosts, one chronically
/// sick host, 80/20 uLL/background, periodic background bursts, seeded
/// join/leave/crash churn.
fn soak(seed: u64) -> Soak {
    let mut cluster = Cluster::new(HOSTS, DispatchPolicy::RoundRobin, seed);
    // One shard so the single-threaded soak cannot overflow a ring
    // (stitching demands a lossless stream).
    let recorder = Recorder::new(TelemetryConfig {
        shards: 1,
        capacity_per_shard: 1 << 19,
    });
    cluster.set_recorder(recorder.clone());

    let ull_cfg = SandboxConfig::builder().vcpus(1).ull(true).build().unwrap();
    let bg_cfg = SandboxConfig::builder().vcpus(2).build().unwrap();
    let ull_fn = cluster.register("filter", Category::Cat3, ull_cfg);
    let bg_fn = cluster.register("nat", Category::Cat2, bg_cfg);
    cluster.set_reliability(ReliabilityConfig::with_seed(seed));

    cluster.set_host_injector(
        HostId(0),
        FaultInjector::new(
            seed ^ 0x51C4,
            FaultPlan::new().with(FaultSite::PoolEntryInvalid, FaultTrigger::Nth(3)),
        ),
    );
    cluster.set_host_retry_policy(
        HostId(0),
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
    );

    for (f, strat) in [(ull_fn, StartStrategy::Horse), (bg_fn, StartStrategy::Warm)] {
        cluster
            .provision_all(f, PROVISION, strat)
            .expect("initial provisioning on a healthy fleet");
    }

    let factory = SeedFactory::new(seed);
    let mut rng = factory.stream("faas/forensics-soak");
    let schedule = ChurnSchedule::generate(
        &factory,
        HOSTS,
        &ChurnConfig {
            period: 250,
            events: 10,
            min_alive: 3,
        },
    );
    let rejoin_warm = [
        (ull_fn, StartStrategy::Horse, PROVISION),
        (bg_fn, StartStrategy::Warm, PROVISION),
    ];

    let mut tally = Tally::default();
    let mut observe = |d: &Disposition| {
        tally.submissions += 1;
        match d {
            Disposition::Completed {
                hedged,
                met_deadline,
                ..
            } => {
                tally.completions += 1;
                if *hedged {
                    tally.hedged_completions += 1;
                }
                if *met_deadline {
                    tally.met_deadline += 1;
                }
            }
            Disposition::Shed { .. } => tally.sheds += 1,
            Disposition::DeadlineExceeded { .. } => tally.deadline_misses += 1,
            Disposition::Failed { .. } => tally.failures += 1,
        }
    };

    let mut churn_cursor = 0usize;
    let mut submitted = 0u64;
    let mut round = 0u64;
    while submitted < TARGET_SUBMISSIONS {
        for event in schedule.due(&mut churn_cursor, submitted) {
            let _ = cluster.apply_churn(event, &rejoin_warm);
        }
        if round % REPLENISH_EVERY == 0 {
            for h in 0..HOSTS {
                let _ = cluster.provision_on(HostId(h), ull_fn, 1, StartStrategy::Horse);
                let _ = cluster.provision_on(HostId(h), bg_fn, 1, StartStrategy::Warm);
            }
        }
        if round % BURST_EVERY == BURST_EVERY - 1 {
            let batch: Vec<Request> = (0..BURST).map(|_| bg_request(bg_fn, &mut rng)).collect();
            for d in cluster.submit_batch(&batch) {
                observe(&d);
            }
            submitted += BURST as u64;
        } else {
            let req = if rng.gen_bool(0.8) {
                ull_request(ull_fn)
            } else {
                bg_request(bg_fn, &mut rng)
            };
            let d = cluster.submit(req);
            observe(&d);
            submitted += 1;
        }
        round += 1;
    }

    Soak {
        index: ForensicIndex::stitch(&recorder.drain()),
        tally,
        internal: cluster.reliability_snapshot(),
    }
}

#[test]
fn churn_soak_stitches_one_complete_tree_per_submission() {
    let run = soak(42);
    let index = &run.index;

    // Completeness: a lossless, correctly threaded emission pipeline
    // leaves nothing unattached.
    assert_eq!(index.dropped_events, 0, "ring overflowed; grow the shard");
    assert_eq!(index.orphan_events, 0, "orphaned events");
    assert_eq!(index.extra_roots, 0, "multi-root invocations");
    assert!(index.is_complete());

    // One Submit-rooted tree per submission — sheds included.
    let trees: Vec<_> = index.submission_trees().collect();
    assert_eq!(trees.len() as u64, run.tally.submissions);
    assert_eq!(
        index.trees.len(),
        trees.len(),
        "non-submission trees leaked"
    );

    // Every tree is structurally sound and its stamp joins back to the
    // reliability ledger.
    let mut by_outcome: BTreeMap<u8, u64> = BTreeMap::new();
    let mut hedged = 0u64;
    let mut met = 0u64;
    for tree in &trees {
        let violations = tree.check();
        assert!(violations.is_empty(), "{violations:?}");
        let stamp = tree.stamp().expect("submission trees carry a stamp");
        *by_outcome.entry(stamp.outcome).or_default() += 1;
        if stamp.hedged {
            hedged += 1;
            // A hedged submission's tree must actually show the hedge
            // branch.
            assert!(
                tree.contains_kind(EventKind::HedgeAttempt),
                "hedged stamp without a hedge_attempt span:\n{}",
                tree.render_ascii()
            );
        }
        if stamp.met_deadline {
            met += 1;
        }
        match stamp.outcome {
            outcome::SHED => {
                // Shed trees stop at the gate: an admission instant,
                // no routing.
                assert!(tree.contains_kind(EventKind::AdmissionGate));
                assert!(!tree.contains_kind(EventKind::RouteAttempt));
            }
            _ => {
                // Everything admitted must show at least one routing
                // attempt (deadline misses and failures included —
                // that is what makes the tree a usable postmortem).
                assert!(
                    tree.contains_kind(EventKind::RouteAttempt),
                    "admitted submission with no route_attempt:\n{}",
                    tree.render_ascii()
                );
            }
        }
    }

    // Stamp tallies == external disposition tallies == plane ledger.
    let count = |code: u8| by_outcome.get(&code).copied().unwrap_or(0);
    assert_eq!(count(outcome::COMPLETED), run.tally.completions);
    assert_eq!(count(outcome::SHED), run.tally.sheds);
    assert_eq!(count(outcome::DEADLINE), run.tally.deadline_misses);
    assert_eq!(count(outcome::FAILED), run.tally.failures);
    assert_eq!(hedged, run.tally.hedged_completions);
    assert_eq!(met, run.tally.met_deadline);
    assert_eq!(run.internal.submissions, run.tally.submissions);
    assert_eq!(run.internal.completions, run.tally.completions);
    assert_eq!(run.internal.sheds, run.tally.sheds);
    assert_eq!(run.internal.deadline_misses, run.tally.deadline_misses);
    assert_eq!(run.internal.failures, run.tally.failures);

    // The soak must actually exercise the interesting paths, or the
    // assertions above are vacuous.
    assert!(run.tally.sheds > 0, "no sheds — soak too gentle");
    assert!(run.internal.retries > 0, "no retries — sick host never bit");
}

#[test]
fn forensic_index_is_bit_identical_across_same_seed_runs() {
    let a = soak(1337);
    let b = soak(1337);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.index.trees.len(), b.index.trees.len());
    assert_eq!(
        a.index.fingerprint(),
        b.index.fingerprint(),
        "same-seed soaks stitched to different forests"
    );

    // A different seed must not collide (sanity: the fingerprint sees
    // content, not just shape counts).
    let c = soak(20_260_807);
    assert_ne!(a.index.fingerprint(), c.index.fingerprint());
}
