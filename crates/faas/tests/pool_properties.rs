//! Model-based property tests for the warm pool and the uLL scaler.

use horse_faas::{KeepAlive, UllScaler, UllScalerConfig, WarmPool};
use horse_sched::SandboxId;
use horse_sim::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum PoolOp {
    Put(u64),
    Take,
    AdvanceAndEvict(u64),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (0u64..64).prop_map(PoolOp::Put),
        Just(PoolOp::Take),
        (1u64..400).prop_map(PoolOp::AdvanceAndEvict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The pool against a vector model: same contents, same hits/misses,
    /// same evictions under arbitrary operation sequences.
    #[test]
    fn pool_matches_reference_model(ops in proptest::collection::vec(pool_op(), 0..60)) {
        let ttl = SimDuration::from_secs(120);
        let mut pool = WarmPool::new(KeepAlive::Ttl(ttl));
        // Model: (id, last_used) in insertion order.
        let mut model: Vec<(u64, SimTime)> = Vec::new();
        let mut now = SimTime::ZERO;
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);

        for op in ops {
            match op {
                PoolOp::Put(id) => {
                    pool.put(SandboxId::new(id), now);
                    model.push((id, now));
                }
                PoolOp::Take => match (pool.take(now), model.pop()) {
                    (Some(got), Some((want, _))) => {
                        hits += 1;
                        prop_assert_eq!(got, SandboxId::new(want), "LIFO order");
                    }
                    (None, None) => misses += 1,
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "divergence: pool {got:?} vs model {want:?}"
                        )))
                    }
                },
                PoolOp::AdvanceAndEvict(secs) => {
                    now += SimDuration::from_secs(secs);
                    let expired = pool.evict_expired(now);
                    let expected: Vec<u64> = model
                        .iter()
                        .take_while(|(_, since)| now.since(*since) > ttl)
                        .map(|(id, _)| *id)
                        .collect();
                    let got: Vec<u64> = expired.iter().map(|s| s.as_u64()).collect();
                    prop_assert_eq!(&got, &expected, "eviction set");
                    evictions += expected.len() as u64;
                    model.drain(..expected.len());
                }
            }
            prop_assert_eq!(pool.len(), model.len());
        }
        let s = pool.stats();
        prop_assert_eq!((s.hits, s.misses, s.evictions), (hits, misses, evictions));
    }

    /// The scaler's rate always equals the count of in-window triggers
    /// divided by the window, and the recommendation is its ceiling ratio
    /// clamped to bounds.
    #[test]
    fn scaler_matches_oracle(
        gaps_ms in proptest::collection::vec(1u64..2_000, 0..80),
        check_after_ms in 0u64..5_000,
    ) {
        let window = SimDuration::from_secs(2);
        let per_queue = 5.0;
        let mut scaler = UllScaler::new(UllScalerConfig {
            window,
            triggers_per_sec_per_queue: per_queue,
            min_queues: 1,
            max_queues: 6,
        });
        let mut t = SimTime::ZERO;
        let mut times = Vec::new();
        for g in gaps_ms {
            t += SimDuration::from_millis(g);
            scaler.observe_trigger(t);
            times.push(t);
        }
        let now = t + SimDuration::from_millis(check_after_ms);
        let in_window = times
            .iter()
            .filter(|&&x| now.since(x) <= window)
            .count();
        let expected_rate = in_window as f64 / window.as_secs_f64();
        prop_assert!((scaler.rate(now) - expected_rate).abs() < 1e-9);
        let expected_queues =
            ((expected_rate / per_queue).ceil() as usize).clamp(1, 6);
        prop_assert_eq!(scaler.recommended_queues(now), expected_queues);
    }
}
