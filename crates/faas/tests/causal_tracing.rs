//! End-to-end causal tracing over a seeded cluster workload.
//!
//! PR 3's tentpole guarantee: every span recorded while a platform
//! invocation is in flight carries that invocation's [`TraceContext`] —
//! from cluster routing through warm-pool take, scheduler dispatch and
//! the vmm's pause/resume steps — and the resulting snapshot folds into
//! a [`TailAttribution`] with *zero orphan spans*. On top of the same
//! replay this asserts the paper's headline breakdown: steps ④ (sorted
//! merge) + ⑤ (load update) are ≥ 85 % of the p99 vanilla resume
//! (§3.2 reports 87.5–93.1 %).

use std::collections::{BTreeMap, BTreeSet};

use horse_faas::{Cluster, DispatchPolicy, StartStrategy};
use horse_metrics::TailAttribution;
use horse_telemetry::{Event, EventKind, Recorder, TraceSnapshot};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

const SEED: u64 = 42;
const ROUNDS: usize = 200;

/// Replays the seeded workload and returns the invocation-phase
/// snapshot (provisioning events are drained away first — provisioning
/// is deliberately untraced).
fn replay() -> (TraceSnapshot, usize) {
    let mut cluster = Cluster::new(3, DispatchPolicy::RoundRobin, SEED);
    let recorder = Recorder::enabled();
    cluster.set_recorder(recorder.clone());

    // Paper-faithful vanilla config for the warm class: 1 vCPU, no ULL
    // fast path, so the resume is the unmodified six-step pipeline the
    // §3.2 breakdown measures.
    let vanilla = SandboxConfig::builder().vcpus(1).build().unwrap();
    let ull = SandboxConfig::builder().vcpus(2).ull(true).build().unwrap();
    let warm_fn = cluster.register("nat", Category::Cat2, vanilla);
    let horse_fn = cluster.register("filter", Category::Cat3, ull);
    cluster
        .provision_all(warm_fn, 2, StartStrategy::Warm)
        .unwrap();
    cluster
        .provision_all(horse_fn, 2, StartStrategy::Horse)
        .unwrap();

    // Provisioning pauses are out-of-invocation work: drop them so the
    // snapshot below contains invocation-phase events only.
    recorder.drain();

    let mut invocations = 0;
    for _ in 0..ROUNDS {
        cluster.invoke(warm_fn, StartStrategy::Warm).unwrap();
        cluster.invoke(horse_fn, StartStrategy::Horse).unwrap();
        invocations += 2;
    }
    let snapshot = recorder.drain();
    assert_eq!(
        snapshot.dropped, 0,
        "ring overflow would invalidate the test"
    );
    (snapshot, invocations)
}

fn by_invocation(snapshot: &TraceSnapshot) -> BTreeMap<u64, Vec<&Event>> {
    let mut groups: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for event in &snapshot.events {
        groups.entry(event.invocation).or_default().push(event);
    }
    groups
}

#[test]
fn every_invocation_span_carries_a_valid_trace_context() {
    let (snapshot, invocations) = replay();

    // Nothing recorded during the replay may be untraced: the cluster
    // mints a context before routing and clears it after, and every
    // layer below inherits it.
    let untraced: Vec<_> = snapshot
        .events
        .iter()
        .filter(|e| e.invocation == 0)
        .map(|e| e.kind)
        .collect();
    assert!(untraced.is_empty(), "untraced spans: {untraced:?}");

    let groups = by_invocation(&snapshot);
    assert_eq!(groups.len(), invocations, "one trace id per invocation");

    for (inv, events) in &groups {
        // Exactly one root: the invoke-phase span, parent None.
        let roots: Vec<_> = events
            .iter()
            .filter(|e| e.parent.is_none())
            .map(|e| e.kind)
            .collect();
        assert_eq!(roots.len(), 1, "invocation {inv} roots: {roots:?}");
        assert!(
            matches!(roots[0], EventKind::InvokeWarm | EventKind::InvokeHorse),
            "invocation {inv} rooted at {:?}",
            roots[0]
        );

        // Causal closure: every event's parent kind occurs in the same
        // invocation — no span points at a kind the trace never saw.
        let kinds: BTreeSet<EventKind> = events.iter().map(|e| e.kind).collect();
        for event in events {
            if let Some(parent) = event.parent {
                assert!(
                    kinds.contains(&parent),
                    "invocation {inv}: {:?} parented to absent {parent:?}",
                    event.kind
                );
            }
        }
    }
}

#[test]
fn attribution_sees_zero_orphans_and_blames_steps_four_and_five() {
    let (snapshot, _) = replay();
    let attribution = TailAttribution::from_snapshot(&snapshot);

    assert_eq!(attribution.orphan_spans, 0, "zero orphan spans");
    assert!(!attribution.is_lossy());
    assert_eq!(
        attribution.classes.keys().copied().collect::<Vec<_>>(),
        vec!["horse", "warm"]
    );

    // Paper §3.2: the sorted merge (④) and load update (⑤) dominate the
    // vanilla resume — 87.5–93.1 % across vCPU counts. The warm class
    // resumes through the unmodified pipeline, so its p99 attribution
    // must reproduce that.
    let warm = &attribution.classes["warm"];
    assert_eq!(warm.e2e.len(), ROUNDS as u64);
    let p99 = warm.at_percentile(99.0).unwrap();
    assert!(
        p99.dominant_share() >= 0.85,
        "steps ④+⑤ share of p99 vanilla resume was {:.3}",
        p99.dominant_share()
    );

    // Exemplars must link back to real traced invocations.
    let traced: BTreeSet<u64> = snapshot.events.iter().map(|e| e.invocation).collect();
    assert!(!p99.exemplars.is_empty());
    for id in &p99.exemplars {
        assert!(traced.contains(id), "exemplar {id} not in trace");
    }

    // And the HORSE class must beat vanilla at the same percentile —
    // the point of the paper.
    let horse = &attribution.classes["horse"];
    assert!(
        horse.resume.percentile(99.0) < warm.resume.percentile(99.0),
        "horse p99 resume {} !< warm p99 resume {}",
        horse.resume.percentile(99.0),
        warm.resume.percentile(99.0)
    );
}

#[test]
fn replay_is_deterministic_per_seed() {
    let (a, _) = replay();
    let (b, _) = replay();
    let key = |s: &TraceSnapshot| {
        let mut v: Vec<_> = s
            .events
            .iter()
            .map(|e| (e.invocation, e.kind as u8, e.start_ns, e.dur_ns))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(key(&a), key(&b));
}
