//! Batch-vs-sequential equivalence: the batched invoke path exists to
//! amortize bookkeeping, not to change behavior. Every test here runs
//! the same seeded workload twice — once through a batch entry point
//! (`FaasPlatform::invoke_batch`, `Cluster::invoke_batch`, or a
//! `SubmissionRing` drained by `Cluster::submit_ring`) and once through
//! the one-at-a-time path — and demands bit-identical results: the
//! records themselves, the counter/gauge ledger, and the stitched
//! forensic forest fingerprints (which hash virtual timestamps, so even
//! the event timeline must match).

use horse_faas::{
    Cluster, DispatchPolicy, FaasPlatform, FunctionId, HostId, InvocationRecord, PlatformConfig,
    Request, StartStrategy, SubmissionRing,
};
use horse_reliability::{ReliabilityConfig, RequestClass};
use horse_telemetry::counters::{Counter, Gauge};
use horse_telemetry::forensics::ForensicIndex;
use horse_telemetry::{Recorder, TelemetryConfig};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROUNDS: usize = 64;
const POOL: usize = 8;

fn big_recorder() -> Recorder {
    // One shard so single-threaded runs cannot overflow a ring: the
    // forest fingerprints below demand a lossless stream.
    Recorder::new(TelemetryConfig {
        shards: 1,
        capacity_per_shard: 1 << 18,
    })
}

fn ull_config() -> SandboxConfig {
    SandboxConfig::builder().vcpus(1).ull(true).build().unwrap()
}

/// A platform with an enabled recorder and a provisioned horse pool.
fn traced_platform(seed: u64) -> (FaasPlatform, Recorder, FunctionId) {
    let mut platform = FaasPlatform::new(PlatformConfig {
        seed,
        ..PlatformConfig::default()
    });
    let recorder = big_recorder();
    platform.set_recorder(recorder.clone());
    let f = platform.register("filter", Category::Cat3, ull_config());
    platform
        .provision(f, POOL, StartStrategy::Horse)
        .expect("provisioning a fresh platform");
    (platform, recorder, f)
}

/// Tentpole invariant, platform layer: a batch of `N` warm invokes is
/// indistinguishable — records, counters, gauges, and the full span
/// forest including timestamps — from `N` sequential invokes.
#[test]
fn platform_batch_is_bit_identical_to_sequential_invokes() {
    let (batch_platform, batch_recorder, f) = traced_platform(42);
    let mut batched: Vec<InvocationRecord> = Vec::new();
    batch_platform
        .invoke_batch(f, StartStrategy::Horse, ROUNDS, &mut batched)
        .expect("healthy pool serves the whole batch");

    let (seq_platform, seq_recorder, f2) = traced_platform(42);
    let sequential: Vec<InvocationRecord> = (0..ROUNDS)
        .map(|_| {
            seq_platform
                .invoke(f2, StartStrategy::Horse)
                .expect("healthy pool serves every invoke")
        })
        .collect();

    assert_eq!(batched, sequential, "records diverged");
    for c in [Counter::InvokesHorse, Counter::PoolHits] {
        assert_eq!(
            batch_recorder.counter_value(c),
            seq_recorder.counter_value(c),
            "counter {c:?} diverged"
        );
    }
    assert_eq!(
        batch_recorder.gauge_value(Gauge::PooledSandboxes),
        seq_recorder.gauge_value(Gauge::PooledSandboxes),
        "pool gauge diverged"
    );

    let batch_forest = ForensicIndex::stitch(&batch_recorder.drain());
    let seq_forest = ForensicIndex::stitch(&seq_recorder.drain());
    assert!(batch_forest.is_complete());
    assert!(seq_forest.is_complete());
    assert_eq!(batch_forest.trees.len(), ROUNDS);
    assert_eq!(
        batch_forest.fingerprint(),
        seq_forest.fingerprint(),
        "span forests diverged (structure or virtual timestamps)"
    );
}

fn plain_cluster(hosts: usize, seed: u64) -> (Cluster, FunctionId) {
    let mut cluster = Cluster::new(hosts, DispatchPolicy::RoundRobin, seed);
    let f = cluster.register("filter", Category::Cat3, ull_config());
    cluster
        .provision_all(f, POOL, StartStrategy::Horse)
        .expect("provisioning a healthy fleet");
    (cluster, f)
}

/// Tentpole invariant, cluster layer: with round-robin routing and one
/// driver thread, the batched path routes the same request to the same
/// host and each host serves its share in the same order, so per-host
/// record sequences are bit-identical. (The batch groups *output* by
/// host; the cross-host interleaving is the one thing allowed to
/// differ.)
#[test]
fn cluster_batch_preserves_per_host_record_sequences() {
    const HOSTS: usize = 4;
    const COUNT: usize = 48;

    let (batch_cluster, f) = plain_cluster(HOSTS, 7);
    let mut batched: Vec<(HostId, InvocationRecord)> = Vec::new();
    let served = batch_cluster
        .invoke_batch(f, StartStrategy::Horse, COUNT, &mut batched)
        .expect("healthy fleet serves the whole batch");
    assert_eq!(served, COUNT);
    assert_eq!(batched.len(), COUNT);

    let (seq_cluster, f2) = plain_cluster(HOSTS, 7);
    let sequential: Vec<(HostId, InvocationRecord)> = (0..COUNT)
        .map(|_| {
            seq_cluster
                .invoke(f2, StartStrategy::Horse)
                .expect("healthy fleet serves every invoke")
        })
        .collect();

    let per_host = |records: &[(HostId, InvocationRecord)], host: usize| -> Vec<InvocationRecord> {
        records
            .iter()
            .filter(|(h, _)| h.0 == host)
            .map(|&(_, r)| r)
            .collect()
    };
    for host in 0..HOSTS {
        assert_eq!(
            per_host(&batched, host),
            per_host(&sequential, host),
            "host {host} record sequence diverged"
        );
    }
}

/// A batch larger than a host's submission ring forces the inline
/// drain-and-retry path; nothing may be lost or duplicated.
#[test]
fn cluster_batch_survives_ring_overflow() {
    // One host and more requests than BATCH_RING_CAPACITY (1024), so
    // enqueueing must drain mid-batch at least once.
    const COUNT: usize = 1_500;
    let (cluster, f) = plain_cluster(1, 11);
    let mut out = Vec::new();
    let served = cluster
        .invoke_batch(f, StartStrategy::Horse, COUNT, &mut out)
        .expect("healthy host serves the whole batch");
    assert_eq!(served, COUNT);
    assert_eq!(out.len(), COUNT);

    let (seq_cluster, f2) = plain_cluster(1, 11);
    let sequential: Vec<InvocationRecord> = (0..COUNT)
        .map(|_| seq_cluster.invoke(f2, StartStrategy::Horse).unwrap().1)
        .collect();
    let batched: Vec<InvocationRecord> = out.into_iter().map(|(_, r)| r).collect();
    assert_eq!(batched, sequential, "inline ring drain reordered records");
}

const ULL_DEADLINE_NS: u64 = 100_000;
const BG_DEADLINE_NS: u64 = 50_000_000;

/// A reliable, traced cluster plus a seeded request mix small enough
/// that admission capacity is never binding (the documented boundary of
/// the ring/sequential equivalence: `submit_batch` holds the whole
/// batch's slots while admitting, the sequential path releases each
/// before the next).
fn reliable_cluster(seed: u64) -> (Cluster, Recorder, Vec<Request>) {
    let mut cluster = Cluster::new(2, DispatchPolicy::RoundRobin, seed);
    let recorder = big_recorder();
    cluster.set_recorder(recorder.clone());
    let ull_fn = cluster.register("filter", Category::Cat3, ull_config());
    let bg_cfg = SandboxConfig::builder().vcpus(2).build().unwrap();
    let bg_fn = cluster.register("nat", Category::Cat2, bg_cfg);
    cluster.set_reliability(ReliabilityConfig::with_seed(seed));
    for (f, strat) in [(ull_fn, StartStrategy::Horse), (bg_fn, StartStrategy::Warm)] {
        cluster
            .provision_all(f, POOL, strat)
            .expect("provisioning a healthy fleet");
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
    let requests: Vec<Request> = (0..16)
        .map(|_| {
            if rng.gen_bool(0.7) {
                Request {
                    function: ull_fn,
                    strategy: StartStrategy::Horse,
                    class: RequestClass::Ull,
                    deadline_ns: Some(ULL_DEADLINE_NS),
                }
            } else {
                Request {
                    function: bg_fn,
                    strategy: StartStrategy::Warm,
                    class: RequestClass::Background,
                    deadline_ns: if rng.gen_bool(0.5) {
                        Some(BG_DEADLINE_NS)
                    } else {
                        None
                    },
                }
            }
        })
        .collect();
    (cluster, recorder, requests)
}

/// Tentpole invariant, reliability layer: requests pushed through a
/// [`SubmissionRing`] and drained by [`Cluster::submit_ring`] yield
/// bit-identical dispositions, ledger tallies, and forensic tree
/// fingerprints vs pushing each through [`Cluster::submit`] one at a
/// time at the same seed.
#[test]
fn ring_submission_is_bit_identical_to_sequential_submits() {
    let (ring_cluster, ring_recorder, requests) = reliable_cluster(1337);
    let ring = SubmissionRing::with_capacity(requests.len());
    for &req in &requests {
        ring.push(req).expect("ring sized for the whole batch");
    }
    let ring_dispositions = ring_cluster.submit_ring(&ring);
    assert!(ring.is_empty(), "submit_ring must drain the ring");
    assert_eq!(ring_dispositions.len(), requests.len());

    let (seq_cluster, seq_recorder, same_requests) = reliable_cluster(1337);
    assert_eq!(requests, same_requests, "request generation not seeded");
    let seq_dispositions: Vec<_> = same_requests
        .iter()
        .map(|&req| seq_cluster.submit(req))
        .collect();

    // Dispositions carry records, hosts, latencies, hedge and deadline
    // flags; the Debug form covers every field, so string equality is
    // full bit-identity.
    for (i, (a, b)) in ring_dispositions.iter().zip(&seq_dispositions).enumerate() {
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "disposition {i} diverged"
        );
    }

    assert_eq!(
        ring_cluster.reliability_snapshot(),
        seq_cluster.reliability_snapshot(),
        "reliability ledger diverged"
    );

    let ring_forest = ForensicIndex::stitch(&ring_recorder.drain());
    let seq_forest = ForensicIndex::stitch(&seq_recorder.drain());
    assert!(ring_forest.is_complete());
    assert!(seq_forest.is_complete());
    assert_eq!(ring_forest.trees.len(), requests.len());
    assert_eq!(
        ring_forest.fingerprint(),
        seq_forest.fingerprint(),
        "forensic forests diverged (structure or virtual timestamps)"
    );
}

/// Multi-producer feed: three threads push disjoint request streams
/// into one ring; `submit_ring` must serve exactly the union — nothing
/// lost, nothing duplicated — regardless of interleaving.
#[test]
fn ring_submission_conserves_requests_across_producers() {
    const PRODUCERS: usize = 3;
    const PER_PRODUCER: usize = 5;

    let mut cluster = Cluster::new(2, DispatchPolicy::RoundRobin, 7);
    let ull_fn = cluster.register("filter", Category::Cat3, ull_config());
    cluster.set_reliability(ReliabilityConfig::with_seed(7));
    cluster
        .provision_all(ull_fn, POOL, StartStrategy::Horse)
        .expect("provisioning a healthy fleet");
    let ring = std::sync::Arc::new(SubmissionRing::with_capacity(64));
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let ring = std::sync::Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..PER_PRODUCER {
                    ring.push(Request {
                        function: ull_fn,
                        strategy: StartStrategy::Horse,
                        class: RequestClass::Ull,
                        // Deadline doubles as a (producer, index) tag.
                        deadline_ns: Some(1_000_000 + (p * PER_PRODUCER + i) as u64),
                    })
                    .expect("ring sized for all producers");
                }
            });
        }
    });
    assert_eq!(ring.len(), PRODUCERS * PER_PRODUCER);

    let dispositions = cluster.submit_ring(&ring);
    assert_eq!(dispositions.len(), PRODUCERS * PER_PRODUCER);
    assert_eq!(
        cluster.reliability_snapshot().submissions,
        (PRODUCERS * PER_PRODUCER) as u64
    );
}
