//! Concurrency correctness of the invocation plane.
//!
//! The `&self` invoke path (DESIGN.md §10) claims three properties that
//! no type signature can enforce, so this suite pins them down:
//!
//! 1. **Conservation** — N threads hammering a shared `Arc<Cluster>`
//!    never lose or duplicate a warm sandbox: after every in-flight
//!    invocation drains, the fleet's pools hold exactly the provisioned
//!    inventory again, and no sandbox id is served to two threads at
//!    once.
//! 2. **Stats consistency** — the fleet-aggregate [`PoolStats`] add up:
//!    every successful pool-backed invocation is exactly one hit, with
//!    no faults enabled there are no evictions, and misses only come
//!    from transient all-in-flight windows.
//! 3. **Single-threaded determinism** — one driver thread observes
//!    bit-identical records run over run; the concurrency machinery
//!    (sharded pools, atomics, CAS routing) costs nothing in
//!    reproducibility.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use horse_faas::{Cluster, DispatchPolicy, FaasError, StartStrategy};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

const HOSTS: usize = 4;
const PER_HOST: usize = 4;
const THREADS: usize = 8;
const ROUNDS: usize = 200;

fn horse_cluster(seed: u64) -> (Cluster, horse_faas::FunctionId) {
    let mut cluster = Cluster::new(HOSTS, DispatchPolicy::RoundRobin, seed);
    let cfg = SandboxConfig::builder()
        .vcpus(2)
        .ull(true)
        .build()
        .expect("static config");
    let f = cluster.register("filter", Category::Cat3, cfg);
    cluster
        .provision_all(f, PER_HOST, StartStrategy::Horse)
        .expect("provision");
    (cluster, f)
}

/// Invoke with bounded retries over transient all-in-flight windows.
/// Returns `None` if the pool stayed dry for the whole retry budget
/// (which the callers treat as a failure).
fn invoke_retrying(
    cluster: &Cluster,
    f: horse_faas::FunctionId,
) -> Option<horse_faas::InvocationRecord> {
    for _ in 0..10_000 {
        match cluster.invoke(f, StartStrategy::Horse) {
            Ok((_, record)) => return Some(record),
            Err(FaasError::NoWarmSandbox { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected invoke error: {e}"),
        }
    }
    None
}

#[test]
fn concurrent_invocations_conserve_the_warm_inventory() {
    let (cluster, f) = horse_cluster(42);
    let provisioned: usize = (0..HOSTS)
        .map(|i| {
            cluster
                .host(horse_faas::HostId(i))
                .pool_size(f, StartStrategy::Horse)
        })
        .sum();
    assert_eq!(provisioned, HOSTS * PER_HOST);

    let cluster = Arc::new(cluster);
    let successes = AtomicU64::new(0);
    let dry = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    match invoke_retrying(&cluster, f) {
                        Some(record) => {
                            assert!(record.init_ns > 0, "resume work is never free");
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            dry.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        dry.load(Ordering::Relaxed),
        0,
        "the pool must never stay dry: {} sandboxes, {} threads",
        HOSTS * PER_HOST,
        THREADS
    );
    assert_eq!(successes.load(Ordering::Relaxed) as usize, THREADS * ROUNDS);

    // Every in-flight sandbox re-paused into its pool: the inventory is
    // intact — nothing lost to a race, nothing duplicated.
    let after: usize = (0..HOSTS)
        .map(|i| {
            cluster
                .host(horse_faas::HostId(i))
                .pool_size(f, StartStrategy::Horse)
        })
        .sum();
    assert_eq!(after, HOSTS * PER_HOST, "warm inventory conserved");

    // Stats add up: one hit per successful invocation, zero evictions
    // (no keep-alive clock advance, no faults).
    let stats = cluster.aggregate_pool_stats(f, StartStrategy::Horse);
    assert_eq!(stats.hits, (THREADS * ROUNDS) as u64);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn no_sandbox_is_served_to_two_threads_at_once() {
    let (cluster, f) = horse_cluster(7);
    let cluster = Arc::new(cluster);
    // Track in-flight (host, invocation-slot) exclusivity through the
    // record's trace id; with the recorder disabled the id is 0, so key
    // on the sandbox identity instead: two threads holding the same
    // sandbox at the same time would double-free on re-pause and panic
    // inside the VMM. Run with the recorder enabled to also check that
    // concurrently minted invocation ids never collide.
    let mut shared = Cluster::new(2, DispatchPolicy::RoundRobin, 11);
    let cfg = SandboxConfig::builder().ull(true).build().unwrap();
    let g = shared.register("nat", Category::Cat2, cfg);
    let recorder = horse_telemetry::Recorder::enabled();
    shared.set_recorder(recorder);
    shared.provision_all(g, 4, StartStrategy::Horse).unwrap();
    let shared = Arc::new(shared);

    let ids = Mutex::new(HashSet::new());
    let total = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ROUNDS / 2 {
                    if let Some(record) = invoke_retrying(&shared, g) {
                        total.fetch_add(1, Ordering::Relaxed);
                        assert!(record.invocation > 0, "traced run mints ids");
                        assert!(
                            ids.lock().unwrap().insert(record.invocation),
                            "invocation id {} minted twice",
                            record.invocation
                        );
                    }
                }
            });
        }
    });
    assert_eq!(
        ids.lock().unwrap().len() as u64,
        total.load(Ordering::Relaxed),
        "every successful invocation got a unique trace id"
    );
    // The quieter cluster from the helper stays untouched by this test,
    // but its inventory must still be intact (nothing leaks across
    // instances).
    let untouched: usize = (0..HOSTS)
        .map(|i| {
            cluster
                .host(horse_faas::HostId(i))
                .pool_size(f, StartStrategy::Horse)
        })
        .sum();
    assert_eq!(untouched, HOSTS * PER_HOST);
}

#[test]
fn single_threaded_runs_are_bit_identical() {
    let run = |seed: u64| -> Vec<(usize, u64, u64)> {
        let (cluster, f) = horse_cluster(seed);
        (0..100)
            .map(|_| {
                let (host, record) = cluster.invoke(f, StartStrategy::Horse).expect("invoke");
                (host.0, record.init_ns, record.exec_ns)
            })
            .collect()
    };
    assert_eq!(run(42), run(42), "same seed, same records, same routing");
    assert_ne!(run(42), run(1337), "seeds matter (exec sampling differs)");
}

#[test]
fn mixed_strategies_under_contention_keep_pools_separate() {
    let mut cluster = Cluster::new(2, DispatchPolicy::RoundRobin, 3);
    let vanilla = SandboxConfig::builder().vcpus(1).build().unwrap();
    let ull = SandboxConfig::builder().vcpus(2).ull(true).build().unwrap();
    let warm_fn = cluster.register("nat", Category::Cat2, vanilla);
    let horse_fn = cluster.register("filter", Category::Cat3, ull);
    cluster
        .provision_all(warm_fn, 3, StartStrategy::Warm)
        .unwrap();
    cluster
        .provision_all(horse_fn, 3, StartStrategy::Horse)
        .unwrap();
    let cluster = Arc::new(cluster);

    std::thread::scope(|scope| {
        for t in 0..4 {
            let (f, strategy) = if t % 2 == 0 {
                (warm_fn, StartStrategy::Warm)
            } else {
                (horse_fn, StartStrategy::Horse)
            };
            let cluster = &cluster;
            scope.spawn(move || {
                for _ in 0..100 {
                    for _ in 0..10_000 {
                        match cluster.invoke(f, strategy) {
                            Ok(_) => break,
                            Err(FaasError::NoWarmSandbox { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected invoke error: {e}"),
                        }
                    }
                }
            });
        }
    });

    // Each strategy's inventory survived independently.
    for (f, strategy) in [
        (warm_fn, StartStrategy::Warm),
        (horse_fn, StartStrategy::Horse),
    ] {
        let size: usize = (0..2)
            .map(|i| cluster.host(horse_faas::HostId(i)).pool_size(f, strategy))
            .sum();
        assert_eq!(size, 6, "{strategy} pool conserved");
        let stats = cluster.aggregate_pool_stats(f, strategy);
        assert_eq!(stats.hits, 200, "{strategy} hits == successful invocations");
        assert_eq!(stats.evictions, 0);
    }
}
