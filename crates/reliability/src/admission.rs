//! Admission control / load shedding at cluster ingress.
//!
//! Two gates run before a request touches any host:
//!
//! * **Capacity** — a fixed pool of inflight slots. Background traffic
//!   may use at most `max_inflight − ull_reserve` of them; the reserve
//!   is capacity only uLL-class requests can claim, so a background
//!   storm can never starve the HORSE fast path.
//! * **Deadline feasibility** — a request whose budget is already below
//!   the caller-supplied floor (the cheapest possible service time for
//!   its function) is shed at the door instead of burning a slot on a
//!   guaranteed miss.
//!
//! Slots are released through an RAII guard so every admission is paired
//! with exactly one release on every exit path — the conservation
//! invariant depends on it.

use crate::deadline::RequestClass;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Admission tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Total inflight slots across both classes.
    pub max_inflight: u64,
    /// Slots only uLL-class requests may claim (must be ≤
    /// `max_inflight`; clamped at evaluation time).
    pub ull_reserve: u64,
}

impl Default for AdmissionConfig {
    /// 32 slots, 8 reserved for uLL.
    fn default() -> Self {
        Self {
            max_inflight: 32,
            ull_reserve: 8,
        }
    }
}

/// Why a request was shed at ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// All inflight slots are taken.
    QueueFull,
    /// Only reserved-for-uLL slots remain and the request is background
    /// class.
    ReservedForUll,
    /// The deadline budget is below the cheapest feasible service time —
    /// admitting it could only produce a deadline miss.
    DeadlineInfeasible,
    /// Every candidate host's breaker is open for this function; nothing
    /// can serve it right now.
    BreakersOpen,
}

impl ShedReason {
    /// Every reason, in gate order.
    pub const ALL: [ShedReason; 4] = [
        ShedReason::QueueFull,
        ShedReason::ReservedForUll,
        ShedReason::DeadlineInfeasible,
        ShedReason::BreakersOpen,
    ];

    /// Export label.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::ReservedForUll => "reserved_for_ull",
            ShedReason::DeadlineInfeasible => "deadline_infeasible",
            ShedReason::BreakersOpen => "breakers_open",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The ingress admission controller: lock-free slot accounting plus the
/// deadline-feasibility gate.
///
/// Two counters: total inflight (capped at `max_inflight` for everyone)
/// and background inflight (capped at `max_inflight − ull_reserve`).
/// uLL traffic occupying slots never shrinks background's own cap — the
/// reserve only *reserves*, so the two classes interfere as little as
/// the math allows.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    total: Arc<AtomicU64>,
    background: Arc<AtomicU64>,
}

/// RAII inflight-slot guard: dropping it releases the slot. Exactly one
/// guard exists per admitted request, on every exit path.
#[derive(Debug)]
pub struct AdmissionSlot {
    total: Arc<AtomicU64>,
    background: Option<Arc<AtomicU64>>,
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        if let Some(bg) = &self.background {
            bg.fetch_sub(1, Ordering::AcqRel);
        }
        self.total.fetch_sub(1, Ordering::AcqRel);
    }
}

/// CAS-increments `counter` while it stays below `limit`; false when the
/// limit was already reached.
fn try_acquire(counter: &AtomicU64, limit: u64) -> bool {
    let mut current = counter.load(Ordering::Acquire);
    loop {
        if current >= limit {
            return false;
        }
        match counter.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

impl AdmissionController {
    /// A controller with the given slot configuration.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            total: Arc::new(AtomicU64::new(0)),
            background: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Inflight requests right now (both classes).
    pub fn inflight(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }

    /// The slot configuration.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Tries to admit a request. `feasibility_floor_ns` is the cheapest
    /// possible service time for the function (0 disables the gate);
    /// `budget_ns` is the request's deadline budget (`None` = no
    /// deadline). On success the returned guard holds the slot until
    /// dropped.
    pub fn admit(
        &self,
        class: RequestClass,
        budget_ns: Option<u64>,
        feasibility_floor_ns: u64,
    ) -> Result<AdmissionSlot, ShedReason> {
        if let Some(budget) = budget_ns {
            if budget < feasibility_floor_ns {
                return Err(ShedReason::DeadlineInfeasible);
            }
        }
        let background = match class {
            RequestClass::Ull => None,
            RequestClass::Background => {
                let bg_limit = self
                    .cfg
                    .max_inflight
                    .saturating_sub(self.cfg.ull_reserve.min(self.cfg.max_inflight));
                if !try_acquire(&self.background, bg_limit) {
                    return Err(ShedReason::ReservedForUll);
                }
                Some(Arc::clone(&self.background))
            }
        };
        if !try_acquire(&self.total, self.cfg.max_inflight) {
            if let Some(bg) = &background {
                bg.fetch_sub(1, Ordering::AcqRel);
            }
            return Err(ShedReason::QueueFull);
        }
        Ok(AdmissionSlot {
            total: Arc::clone(&self.total),
            background,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_protects_ull_capacity() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 4,
            ull_reserve: 2,
        });
        // Background may take only max_inflight - reserve = 2 slots.
        let b1 = ctl.admit(RequestClass::Background, None, 0).unwrap();
        let _b2 = ctl.admit(RequestClass::Background, None, 0).unwrap();
        assert_eq!(
            ctl.admit(RequestClass::Background, None, 0).unwrap_err(),
            ShedReason::ReservedForUll
        );
        // uLL can still claim the reserved slots.
        let _u1 = ctl.admit(RequestClass::Ull, None, 0).unwrap();
        let _u2 = ctl.admit(RequestClass::Ull, None, 0).unwrap();
        assert_eq!(
            ctl.admit(RequestClass::Ull, None, 0).unwrap_err(),
            ShedReason::QueueFull
        );
        assert_eq!(ctl.inflight(), 4);
        // Releasing a background slot reopens background admission.
        drop(b1);
        assert_eq!(ctl.inflight(), 3);
        assert!(ctl.admit(RequestClass::Background, None, 0).is_ok());
    }

    #[test]
    fn infeasible_deadlines_shed_at_the_door() {
        let ctl = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(
            ctl.admit(RequestClass::Ull, Some(999), 1_000).unwrap_err(),
            ShedReason::DeadlineInfeasible
        );
        assert_eq!(ctl.inflight(), 0, "an infeasible request burns no slot");
        assert!(ctl.admit(RequestClass::Ull, Some(1_000), 1_000).is_ok());
        assert!(
            ctl.admit(RequestClass::Ull, None, 1_000).is_ok(),
            "no deadline = no gate"
        );
    }

    #[test]
    fn every_guard_drop_releases_exactly_one_slot() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 8,
            ull_reserve: 0,
        });
        let slots: Vec<_> = (0..8)
            .map(|_| ctl.admit(RequestClass::Background, None, 0).unwrap())
            .collect();
        assert_eq!(ctl.inflight(), 8);
        drop(slots);
        assert_eq!(ctl.inflight(), 0);
    }
}
