//! Hedged requests: speculative duplicates with first-wins resolution.
//!
//! A hedge fires when the primary attempt runs past a p99-derived
//! threshold: at that instant a duplicate is dispatched to a *different*
//! host, and whichever attempt finishes first wins. On the virtual-time
//! axis the lifecycle is resolved analytically — the hedge starts at the
//! threshold, so its completion lands at `threshold + hedge latency`,
//! and the effective latency is the minimum of the two completion
//! times. The loser is cancelled, and cancellation is *accounted*: one
//! submission yields exactly one counted completion (the
//! duplicate-suppression invariant the `crates/check` oracle audits).

use horse_metrics::QuantileSketch;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Hedging configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Latency percentile (0–100) the hedge threshold derives from.
    pub threshold_percentile: f64,
    /// Observations required per function before hedging arms — a cold
    /// sketch would hedge on noise.
    pub min_samples: u64,
    /// Floor on the hedge threshold (ns): never hedge earlier than
    /// this, however tight the distribution.
    pub min_threshold_ns: u64,
}

impl Default for HedgeConfig {
    /// p99 threshold, 256-sample warmup, 1 µs floor.
    fn default() -> Self {
        Self {
            threshold_percentile: 99.0,
            min_samples: 256,
            min_threshold_ns: 1_000,
        }
    }
}

/// Per-function end-to-end latency profiles feeding the hedge threshold
/// (DDSketch-style quantile sketches; keys are raw function ids so this
/// crate stays independent of the platform layer).
#[derive(Debug, Default)]
pub struct LatencyProfiles {
    profiles: RwLock<HashMap<u64, Arc<Mutex<QuantileSketch>>>>,
}

/// Relative error of the hedge-threshold sketches.
const SKETCH_ALPHA: f64 = 0.01;

impl LatencyProfiles {
    /// An empty profile set.
    pub fn new() -> Self {
        Self::default()
    }

    fn profile(&self, function: u64) -> Arc<Mutex<QuantileSketch>> {
        if let Some(p) = self.profiles.read().get(&function) {
            return Arc::clone(p);
        }
        Arc::clone(
            self.profiles
                .write()
                .entry(function)
                .or_insert_with(|| Arc::new(Mutex::new(QuantileSketch::new(SKETCH_ALPHA)))),
        )
    }

    /// Records one completed attempt's latency.
    pub fn observe(&self, function: u64, latency_ns: u64) {
        self.profile(function).lock().record(latency_ns);
    }

    /// Samples recorded for a function so far.
    pub fn samples(&self, function: u64) -> u64 {
        self.profiles
            .read()
            .get(&function)
            .map_or(0, |p| p.lock().len())
    }

    /// The armed hedge threshold for a function, or `None` while the
    /// profile is still warming up.
    pub fn threshold_ns(&self, function: u64, cfg: &HedgeConfig) -> Option<u64> {
        let profile = self.profiles.read().get(&function).cloned()?;
        let sketch = profile.lock();
        if sketch.len() < cfg.min_samples {
            return None;
        }
        Some(
            sketch
                .percentile(cfg.threshold_percentile)
                .max(cfg.min_threshold_ns),
        )
    }
}

/// Resolution of a hedged pair on the virtual-time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeResolution {
    /// Whether the hedge (started at the threshold) beat the primary.
    pub hedge_won: bool,
    /// Effective end-to-end latency: `min(primary, threshold + hedge)`.
    pub effective_ns: u64,
    /// Completion time of the cancelled loser (its work is suppressed,
    /// but its cost is what cancellation accounting reports).
    pub cancelled_ns: u64,
}

/// First-wins resolution: the primary completes at `primary_ns`; the
/// hedge was dispatched at `threshold_ns` and completes at
/// `threshold_ns + hedge_ns`. Exactly one of them is counted.
pub fn resolve_first_wins(primary_ns: u64, threshold_ns: u64, hedge_ns: u64) -> HedgeResolution {
    let hedge_completion = threshold_ns.saturating_add(hedge_ns);
    if hedge_completion < primary_ns {
        HedgeResolution {
            hedge_won: true,
            effective_ns: hedge_completion,
            cancelled_ns: primary_ns,
        }
    } else {
        HedgeResolution {
            hedge_won: false,
            effective_ns: primary_ns,
            cancelled_ns: hedge_completion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_arms_only_after_warmup() {
        let profiles = LatencyProfiles::new();
        let cfg = HedgeConfig {
            min_samples: 10,
            ..HedgeConfig::default()
        };
        for i in 0..9 {
            profiles.observe(7, 1_000 + i);
            assert_eq!(profiles.threshold_ns(7, &cfg), None, "still warming up");
        }
        profiles.observe(7, 100_000);
        let t = profiles.threshold_ns(7, &cfg).expect("armed");
        assert!(t >= 1_000, "threshold respects the floor");
        assert_eq!(profiles.samples(7), 10);
        assert_eq!(profiles.threshold_ns(8, &cfg), None, "unknown function");
    }

    #[test]
    fn threshold_tracks_the_tail() {
        let profiles = LatencyProfiles::new();
        let cfg = HedgeConfig {
            min_samples: 100,
            min_threshold_ns: 1,
            ..HedgeConfig::default()
        };
        for _ in 0..990 {
            profiles.observe(1, 10_000);
        }
        for _ in 0..10 {
            profiles.observe(1, 500_000);
        }
        let t = profiles.threshold_ns(1, &cfg).unwrap();
        assert!(
            (9_000..=520_000).contains(&t),
            "p99 sits between body and tail: {t}"
        );
        assert!(t > 9_000, "threshold is above the body");
    }

    #[test]
    fn first_wins_picks_the_earlier_completion() {
        // Primary slow, hedge fast: hedge wins at threshold + hedge.
        let r = resolve_first_wins(100_000, 10_000, 2_000);
        assert!(r.hedge_won);
        assert_eq!(r.effective_ns, 12_000);
        assert_eq!(r.cancelled_ns, 100_000);
        // Primary finishes before the hedge does: primary wins.
        let r = resolve_first_wins(11_000, 10_000, 2_000);
        assert!(!r.hedge_won);
        assert_eq!(r.effective_ns, 11_000);
        assert_eq!(r.cancelled_ns, 12_000);
        // Tie goes to the primary (no pointless duplicate accounting).
        let r = resolve_first_wins(12_000, 10_000, 2_000);
        assert!(!r.hedge_won);
        assert_eq!(r.effective_ns, 12_000);
    }
}
