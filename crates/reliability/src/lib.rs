//! End-to-end request reliability plane for the HORSE cluster.
//!
//! The invocation planes below this crate (platform, cluster) make a
//! single attempt fast; this crate makes a *request* reliable across
//! attempts, hosts, and membership changes — all on the virtual-time
//! axis, all deterministic per seed:
//!
//! * [`deadline`] — per-invocation deadline budgets enforced at the
//!   routing, pool-take, and resume boundaries with typed outcomes.
//! * [`retry`] — budget-aware capped-exponential retries with
//!   deterministic seeded jitter (a pure function of `(seed, submission,
//!   attempt)`, so replays are interleaving-independent).
//! * [`hedge`] — speculative duplicates fired at a p99-derived
//!   threshold, resolved first-wins with cancellation accounting.
//! * [`breaker`] — per-(function, host) circuit breakers
//!   (closed → open → half-open on rolling failure-rate windows).
//! * [`admission`] — ingress load shedding: inflight slots with reserved
//!   uLL capacity plus a deadline-feasibility gate.
//! * [`membership`] — seeded join/leave/crash churn schedules.
//! * [`stats`] — plane-wide accounting and the conservation invariant
//!   (`submissions == completions + sheds + deadline_misses +
//!   failures`) the `crates/check` oracle audits.
//!
//! This crate deliberately does not depend on the platform layer:
//! functions are raw `u64` keys and hosts are indices, so `horse-faas`
//! can depend on it and wire the plane through `Cluster`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod breaker;
pub mod deadline;
pub mod hedge;
pub mod membership;
pub mod retry;
pub mod stats;
pub mod submission;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionSlot, ShedReason};
pub use breaker::{Breaker, BreakerConfig, BreakerRegistry, BreakerState, BreakerTransition};
pub use deadline::{Deadline, DeadlineBoundary, RequestClass};
pub use hedge::{resolve_first_wins, HedgeConfig, HedgeResolution, LatencyProfiles};
pub use membership::{ChurnConfig, ChurnEvent, ChurnSchedule};
pub use retry::{BackoffBudget, JitteredRetryPolicy};
pub use stats::{ReliabilityStats, StatsSnapshot};
pub use submission::SubmissionId;

/// Everything the cluster needs to run the reliability plane, bundled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Master seed the jitter and churn streams derive from.
    pub seed: u64,
    /// Retry schedule with deterministic jitter.
    pub retry: JitteredRetryPolicy,
    /// Hedging thresholds and warmup.
    pub hedge: HedgeConfig,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Ingress admission tuning.
    pub admission: AdmissionConfig,
}

impl ReliabilityConfig {
    /// Default tuning under one master seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            retry: JitteredRetryPolicy::default_with_seed(seed),
            hedge: HedgeConfig::default(),
            breaker: BreakerConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}
