//! Plane-wide reliability accounting and the conservation invariant.
//!
//! Every submission must end in exactly one disposition:
//!
//! ```text
//! submissions == completions + sheds + deadline_misses + failures
//! ```
//!
//! Hedges complicate this: a hedged request launches two attempts but is
//! still *one* submission with *one* counted completion (first wins, the
//! loser is cancelled). The stats therefore track hedge launches and
//! wins separately from dispositions, and the `crates/check` oracle
//! audits both the identity above and winner-only hedge accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic tallies for one reliability plane instance.
#[derive(Debug, Default)]
pub struct ReliabilityStats {
    /// Requests submitted at ingress (admitted or not).
    pub submissions: AtomicU64,
    /// Requests that completed successfully (hedged or not — a hedged
    /// pair counts once).
    pub completions: AtomicU64,
    /// Requests shed by admission control or all-breakers-open routing.
    pub sheds: AtomicU64,
    /// Requests that blew their deadline budget at an enforcement
    /// boundary.
    pub deadline_misses: AtomicU64,
    /// Requests that exhausted every retry/failover avenue and failed.
    pub failures: AtomicU64,
    /// Retry attempts beyond each request's first attempt.
    pub retries: AtomicU64,
    /// Hedge attempts launched (speculative duplicates).
    pub hedges_launched: AtomicU64,
    /// Hedges that beat their primary (the duplicate that got counted).
    pub hedge_wins: AtomicU64,
    /// Completions that met their deadline (for SLO attainment).
    pub deadline_met: AtomicU64,
}

/// A plain-value snapshot of [`ReliabilityStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`ReliabilityStats::submissions`].
    pub submissions: u64,
    /// See [`ReliabilityStats::completions`].
    pub completions: u64,
    /// See [`ReliabilityStats::sheds`].
    pub sheds: u64,
    /// See [`ReliabilityStats::deadline_misses`].
    pub deadline_misses: u64,
    /// See [`ReliabilityStats::failures`].
    pub failures: u64,
    /// See [`ReliabilityStats::retries`].
    pub retries: u64,
    /// See [`ReliabilityStats::hedges_launched`].
    pub hedges_launched: u64,
    /// See [`ReliabilityStats::hedge_wins`].
    pub hedge_wins: u64,
    /// See [`ReliabilityStats::deadline_met`].
    pub deadline_met: u64,
}

impl ReliabilityStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a tally (all tallies use relaxed ordering — they are
    /// monotone counters, never synchronization points).
    fn bump(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// One submission arrived at ingress.
    pub fn on_submission(&self) {
        Self::bump(&self.submissions, 1);
    }

    /// One request completed; `met_deadline` records SLO attainment.
    pub fn on_completion(&self, met_deadline: bool) {
        Self::bump(&self.completions, 1);
        if met_deadline {
            Self::bump(&self.deadline_met, 1);
        }
    }

    /// One request was shed.
    pub fn on_shed(&self) {
        Self::bump(&self.sheds, 1);
    }

    /// One request blew its deadline budget.
    pub fn on_deadline_miss(&self) {
        Self::bump(&self.deadline_misses, 1);
    }

    /// One request failed terminally.
    pub fn on_failure(&self) {
        Self::bump(&self.failures, 1);
    }

    /// `n` retry attempts were made.
    pub fn on_retries(&self, n: u64) {
        Self::bump(&self.retries, n);
    }

    /// A hedge was launched; later, [`Self::on_hedge_win`] if it won.
    pub fn on_hedge_launched(&self) {
        Self::bump(&self.hedges_launched, 1);
    }

    /// A hedge beat its primary.
    pub fn on_hedge_win(&self) {
        Self::bump(&self.hedge_wins, 1);
    }

    /// A consistent point-in-time copy of every tally.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submissions: self.submissions.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges_launched: self.hedges_launched.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            deadline_met: self.deadline_met.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// The conservation identity: every submission ended in exactly one
    /// disposition.
    pub fn conserves(&self) -> bool {
        self.submissions == self.completions + self.sheds + self.deadline_misses + self.failures
    }

    /// Winner-only hedge accounting: wins can never exceed launches, and
    /// completions can never exceed submissions (a hedged pair counts
    /// once).
    pub fn hedges_consistent(&self) -> bool {
        self.hedge_wins <= self.hedges_launched && self.completions <= self.submissions
    }

    /// SLO attainment across completions (1.0 when nothing completed, so
    /// an idle run trivially attains).
    pub fn slo_attainment(&self) -> f64 {
        if self.completions == 0 {
            return 1.0;
        }
        self.deadline_met as f64 / self.completions as f64
    }

    /// Hedge rate: hedges launched per submission.
    pub fn hedge_rate(&self) -> f64 {
        if self.submissions == 0 {
            return 0.0;
        }
        self.hedges_launched as f64 / self.submissions as f64
    }

    /// Shed rate: sheds per submission.
    pub fn shed_rate(&self) -> f64 {
        if self.submissions == 0 {
            return 0.0;
        }
        self.sheds as f64 / self.submissions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_when_dispositions_partition_submissions() {
        let s = ReliabilityStats::new();
        for _ in 0..10 {
            s.on_submission();
        }
        for _ in 0..6 {
            s.on_completion(true);
        }
        for _ in 0..2 {
            s.on_shed();
        }
        s.on_deadline_miss();
        s.on_failure();
        let snap = s.snapshot();
        assert!(snap.conserves());
        assert!((snap.slo_attainment() - 1.0).abs() < f64::EPSILON);
        assert!((snap.shed_rate() - 0.2).abs() < 1e-12);

        // One more submission with no disposition breaks it.
        s.on_submission();
        assert!(!s.snapshot().conserves());
    }

    #[test]
    fn hedge_accounting_is_winner_only() {
        let s = ReliabilityStats::new();
        s.on_submission();
        s.on_hedge_launched();
        s.on_hedge_win();
        s.on_completion(true);
        let snap = s.snapshot();
        assert!(snap.hedges_consistent());
        assert_eq!(snap.completions, 1, "a hedged pair counts once");
        assert!((snap.hedge_rate() - 1.0).abs() < f64::EPSILON);
    }
}
