//! Per-(function, host) circuit breakers.
//!
//! Each (function, host) pair gets an independent breaker with the
//! classic three-state machine:
//!
//! * **Closed** — traffic flows; outcomes land in a rolling window (a
//!   bitset of the last `window` results). Once the window holds at
//!   least `min_samples` outcomes and the failure rate crosses
//!   `failure_threshold`, the breaker trips **Open**.
//! * **Open** — the pair is skipped at routing. After `open_cooldown`
//!   ticks (ticks are the plane's submission counter — virtual time
//!   needs no wall clock) it relaxes to **HalfOpen**.
//! * **HalfOpen** — at most `half_open_probes` requests are admitted as
//!   probes. `close_after` consecutive successes close the breaker and
//!   clear the window; any probe failure re-opens it and restarts the
//!   cooldown.
//!
//! The registry keeps per-run transition tallies for the SLO report and
//! hands each transition back to the caller, which is where the
//! closed-vocabulary telemetry counters get bumped (this crate stays
//! independent of the telemetry recorder).

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling-window size in outcomes (max 64 — the window is a u64
    /// bitset).
    pub window: u32,
    /// Outcomes required in the window before the failure rate is
    /// trusted.
    pub min_samples: u32,
    /// Failure rate (0–1] at which a closed breaker trips open.
    pub failure_threshold: f64,
    /// Ticks an open breaker waits before relaxing to half-open.
    pub open_cooldown: u64,
    /// Probe requests admitted while half-open.
    pub half_open_probes: u32,
    /// Consecutive probe successes that close a half-open breaker.
    pub close_after: u32,
    /// Test/negative-gate knob: breakers never leave Open. With every
    /// pair forced open, routing sheds everything — the SLO gate must
    /// fail, which is exactly what the CI negative self-test asserts.
    pub forced_open: bool,
}

impl Default for BreakerConfig {
    /// 32-outcome window, 8-sample floor, trip at 50 % failures, 64-tick
    /// cooldown, 2 probes, close after 2 successes.
    fn default() -> Self {
        Self {
            window: 32,
            min_samples: 8,
            failure_threshold: 0.5,
            open_cooldown: 64,
            half_open_probes: 2,
            close_after: 2,
            forced_open: false,
        }
    }
}

/// Breaker state, in trip order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Traffic flows; outcomes feed the rolling window.
    Closed,
    /// The pair is quarantined; routing skips it.
    Open,
    /// A limited number of probes test whether the pair recovered.
    HalfOpen,
}

impl BreakerState {
    /// Export label.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Prometheus gauge encoding: 0 = closed, 1 = half-open, 2 = open.
    pub fn gauge_value(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A state transition the registry tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed (or half-open) → open.
    Opened,
    /// Open → half-open after cooldown.
    HalfOpened,
    /// Half-open → closed after consecutive probe successes.
    Closed,
}

#[derive(Debug)]
struct Core {
    state: BreakerState,
    /// Rolling outcome bitset: bit i set = i-th most recent outcome
    /// failed.
    failures: u64,
    filled: u32,
    opened_at_tick: u64,
    probes_inflight: u32,
    probe_successes: u32,
}

impl Core {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            failures: 0,
            filled: 0,
            opened_at_tick: 0,
            probes_inflight: 0,
            probe_successes: 0,
        }
    }

    fn window_mask(cfg: &BreakerConfig) -> u64 {
        let w = cfg.window.clamp(1, 64);
        if w == 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        }
    }

    fn push_outcome(&mut self, ok: bool, cfg: &BreakerConfig) {
        self.failures = ((self.failures << 1) | u64::from(!ok)) & Self::window_mask(cfg);
        self.filled = (self.filled + 1).min(cfg.window.clamp(1, 64));
    }

    fn failure_rate(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.failures.count_ones() as f64 / f64::from(self.filled)
    }

    fn trip_open(&mut self, tick: u64) {
        self.state = BreakerState::Open;
        self.opened_at_tick = tick;
        self.probes_inflight = 0;
        self.probe_successes = 0;
    }
}

/// One (function, host) circuit breaker.
#[derive(Debug)]
pub struct Breaker {
    core: Mutex<Core>,
}

impl Default for Breaker {
    fn default() -> Self {
        Self::new()
    }
}

impl Breaker {
    /// A fresh closed breaker.
    pub fn new() -> Self {
        Self {
            core: Mutex::new(Core::new()),
        }
    }

    /// Current state (open breakers relax to half-open lazily inside
    /// [`Self::allow`], so this is the state as of the last decision).
    pub fn state(&self) -> BreakerState {
        self.core.lock().state
    }

    /// Asks whether a request may flow through this pair at `tick`.
    /// Open→half-open relaxation happens here; the returned transition
    /// (if any) is what the caller should tally.
    pub fn allow(&self, tick: u64, cfg: &BreakerConfig) -> (bool, Option<BreakerTransition>) {
        let mut core = self.core.lock();
        if cfg.forced_open {
            if core.state != BreakerState::Open {
                core.trip_open(tick);
                return (false, Some(BreakerTransition::Opened));
            }
            return (false, None);
        }
        match core.state {
            BreakerState::Closed => (true, None),
            BreakerState::Open => {
                if tick.saturating_sub(core.opened_at_tick) >= cfg.open_cooldown {
                    core.state = BreakerState::HalfOpen;
                    core.probes_inflight = 1;
                    core.probe_successes = 0;
                    (true, Some(BreakerTransition::HalfOpened))
                } else {
                    (false, None)
                }
            }
            BreakerState::HalfOpen => {
                if core.probes_inflight < cfg.half_open_probes {
                    core.probes_inflight += 1;
                    (true, None)
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Records one outcome at `tick`, returning the transition it caused
    /// (if any).
    pub fn record(&self, ok: bool, tick: u64, cfg: &BreakerConfig) -> Option<BreakerTransition> {
        let mut core = self.core.lock();
        if cfg.forced_open {
            return None;
        }
        match core.state {
            BreakerState::Closed => {
                core.push_outcome(ok, cfg);
                if core.filled >= cfg.min_samples.max(1)
                    && core.failure_rate() >= cfg.failure_threshold
                {
                    core.trip_open(tick);
                    return Some(BreakerTransition::Opened);
                }
                None
            }
            BreakerState::HalfOpen => {
                core.probes_inflight = core.probes_inflight.saturating_sub(1);
                if ok {
                    core.probe_successes += 1;
                    if core.probe_successes >= cfg.close_after.max(1) {
                        core.state = BreakerState::Closed;
                        core.failures = 0;
                        core.filled = 0;
                        core.probe_successes = 0;
                        return Some(BreakerTransition::Closed);
                    }
                    None
                } else {
                    core.trip_open(tick);
                    Some(BreakerTransition::Opened)
                }
            }
            // A straggler completing after the trip: ignored.
            BreakerState::Open => None,
        }
    }

    /// Forces the breaker to half-open (host re-admission after a
    /// join: earn trust through probes instead of getting full traffic).
    pub fn force_half_open(&self) {
        let mut core = self.core.lock();
        core.state = BreakerState::HalfOpen;
        core.failures = 0;
        core.filled = 0;
        core.probes_inflight = 0;
        core.probe_successes = 0;
    }
}

/// Registry of breakers keyed by (function id, host index), plus
/// per-run transition tallies for the SLO report.
#[derive(Debug, Default)]
pub struct BreakerRegistry {
    breakers: RwLock<HashMap<(u64, usize), Arc<Breaker>>>,
    opened: AtomicU64,
    half_opened: AtomicU64,
    closed: AtomicU64,
}

impl BreakerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn breaker(&self, function: u64, host: usize) -> Arc<Breaker> {
        if let Some(b) = self.breakers.read().get(&(function, host)) {
            return Arc::clone(b);
        }
        Arc::clone(
            self.breakers
                .write()
                .entry((function, host))
                .or_insert_with(|| Arc::new(Breaker::new())),
        )
    }

    fn tally(&self, transition: BreakerTransition) {
        match transition {
            BreakerTransition::Opened => self.opened.fetch_add(1, Ordering::Relaxed),
            BreakerTransition::HalfOpened => self.half_opened.fetch_add(1, Ordering::Relaxed),
            BreakerTransition::Closed => self.closed.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Whether a request for `function` may route to `host` at `tick`.
    /// The transition (if the ask caused one — forced-open trip or
    /// cooldown relaxation) is returned for the caller's telemetry.
    pub fn allow(
        &self,
        function: u64,
        host: usize,
        tick: u64,
        cfg: &BreakerConfig,
    ) -> (bool, Option<BreakerTransition>) {
        let (allowed, transition) = self.breaker(function, host).allow(tick, cfg);
        if let Some(t) = transition {
            self.tally(t);
        }
        (allowed, transition)
    }

    /// Records an attempt outcome for a (function, host) pair, returning
    /// the transition it caused for the caller's telemetry.
    pub fn record(
        &self,
        function: u64,
        host: usize,
        ok: bool,
        tick: u64,
        cfg: &BreakerConfig,
    ) -> Option<BreakerTransition> {
        let transition = self.breaker(function, host).record(ok, tick, cfg);
        if let Some(t) = transition {
            self.tally(t);
        }
        transition
    }

    /// Current state of a pair (Closed if never seen).
    pub fn state(&self, function: u64, host: usize) -> BreakerState {
        self.breakers
            .read()
            .get(&(function, host))
            .map_or(BreakerState::Closed, |b| b.state())
    }

    /// A re-joining host must earn trust: every breaker targeting it is
    /// reset to half-open so traffic returns via probes.
    pub fn on_host_join(&self, host: usize) {
        for ((_, h), b) in self.breakers.read().iter() {
            if *h == host {
                b.force_half_open();
            }
        }
    }

    /// Snapshot of every tracked pair's current state, sorted by
    /// (function, host) so exposition order is deterministic.
    pub fn states(&self) -> Vec<((u64, usize), BreakerState)> {
        let mut states: Vec<_> = self
            .breakers
            .read()
            .iter()
            .map(|(&key, b)| (key, b.state()))
            .collect();
        states.sort_by_key(|&(key, _)| key);
        states
    }

    /// Transition tallies so far: (opened, half_opened, closed).
    pub fn transition_counts(&self) -> (u64, u64, u64) {
        (
            self.opened.load(Ordering::Relaxed),
            self.half_opened.load(Ordering::Relaxed),
            self.closed.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            open_cooldown: 10,
            half_open_probes: 2,
            close_after: 2,
            forced_open: false,
        }
    }

    #[test]
    fn trips_open_on_failure_rate_and_recovers_via_probes() {
        let b = Breaker::new();
        let cfg = cfg();
        // 3 failures in 4 samples trips at ≥50 %.
        assert_eq!(b.record(true, 0, &cfg), None);
        assert_eq!(b.record(false, 1, &cfg), None);
        assert_eq!(b.record(false, 2, &cfg), None);
        assert_eq!(b.record(false, 3, &cfg), Some(BreakerTransition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        // Before the cooldown elapses: blocked, no transition.
        assert_eq!(b.allow(5, &cfg), (false, None));
        // After cooldown: half-open, one probe admitted.
        assert_eq!(
            b.allow(13, &cfg),
            (true, Some(BreakerTransition::HalfOpened))
        );
        // Second probe admitted, third blocked (probe cap = 2).
        assert_eq!(b.allow(14, &cfg), (true, None));
        assert_eq!(b.allow(14, &cfg), (false, None));
        // Two consecutive successes close it.
        assert_eq!(b.record(true, 15, &cfg), None);
        assert_eq!(b.record(true, 16, &cfg), Some(BreakerTransition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = Breaker::new();
        let cfg = cfg();
        for i in 0..4 {
            b.record(false, i, &cfg);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(20, &cfg).0, "half-open probe admitted");
        assert_eq!(b.record(false, 21, &cfg), Some(BreakerTransition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown restarted at tick 21.
        assert_eq!(b.allow(25, &cfg), (false, None));
        assert!(b.allow(31, &cfg).0);
    }

    #[test]
    fn forced_open_never_allows() {
        let cfg = BreakerConfig {
            forced_open: true,
            ..cfg()
        };
        let b = Breaker::new();
        assert_eq!(b.allow(0, &cfg), (false, Some(BreakerTransition::Opened)));
        for tick in 1..1_000 {
            assert_eq!(b.allow(tick, &cfg), (false, None));
        }
        assert_eq!(b.record(true, 1_000, &cfg), None);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn registry_tallies_and_resets_on_join() {
        let reg = BreakerRegistry::new();
        let cfg = cfg();
        for i in 0..4 {
            reg.record(1, 0, false, i, &cfg);
        }
        assert_eq!(reg.state(1, 0), BreakerState::Open);
        assert!(!reg.allow(1, 0, 5, &cfg).0);
        assert!(reg.allow(2, 0, 5, &cfg).0, "other functions unaffected");
        let (opened, _, _) = reg.transition_counts();
        assert_eq!(opened, 1);
        // Join resets every breaker targeting host 0 to half-open.
        reg.on_host_join(0);
        assert_eq!(reg.state(1, 0), BreakerState::HalfOpen);
        assert!(reg.allow(1, 0, 6, &cfg).0, "probe admitted after join");
    }
}
