//! Budget-aware retries with deterministic seeded jitter.
//!
//! Generalizes [`horse_faults::RetryPolicy`] (plain capped exponential
//! backoff) in two directions a cluster-level reliability plane needs:
//!
//! * **Jitter** — concurrent retries against a recovering host must not
//!   synchronize into waves. The jitter is *deterministic*: it is a pure
//!   function of `(seed, submission index, attempt)`, so a soak replays
//!   bit-identically under the same seed regardless of thread
//!   interleaving — no shared RNG state, no ordering sensitivity.
//! * **Budget awareness** — every backoff consumes from the request's
//!   deadline budget; a retry never sleeps past the deadline, and the
//!   caller can observe exactly how much budget each wait consumed.

use horse_faults::RetryPolicy;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer (the same mixer `horse-sim` seeds streams with):
/// a fast, well-distributed 64-bit hash used to derive per-(submission,
/// attempt) jitter without any shared state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential backoff with deterministic multiplicative jitter.
///
/// The unjittered schedule is exactly [`RetryPolicy::backoff_ns`]
/// (capped doubling); the jittered wait multiplies it by a factor drawn
/// uniformly from `[1 − jitter_frac, 1 + jitter_frac]` and re-clamps to
/// the policy's cap.
///
/// # Example
///
/// ```
/// use horse_reliability::JitteredRetryPolicy;
///
/// let p = JitteredRetryPolicy::default_with_seed(42);
/// let a = p.backoff_ns(7, 1);
/// assert_eq!(a, p.backoff_ns(7, 1), "same (seed, submission, attempt) replays");
/// assert!(a <= p.inner.max_backoff_ns);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitteredRetryPolicy {
    /// The underlying capped-exponential schedule.
    pub inner: RetryPolicy,
    /// Half-width of the multiplicative jitter band (0 = no jitter,
    /// 0.2 = ±20 %). Values are clamped to `[0, 1]` at draw time.
    pub jitter_frac: f64,
    /// Seed the per-(submission, attempt) jitter derives from.
    pub seed: u64,
}

impl JitteredRetryPolicy {
    /// The default schedule (3 retries, 10 µs base, 1 ms cap) with ±20 %
    /// jitter under the given seed.
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            inner: RetryPolicy::default(),
            jitter_frac: 0.2,
            seed,
        }
    }

    /// The jitter factor for one `(submission, attempt)` pair, in
    /// `[1 − jitter_frac, 1 + jitter_frac]`. Pure and deterministic.
    pub fn jitter_factor(&self, submission: u64, attempt: u32) -> f64 {
        let j = self.jitter_frac.clamp(0.0, 1.0);
        if j == 0.0 {
            return 1.0;
        }
        let h = splitmix64(splitmix64(self.seed ^ submission.rotate_left(17)) ^ u64::from(attempt));
        // 53 high bits → uniform in [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 - j + 2.0 * j * unit
    }

    /// Jittered backoff before `attempt` (0-based, like
    /// [`RetryPolicy::backoff_ns`]): the capped exponential wait scaled
    /// by [`Self::jitter_factor`], re-clamped to the policy cap.
    pub fn backoff_ns(&self, submission: u64, attempt: u32) -> u64 {
        let base = self.inner.backoff_ns(attempt);
        if base == 0 {
            return 0;
        }
        let jittered = (base as f64 * self.jitter_factor(submission, attempt)).round();
        (jittered as u64).min(self.inner.max_backoff_ns)
    }

    /// Maximum number of attempts (initial + retries).
    pub fn max_attempts(&self) -> u32 {
        self.inner.max_attempts()
    }
}

/// A request's remaining deadline budget, consumed monotonically by
/// backoffs and attempt latencies. Once drained it never refills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffBudget {
    remaining_ns: u64,
}

impl BackoffBudget {
    /// A fresh budget.
    pub const fn new(budget_ns: u64) -> Self {
        Self {
            remaining_ns: budget_ns,
        }
    }

    /// Budget left.
    pub fn remaining_ns(&self) -> u64 {
        self.remaining_ns
    }

    /// Whether the budget is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.remaining_ns == 0
    }

    /// Consumes up to `amount_ns`, returning what was actually consumed
    /// (never more than the remaining budget — consumption is monotone
    /// and bounded).
    pub fn consume(&mut self, amount_ns: u64) -> u64 {
        let consumed = amount_ns.min(self.remaining_ns);
        self.remaining_ns -= consumed;
        consumed
    }

    /// Consumes a jittered backoff wait, clamped to the remaining
    /// budget. Returns the consumed wait.
    pub fn consume_backoff(
        &mut self,
        policy: &JitteredRetryPolicy,
        submission: u64,
        attempt: u32,
    ) -> u64 {
        self.consume(policy.backoff_ns(submission, attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_in_band_and_replays() {
        let p = JitteredRetryPolicy {
            inner: RetryPolicy {
                max_retries: 8,
                base_backoff_ns: 10_000,
                max_backoff_ns: 1_000_000,
            },
            jitter_frac: 0.2,
            seed: 99,
        };
        for sub in 0..50u64 {
            for attempt in 1..=8u32 {
                let f = p.jitter_factor(sub, attempt);
                assert!((0.8..=1.2).contains(&f), "factor {f} out of band");
                assert_eq!(p.backoff_ns(sub, attempt), p.backoff_ns(sub, attempt));
                assert!(p.backoff_ns(sub, attempt) <= p.inner.max_backoff_ns);
            }
        }
        // Different submissions actually draw different factors.
        let factors: Vec<u64> = (0..16).map(|s| p.backoff_ns(s, 2)).collect();
        assert!(factors.iter().any(|&f| f != factors[0]));
    }

    #[test]
    fn zero_jitter_is_the_plain_schedule() {
        let p = JitteredRetryPolicy {
            inner: RetryPolicy::default(),
            jitter_frac: 0.0,
            seed: 1,
        };
        for attempt in 0..6 {
            assert_eq!(p.backoff_ns(123, attempt), p.inner.backoff_ns(attempt));
        }
    }

    #[test]
    fn budget_consumption_is_monotone_and_bounded() {
        let p = JitteredRetryPolicy::default_with_seed(7);
        let mut b = BackoffBudget::new(25_000);
        let mut consumed_total = 0u64;
        for attempt in 1..10 {
            let before = b.remaining_ns();
            let consumed = b.consume_backoff(&p, 0, attempt);
            assert!(b.remaining_ns() <= before, "budget must never grow");
            consumed_total += consumed;
        }
        assert_eq!(consumed_total, 25_000, "eventually drains exactly");
        assert!(b.is_exhausted());
        assert_eq!(b.consume(100), 0, "an exhausted budget consumes nothing");
    }
}
