//! Submission-scoped root identity for request forensics.
//!
//! The reliability plane already numbers submissions (the `ticks`
//! counter that seeds retry jitter and breaker cooldowns); forensics
//! promotes that number to a first-class id so a stitched span tree, a
//! `Disposition`, and a burn-rate exemplar all name the same request.
//! The id travels inside the root span's `RootStamp`
//! (`horse_telemetry::forensics`), which packs it into 48 bits — enough
//! for ~280 trillion submissions per run, far beyond any soak.

/// A submission's plane-wide root id: the value of the reliability
/// plane's submission counter when the request entered `submit`.
///
/// Distinct from the telemetry invocation id: the invocation id is
/// minted per *trace* (and reused across a submission's retry and hedge
/// attempts so they stitch into one tree), while the `SubmissionId` is
/// the reliability plane's own numbering — the same one that keys retry
/// jitter, so a forensic tree names exactly which jitter stream and
/// breaker ticks the request saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubmissionId(u64);

impl SubmissionId {
    /// Number of bits of the id preserved by the packed `RootStamp`.
    pub const STAMP_BITS: u32 = 48;

    /// Wraps a raw submission counter value.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The value as stamped into a root span (low 48 bits). Lossless
    /// for any realistic run length.
    pub fn stamp_bits(self) -> u64 {
        self.0 & ((1 << Self::STAMP_BITS) - 1)
    }
}

impl std::fmt::Display for SubmissionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_masks() {
        let id = SubmissionId::new(12_345);
        assert_eq!(id.as_u64(), 12_345);
        assert_eq!(id.stamp_bits(), 12_345);
        let big = SubmissionId::new(u64::MAX);
        assert_eq!(big.stamp_bits(), (1 << 48) - 1);
    }

    #[test]
    fn orders_by_raw_value() {
        assert!(SubmissionId::new(1) < SubmissionId::new(2));
        assert_eq!(SubmissionId::new(7).to_string(), "7");
    }
}
