//! Seeded host-membership churn: join / leave / crash schedules.
//!
//! A churn schedule is generated up-front from the experiment's
//! [`SeedFactory`], so a soak replays the exact same membership history
//! under the same seed. Events are spaced one per `period` submissions
//! and respect a `min_alive` floor: the generator never lets the alive
//! count drop below it (when at the floor, only joins are emitted), so a
//! schedule can churn aggressively without ever marooning the cluster.

use horse_sim::rng::SeedFactory;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One membership event applied to a host index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// Graceful departure: the host drains and its warm inventory is
    /// rebalanced onto survivors before it goes dark.
    Leave(usize),
    /// Abrupt death: the host vanishes, warm inventory and all. Nothing
    /// is rebalanced; survivors must re-provision on demand.
    Crash(usize),
    /// A departed host returns empty: stale pools purged, breakers
    /// half-open until it earns trust.
    Join(usize),
}

impl ChurnEvent {
    /// The host the event applies to.
    pub fn host(self) -> usize {
        match self {
            ChurnEvent::Leave(h) | ChurnEvent::Crash(h) | ChurnEvent::Join(h) => h,
        }
    }

    /// Export label.
    pub fn label(self) -> &'static str {
        match self {
            ChurnEvent::Leave(_) => "leave",
            ChurnEvent::Crash(_) => "crash",
            ChurnEvent::Join(_) => "join",
        }
    }
}

/// Churn-schedule tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Submissions between consecutive membership events.
    pub period: u64,
    /// Total events to schedule.
    pub events: usize,
    /// Alive-host floor the generator never crosses.
    pub min_alive: usize,
}

impl Default for ChurnConfig {
    /// One event every 512 submissions, 12 events, keep ≥2 hosts alive.
    fn default() -> Self {
        Self {
            period: 512,
            events: 12,
            min_alive: 2,
        }
    }
}

/// A pre-generated churn schedule: `(submission index, event)` pairs in
/// ascending submission order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<(u64, ChurnEvent)>,
}

impl ChurnSchedule {
    /// An empty (churn-off) schedule.
    pub fn empty() -> Self {
        Self { events: Vec::new() }
    }

    /// Generates a schedule for a cluster of `hosts` hosts. Same
    /// `(factory master, hosts, cfg)` → same schedule, bit for bit.
    pub fn generate(factory: &SeedFactory, hosts: usize, cfg: &ChurnConfig) -> Self {
        let mut rng = factory.stream("reliability/churn");
        let mut alive: Vec<bool> = vec![true; hosts];
        let mut events = Vec::with_capacity(cfg.events);
        let min_alive = cfg.min_alive.min(hosts);
        for i in 0..cfg.events {
            let at = cfg.period.saturating_mul(i as u64 + 1);
            let alive_count = alive.iter().filter(|&&a| a).count();
            let down: Vec<usize> = (0..hosts).filter(|&h| !alive[h]).collect();
            let up: Vec<usize> = (0..hosts).filter(|&h| alive[h]).collect();
            // At the floor (or with nothing down and nothing to spare)
            // the only legal moves are joins; with nothing down, only
            // departures. Otherwise draw the kind uniformly.
            let event = if alive_count <= min_alive && !down.is_empty() {
                ChurnEvent::Join(down[rng.gen_range(0..down.len())])
            } else if down.is_empty() || rng.gen_range(0u32..3) < 2 {
                if alive_count <= min_alive || up.is_empty() {
                    // Nothing down to rejoin and nothing safe to remove:
                    // skip this slot.
                    continue;
                }
                let host = up[rng.gen_range(0..up.len())];
                alive[host] = false;
                if rng.gen_bool(0.5) {
                    ChurnEvent::Crash(host)
                } else {
                    ChurnEvent::Leave(host)
                }
            } else {
                ChurnEvent::Join(down[rng.gen_range(0..down.len())])
            };
            if let ChurnEvent::Join(h) = event {
                alive[h] = true;
            }
            events.push((at, event));
        }
        Self { events }
    }

    /// The scheduled events, ascending by submission index.
    pub fn events(&self) -> &[(u64, ChurnEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty (churn off).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains every event due at or before `submission`, starting from
    /// cursor `next` (the caller owns the cursor so the schedule itself
    /// stays immutable and shareable).
    pub fn due(&self, next: &mut usize, submission: u64) -> Vec<ChurnEvent> {
        let mut fired = Vec::new();
        while *next < self.events.len() && self.events[*next].0 <= submission {
            fired.push(self.events[*next].1);
            *next += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_per_seed_and_respect_the_floor() {
        let cfg = ChurnConfig {
            period: 100,
            events: 40,
            min_alive: 2,
        };
        let a = ChurnSchedule::generate(&SeedFactory::new(42), 4, &cfg);
        let b = ChurnSchedule::generate(&SeedFactory::new(42), 4, &cfg);
        assert_eq!(a, b, "same seed → same schedule");
        let c = ChurnSchedule::generate(&SeedFactory::new(43), 4, &cfg);
        assert_ne!(a, c, "different seed → different schedule");

        // Replaying the schedule never drops the alive count below the
        // floor.
        let mut alive = [true; 4];
        for &(_, ev) in a.events() {
            match ev {
                ChurnEvent::Crash(h) | ChurnEvent::Leave(h) => alive[h] = false,
                ChurnEvent::Join(h) => alive[h] = true,
            }
            assert!(
                alive.iter().filter(|&&x| x).count() >= 2,
                "floor violated after {ev:?}"
            );
        }
        assert!(!a.is_empty());
    }

    #[test]
    fn due_drains_in_order() {
        let cfg = ChurnConfig {
            period: 10,
            events: 5,
            min_alive: 1,
        };
        let s = ChurnSchedule::generate(&SeedFactory::new(7), 3, &cfg);
        let mut cursor = 0usize;
        assert!(s.due(&mut cursor, 9).is_empty(), "nothing due before t=10");
        let total: usize = (1..=6).map(|i| s.due(&mut cursor, i * 10).len()).sum();
        assert_eq!(total, s.len(), "every event fires exactly once");
        assert!(s.due(&mut cursor, u64::MAX).is_empty(), "drained");
    }
}
