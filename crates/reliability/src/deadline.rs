//! Per-invocation deadline budgets on the virtual-time axis.
//!
//! A deadline is a *budget in virtual nanoseconds* attached to a request
//! at ingress. Every layer the request crosses consumes budget (routing
//! backoffs, pool-take retries, the resume pipeline itself), and three
//! boundaries enforce it: routing, pool-take, and resume. Enforcement is
//! typed — a blown budget surfaces as a `DeadlineExceeded` outcome
//! naming the boundary that caught it, never as a generic error.

use serde::{Deserialize, Serialize};

/// Traffic class of a request — what its deadline means operationally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RequestClass {
    /// Ultra-low-latency traffic: the HORSE path the paper exists for.
    /// Admission control reserves capacity for this class so background
    /// storms cannot starve it.
    Ull,
    /// Everything else (batch, bulk, best-effort). Shed first under
    /// pressure.
    Background,
}

impl RequestClass {
    /// Both classes, uLL first.
    pub const ALL: [RequestClass; 2] = [RequestClass::Ull, RequestClass::Background];

    /// Export label.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Ull => "ull",
            RequestClass::Background => "background",
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which enforcement point caught a blown deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlineBoundary {
    /// The cluster's routing loop: accumulated backoff/hedge waits ate
    /// the budget before another attempt could start.
    Routing,
    /// The host's warm-pool take: recovery backoffs inside the host
    /// exceeded the remaining budget before a sandbox was secured.
    PoolTake,
    /// The resume pipeline: initialization itself (resume steps, boot,
    /// or restore) overran the remaining budget.
    Resume,
}

impl DeadlineBoundary {
    /// Every boundary, in pipeline order.
    pub const ALL: [DeadlineBoundary; 3] = [
        DeadlineBoundary::Routing,
        DeadlineBoundary::PoolTake,
        DeadlineBoundary::Resume,
    ];

    /// Export label.
    pub fn label(self) -> &'static str {
        match self {
            DeadlineBoundary::Routing => "routing",
            DeadlineBoundary::PoolTake => "pool_take",
            DeadlineBoundary::Resume => "resume",
        }
    }
}

impl std::fmt::Display for DeadlineBoundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deadline budget: total virtual nanoseconds the request may spend
/// end to end (initialization + execution + every recovery detour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deadline {
    /// The budget, in virtual ns.
    pub budget_ns: u64,
}

impl Deadline {
    /// A deadline with the given budget.
    pub const fn from_nanos(budget_ns: u64) -> Self {
        Self { budget_ns }
    }

    /// Budget left after `elapsed_ns` has been consumed (`None` once the
    /// deadline is blown).
    pub fn remaining_ns(&self, elapsed_ns: u64) -> Option<u64> {
        self.budget_ns.checked_sub(elapsed_ns).filter(|&r| r > 0)
    }

    /// Whether `elapsed_ns` has exhausted the budget.
    pub fn exceeded(&self, elapsed_ns: u64) -> bool {
        self.remaining_ns(elapsed_ns).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_counts_down_and_hits_none() {
        let d = Deadline::from_nanos(100);
        assert_eq!(d.remaining_ns(0), Some(100));
        assert_eq!(d.remaining_ns(99), Some(1));
        assert_eq!(d.remaining_ns(100), None, "an exactly-spent budget is gone");
        assert_eq!(d.remaining_ns(101), None);
        assert!(!d.exceeded(99));
        assert!(d.exceeded(100));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RequestClass::Ull.to_string(), "ull");
        assert_eq!(RequestClass::Background.to_string(), "background");
        assert_eq!(DeadlineBoundary::PoolTake.to_string(), "pool_take");
        assert_eq!(DeadlineBoundary::ALL.len(), 3);
        assert_eq!(RequestClass::ALL.len(), 2);
    }
}
