//! Property tests for the jittered-backoff schedule and deadline
//! budgets (ISSUE 7, satellite 3).
//!
//! Three families of invariants:
//! 1. Jittered backoffs stay inside `[base·(1−j), cap]` and never exceed
//!    the policy cap, for any (seed, submission, attempt).
//! 2. The schedule is a pure function of `(seed, submission, attempt)` —
//!    replays are bit-identical, and different seeds actually diverge.
//! 3. Budget consumption is monotone and bounded: a budget never grows,
//!    never goes negative, and total consumption equals exactly
//!    `min(requested, initial)`.

use horse_faults::RetryPolicy;
use horse_reliability::{BackoffBudget, JitteredRetryPolicy};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = JitteredRetryPolicy> {
    (
        0u32..=16,
        1u64..=1_000_000,
        1u64..=100_000_000,
        0.0f64..=1.0,
        any::<u64>(),
    )
        .prop_map(
            |(max_retries, base, cap, jitter_frac, seed)| JitteredRetryPolicy {
                inner: RetryPolicy {
                    max_retries,
                    base_backoff_ns: base,
                    max_backoff_ns: base.max(cap),
                },
                jitter_frac,
                seed,
            },
        )
}

proptest! {
    /// Jittered waits respect the band and the cap at every attempt.
    #[test]
    fn jitter_stays_in_band(policy in arb_policy(), submission in any::<u64>(), attempt in 0u32..=64) {
        let wait = policy.backoff_ns(submission, attempt);
        prop_assert!(wait <= policy.inner.max_backoff_ns, "wait {wait} exceeds cap");
        if attempt == 0 {
            prop_assert_eq!(wait, 0, "no wait before the first attempt");
        } else {
            let base = policy.inner.backoff_ns(attempt);
            let j = policy.jitter_frac.clamp(0.0, 1.0);
            // Lower bound with a 1-ns rounding allowance.
            let floor = (base as f64 * (1.0 - j)).floor() as u64;
            prop_assert!(
                wait + 1 >= floor.min(policy.inner.max_backoff_ns),
                "wait {wait} below band floor {floor}"
            );
        }
    }

    /// The schedule replays bit-identically for the same key.
    #[test]
    fn schedule_is_deterministic_per_seed(policy in arb_policy(), submission in any::<u64>()) {
        for attempt in 0..=policy.max_attempts() {
            prop_assert_eq!(
                policy.backoff_ns(submission, attempt),
                policy.backoff_ns(submission, attempt)
            );
            let f = policy.jitter_factor(submission, attempt);
            prop_assert_eq!(f.to_bits(), policy.jitter_factor(submission, attempt).to_bits());
        }
    }

    /// Different seeds actually perturb the schedule (when jitter is on
    /// and the base wait is big enough for the factor to matter).
    #[test]
    fn seeds_diverge(seed_a in any::<u64>(), delta in 1u64..=1_000_000) {
        let seed_b = seed_a.wrapping_add(delta);
        let mk = |seed| JitteredRetryPolicy {
            inner: RetryPolicy { max_retries: 8, base_backoff_ns: 1_000_000, max_backoff_ns: u64::MAX },
            jitter_frac: 0.5,
            seed,
        };
        let (a, b) = (mk(seed_a), mk(seed_b));
        let diverged = (0..64u64).any(|sub| {
            (1..=8u32).any(|att| a.backoff_ns(sub, att) != b.backoff_ns(sub, att))
        });
        prop_assert!(diverged, "512 draws identical across different seeds");
    }

    /// Budget consumption is monotone, bounded, and exact.
    #[test]
    fn budget_consumption_is_monotone(
        initial in 0u64..=10_000_000,
        amounts in proptest::collection::vec(0u64..=5_000_000, 0..32),
    ) {
        let mut budget = BackoffBudget::new(initial);
        let mut last_remaining = initial;
        let mut consumed_total = 0u64;
        for &amount in &amounts {
            let consumed = budget.consume(amount);
            prop_assert!(consumed <= amount, "consumed more than requested");
            prop_assert!(budget.remaining_ns() <= last_remaining, "budget grew");
            prop_assert_eq!(last_remaining - budget.remaining_ns(), consumed);
            last_remaining = budget.remaining_ns();
            consumed_total += consumed;
        }
        let requested: u64 = amounts.iter().sum();
        prop_assert_eq!(consumed_total, requested.min(initial));
        prop_assert_eq!(budget.is_exhausted(), budget.remaining_ns() == 0);
    }

    /// Draining a budget through jittered backoffs also stays monotone
    /// and the drained total matches the schedule exactly.
    #[test]
    fn backoff_draining_matches_schedule(policy in arb_policy(), submission in any::<u64>(), initial in 0u64..=50_000_000) {
        let mut budget = BackoffBudget::new(initial);
        let mut drained = 0u64;
        let mut scheduled = 0u64;
        for attempt in 0..=policy.max_attempts() {
            scheduled = scheduled.saturating_add(policy.backoff_ns(submission, attempt));
            drained += budget.consume_backoff(&policy, submission, attempt);
        }
        prop_assert_eq!(drained, scheduled.min(initial));
        prop_assert_eq!(budget.remaining_ns(), initial - drained);
    }
}
