//! Conservation oracle for the reliability plane, under stress.
//!
//! Each test drives a seeded scenario through
//! [`horse_check::run_reliability_scenario`], which already
//! cross-checks the external (disposition) ledger against the plane's
//! internal books. These tests add the run-level gates: determinism,
//! survival under churn + sick hosts, and the invariants the ISSUE
//! names (winner-only hedges, no lost or duplicated submissions).

use horse_check::{run_reliability_scenario, ReliabilityScenario};

#[test]
fn conservation_holds_under_churn_and_sick_hosts() {
    for seed in [7u64, 42, 1337] {
        let report = run_reliability_scenario(&ReliabilityScenario {
            seed,
            ..ReliabilityScenario::default()
        })
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            report.external.total(),
            2_000,
            "seed {seed}: every submission got a disposition"
        );
        assert!(
            report.external.completions > 0,
            "seed {seed}: the fleet still served traffic"
        );
        assert!(
            report.churn_events > 0,
            "seed {seed}: churn actually happened"
        );
    }
}

#[test]
fn hedges_count_exactly_once() {
    // A long quiet run warms the latency profile past its hedge
    // threshold; any hedges fired must never inflate completions.
    let report = run_reliability_scenario(&ReliabilityScenario {
        seed: 11,
        submissions: 4_000,
        sick_host: true,
        churn: false,
        ..ReliabilityScenario::default()
    })
    .unwrap();
    let snap = report.internal;
    assert!(snap.hedges_consistent());
    assert!(
        snap.hedge_wins <= snap.hedges_launched,
        "{} wins vs {} launches",
        snap.hedge_wins,
        snap.hedges_launched
    );
    // The oracle already matched hedged completions against launches;
    // here we pin the global identity once more for the report.
    assert_eq!(report.external.hedged, snap.hedges_launched);
    assert_eq!(report.external.completions, snap.completions);
}

#[test]
fn same_seed_same_books_same_fingerprint() {
    let scn = ReliabilityScenario::default();
    let a = run_reliability_scenario(&scn).unwrap();
    let b = run_reliability_scenario(&scn).unwrap();
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "disposition stream must replay bit-identically"
    );
    assert_eq!(a.internal, b.internal);
    assert_eq!(a.external, b.external);
    assert_eq!(a.churn_events, b.churn_events);
}

#[test]
fn different_seeds_diverge() {
    let a = run_reliability_scenario(&ReliabilityScenario {
        seed: 1,
        ..ReliabilityScenario::default()
    })
    .unwrap();
    let b = run_reliability_scenario(&ReliabilityScenario {
        seed: 2,
        ..ReliabilityScenario::default()
    })
    .unwrap();
    assert_ne!(a.fingerprint, b.fingerprint);
}
