//! Seeded deterministic interleaving exploration of the **parallel
//! 𝒫²𝒮ℳ splice workers**.
//!
//! The staged splice protocol (`MergePlan::stage` → per-worker
//! `SpliceBlock`s → `finish_staged`) claims that splice points are
//! disjoint, so *any* interleaving of the workers' pointer writes yields
//! the same queue. This module tests exactly that claim the way
//! [`crate::explore`] tests the warm pool: each splice worker is a real
//! OS thread holding its own block, but it executes **one splice per
//! granted step**, and which worker steps next is decided by the seeded
//! [`SchedulePolicy`] (round-robin / random / PCT). After the last step
//! the merge is finished on the driving thread and the queue's full
//! `(credit, payload)` sequence is compared against the sequential
//! [`merge_walk`](horse_core::SortedList::merge_walk) oracle — multiset
//! *and* FIFO order must match, and the list invariants must hold.
//!
//! The generator always plants at least one sub-list of length ≥ 2 (two
//! equal credits in *A*), so the planted misorder mutation
//! ([`Mutation::SpliceWorkerMisorder`](crate::Mutation)) — a worker that
//! links its anchor to the sub-list *tail*, dropping the interior — is
//! always expressible and must always be caught: the harness's negative
//! control for this checker.

use crate::explore::{SchedulePolicy, Scheduler};
use horse_core::{Arena, MergePlan, SortedList};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc;

/// Payload bases marking provenance in the order oracle.
const B_BASE: u64 = 1_000_000;
const A_BASE: u64 = 2_000_000;

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct SpliceExploreConfig {
    /// Real splice-worker threads (blocks are partitioned across them).
    pub workers: usize,
    /// Destination run-queue length (≥ 2; credits are strictly spaced so
    /// every inter-key gap can host a sub-list).
    pub b_len: usize,
    /// Merged-list length *before* the guaranteed duplicate pair.
    pub a_len: usize,
    /// Plant the misorder bug into one seeded worker
    /// (`--mutate splice-worker-misorder`): its first length-≥ 2 splice
    /// links the anchor to the sub-list tail. The run must then fail.
    pub plant_misorder: bool,
}

impl Default for SpliceExploreConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            b_len: 24,
            a_len: 16,
            plant_misorder: false,
        }
    }
}

/// One granted step: a worker executed one splice of its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceStepRecord {
    /// Worker index granted the step.
    pub worker: usize,
    /// Splice index *within the worker's block*.
    pub splice: usize,
    /// vCPUs in the spliced sub-list.
    pub sub_len: usize,
}

/// Outcome of one splice exploration.
#[derive(Debug)]
pub struct SpliceExploration {
    /// Worker index granted each step, in order — replaying with the
    /// same seed/policy/config reproduces the identical interleaving.
    pub decisions: Vec<usize>,
    /// Every executed step, in execution order.
    pub steps: Vec<SpliceStepRecord>,
    /// Error description if the oracle rejected the run.
    pub violation: Option<String>,
}

enum Cmd {
    /// Execute the worker's next splice.
    Step,
    Stop,
}

struct WorkerReply {
    splice: usize,
    sub_len: usize,
}

/// Generates the seeded scenario: strictly spaced *B* credits, random
/// *A* credits landing in the gaps, plus one guaranteed duplicate pair
/// (same credit twice → one sub-list of length ≥ 2 at a non-head
/// anchor).
fn generate_case(cfg: &SpliceExploreConfig, seed: u64) -> (Vec<i64>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a09_e667_f3bc_c908);
    let b_len = cfg.b_len.max(2);
    let b_keys: Vec<i64> = (0..b_len as i64).map(|i| i * 10).collect();
    let hi = (b_len as i64 - 1) * 10 + 9;
    let mut a_keys: Vec<i64> = (0..cfg.a_len).map(|_| rng.gen_range(0..=hi)).collect();
    // The guaranteed duplicate pair: a credit equal to some B key `j·10`
    // anchors both nodes after B[j] (anchor ≥ 0, never the head splice).
    let dup = rng.gen_range(0..b_len as i64) * 10;
    a_keys.push(dup);
    a_keys.push(dup);
    (b_keys, a_keys)
}

fn build(arena: &mut Arena<u64>, keys: &[i64], payload_base: u64) -> SortedList {
    let mut l = SortedList::new();
    for (i, &k) in keys.iter().enumerate() {
        l.insert_sorted(arena, k, payload_base + i as u64);
    }
    l
}

fn contents(arena: &Arena<u64>, l: &SortedList) -> Vec<(i64, u64)> {
    l.iter(arena).map(|(_, k, p)| (k, *p)).collect()
}

/// Runs one seeded exploration of the parallel splice workers and
/// validates the merged queue against the sequential oracle. The
/// returned [`SpliceExploration`] carries the full decision sequence;
/// `violation` is `None` on success (and **must** be `Some` when
/// `plant_misorder` is set — the caller asserts the inversion).
pub fn explore_splice(
    cfg: &SpliceExploreConfig,
    policy: SchedulePolicy,
    seed: u64,
) -> SpliceExploration {
    let (b_keys, a_keys) = generate_case(cfg, seed);

    // Sequential oracle in its own arena.
    let expected = {
        let mut arena = Arena::new();
        let mut b = build(&mut arena, &b_keys, B_BASE);
        let a = build(&mut arena, &a_keys, A_BASE);
        b.merge_walk(&arena, a);
        contents(&arena, &b)
    };

    // System under test: the staged protocol on stepped real threads.
    let mut arena = Arena::new();
    let mut b = build(&mut arena, &b_keys, B_BASE);
    let a = build(&mut arena, &a_keys, A_BASE);
    let plan = MergePlan::precompute(&arena, &b, a);

    let workers = cfg.workers.max(1);
    let mut decisions = Vec::new();
    let mut steps = Vec::new();
    let mut stage_violation: Option<String> = None;
    {
        let staged = match plan.stage(&b) {
            Ok(s) => s,
            Err(e) => {
                return SpliceExploration {
                    decisions,
                    steps,
                    violation: Some(format!("stage rejected a fresh plan: {e}")),
                }
            }
        };
        let blocks: Vec<_> = (0..workers).map(|w| staged.block(w, workers)).collect();
        let total_steps: usize = blocks.iter().map(|blk| blk.len()).sum();
        if total_steps != staged.node_splice_count() {
            stage_violation = Some(format!(
                "blocks cover {total_steps} splices, staged has {}",
                staged.node_splice_count()
            ));
        }

        // The planted bug's seeded target: one worker mis-executes its
        // first length-≥ 2 splice. The generator guarantees one exists.
        let misorder_at: Option<(usize, usize)> = if cfg.plant_misorder {
            let candidates: Vec<(usize, usize)> = blocks
                .iter()
                .enumerate()
                .flat_map(|(w, blk)| (0..blk.len()).map(move |i| (w, i)))
                .filter(|&(w, i)| blocks[w].sub_len(i) >= 2)
                .collect();
            assert!(
                !candidates.is_empty(),
                "generator must plant a length-≥2 sub-list"
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbb67_ae85_84ca_a73b);
            Some(candidates[rng.gen_range(0..candidates.len())])
        } else {
            None
        };

        let mut sched = Scheduler::new(policy, seed, workers, total_steps);
        let arena_ref = &arena;
        std::thread::scope(|scope| {
            let mut cmd_txs = Vec::with_capacity(workers);
            let mut reply_rxs = Vec::with_capacity(workers);
            for (w, block) in blocks.iter().copied().enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
                let (reply_tx, reply_rx) = mpsc::channel::<WorkerReply>();
                let bad_splice = misorder_at.and_then(|(mw, i)| (mw == w).then_some(i));
                scope.spawn(move || {
                    let mut next = 0usize;
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Stop => return,
                            Cmd::Step => {
                                let i = next;
                                next += 1;
                                if bad_splice == Some(i) {
                                    block.execute_one_misordered(arena_ref, i);
                                } else {
                                    block.execute_one(arena_ref, i);
                                }
                                let _ = reply_tx.send(WorkerReply {
                                    splice: i,
                                    sub_len: block.sub_len(i),
                                });
                            }
                        }
                    }
                });
                cmd_txs.push(cmd_tx);
                reply_rxs.push(reply_rx);
            }

            // Grant one splice at a time per the seeded schedule.
            let mut remaining: Vec<usize> = blocks.iter().map(|blk| blk.len()).collect();
            for step in 0..total_steps {
                let runnable: Vec<usize> = (0..workers).filter(|&w| remaining[w] > 0).collect();
                let chosen = sched.pick(&runnable, step);
                remaining[chosen] -= 1;
                decisions.push(chosen);
                cmd_txs[chosen].send(Cmd::Step).expect("worker alive");
                let reply = reply_rxs[chosen].recv().expect("worker replied");
                steps.push(SpliceStepRecord {
                    worker: chosen,
                    splice: reply.splice,
                    sub_len: reply.sub_len,
                });
            }
            for tx in &cmd_txs {
                tx.send(Cmd::Stop).expect("worker alive");
            }
        });
    }

    // Head splice + bookkeeping on the driving thread, like the VMM.
    let (report, _buffers) = plan.finish_staged(&arena, &mut b);

    let violation = stage_violation.or_else(|| {
        if report.merged != a_keys.len() {
            return Some(format!(
                "report.merged = {}, expected {}",
                report.merged,
                a_keys.len()
            ));
        }
        if let Err(e) = b.check_invariants(&arena) {
            return Some(format!("post-splice invariants violated: {e}"));
        }
        let got = contents(&arena, &b);
        if got != expected {
            return Some(format!(
                "merged queue diverges from sequential merge_walk oracle:\n  got      {got:?}\n  \
                 expected {expected:?}"
            ));
        }
        None
    });

    SpliceExploration {
        decisions,
        steps,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICIES: [SchedulePolicy; 3] = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::Random,
        SchedulePolicy::Pct { depth: 3 },
    ];

    #[test]
    fn all_policies_pass_on_the_real_splice() {
        let cfg = SpliceExploreConfig::default();
        for policy in POLICIES {
            for seed in [1u64, 42, 1337] {
                let r = explore_splice(&cfg, policy, seed);
                assert!(
                    r.violation.is_none(),
                    "policy {policy} seed {seed}: {:?}\ndecisions: {:?}",
                    r.violation,
                    r.decisions
                );
                assert_eq!(r.decisions.len(), r.steps.len());
                // The guaranteed duplicate pair produces ≥ 1 stepped
                // splice with a multi-node sub-list.
                assert!(r.steps.iter().any(|s| s.sub_len >= 2));
            }
        }
    }

    #[test]
    fn same_seed_replays_the_same_interleaving() {
        let cfg = SpliceExploreConfig::default();
        for policy in POLICIES {
            let a = explore_splice(&cfg, policy, 7);
            let b = explore_splice(&cfg, policy, 7);
            assert_eq!(a.decisions, b.decisions, "policy {policy} must replay");
            assert_eq!(a.steps, b.steps);
        }
    }

    #[test]
    fn planted_misorder_is_always_caught() {
        let cfg = SpliceExploreConfig {
            plant_misorder: true,
            ..SpliceExploreConfig::default()
        };
        for policy in POLICIES {
            for seed in [1u64, 42, 1337] {
                let r = explore_splice(&cfg, policy, seed);
                assert!(
                    r.violation.is_some(),
                    "policy {policy} seed {seed}: planted misorder escaped the oracle"
                );
            }
        }
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let cfg = SpliceExploreConfig {
            workers: 1,
            ..SpliceExploreConfig::default()
        };
        let r = explore_splice(&cfg, SchedulePolicy::RoundRobin, 5);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.decisions.iter().all(|&w| w == 0));
    }

    #[test]
    fn worker_counts_beyond_splices_still_pass() {
        let cfg = SpliceExploreConfig {
            workers: 16,
            b_len: 4,
            a_len: 2,
            ..SpliceExploreConfig::default()
        };
        for seed in [3u64, 11] {
            let r = explore_splice(&cfg, SchedulePolicy::Random, seed);
            assert!(r.violation.is_none(), "seed {seed}: {:?}", r.violation);
        }
    }
}
