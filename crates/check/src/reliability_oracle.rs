//! Differential oracle for the cluster reliability plane.
//!
//! The reliability plane keeps its own books ([`StatsSnapshot`]): every
//! submission is promised to land in exactly one of {completion, shed,
//! deadline miss, failure}, hedged pairs are promised to count exactly
//! once, and the whole run is promised to replay bit-identically from
//! its seed. This oracle distrusts the internal books: it drives a
//! seeded randomized request mix (classes, deadlines, a sick host,
//! membership churn) through [`Cluster::submit`] and keeps an
//! *external* tally from the returned [`Disposition`]s alone, then
//! demands the two ledgers agree line by line.
//!
//! A disagreement means a request was double-counted (a hedge or retry
//! applied its side effects twice) or dropped (an exit path released no
//! disposition) — precisely the bugs retries and hedging invite.

use horse_faas::{
    Cluster, DispatchPolicy, Disposition, FunctionId, HostId, Request, StartStrategy,
};
use horse_faults::{FaultInjector, FaultPlan, FaultSite, FaultTrigger, RetryPolicy};
use horse_reliability::{
    ChurnConfig, ChurnSchedule, ReliabilityConfig, RequestClass, StatsSnapshot,
};
use horse_sim::rng::SeedFactory;
use horse_vmm::SandboxConfig;
use horse_workloads::Category;
use rand::rngs::StdRng;
use rand::Rng;

/// Scenario knobs for one oracle run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityScenario {
    /// Master seed — the entire run (request mix, faults, churn) derives
    /// from it.
    pub seed: u64,
    /// Fleet size.
    pub hosts: usize,
    /// Number of requests to submit.
    pub submissions: u64,
    /// Warm sandboxes provisioned per host up front.
    pub provision: usize,
    /// Arm host 0 with a pool-rot injector (exercises breakers and
    /// cross-host retries).
    pub sick_host: bool,
    /// Drive a seeded join/leave/crash churn schedule alongside the
    /// request stream.
    pub churn: bool,
}

impl Default for ReliabilityScenario {
    /// 4 hosts, 2 000 submissions, sick host and churn both on.
    fn default() -> Self {
        Self {
            seed: 7,
            hosts: 4,
            submissions: 2_000,
            provision: 4,
            sick_host: true,
            churn: true,
        }
    }
}

/// The external ledger, built purely from returned [`Disposition`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispositionTally {
    /// `Disposition::Completed` count.
    pub completions: u64,
    /// Completions that met their deadline.
    pub met_deadline: u64,
    /// Completions flagged as hedged.
    pub hedged: u64,
    /// `Disposition::Shed` count.
    pub sheds: u64,
    /// `Disposition::DeadlineExceeded` count.
    pub deadline_misses: u64,
    /// `Disposition::Failed` count.
    pub failures: u64,
}

impl DispositionTally {
    /// Folds one disposition into the tally.
    pub fn observe(&mut self, d: &Disposition) {
        match d {
            Disposition::Completed {
                hedged,
                met_deadline,
                ..
            } => {
                self.completions += 1;
                if *met_deadline {
                    self.met_deadline += 1;
                }
                if *hedged {
                    self.hedged += 1;
                }
            }
            Disposition::Shed { .. } => self.sheds += 1,
            Disposition::DeadlineExceeded { .. } => self.deadline_misses += 1,
            Disposition::Failed { .. } => self.failures += 1,
        }
    }

    /// Total dispositions observed.
    pub fn total(&self) -> u64 {
        self.completions + self.sheds + self.deadline_misses + self.failures
    }
}

/// Everything one oracle run produced: both ledgers plus a replay
/// fingerprint over the exact disposition sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleReport {
    /// The external ledger (from dispositions).
    pub external: DispositionTally,
    /// The internal ledger (from the plane's own atomics).
    pub internal: StatsSnapshot,
    /// FNV-1a over every disposition's kind and latency, in submission
    /// order — two runs of the same scenario must produce the same
    /// fingerprint.
    pub fingerprint: u64,
    /// Churn events actually applied.
    pub churn_events: u64,
}

fn fnv1a(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fingerprint_disposition(hash: u64, d: &Disposition) -> u64 {
    match d {
        Disposition::Completed {
            host,
            latency_ns,
            hedged,
            met_deadline,
            ..
        } => {
            let tags = 1u64 | (u64::from(*hedged) << 8) | (u64::from(*met_deadline) << 9);
            fnv1a(fnv1a(fnv1a(hash, tags), host.0 as u64), *latency_ns)
        }
        Disposition::Shed { reason } => fnv1a(hash, 2 | ((*reason as u64) << 8)),
        Disposition::DeadlineExceeded { observed_ns, .. } => fnv1a(fnv1a(hash, 3), *observed_ns),
        Disposition::Failed { .. } => fnv1a(hash, 4),
    }
}

fn build_cluster(scn: &ReliabilityScenario) -> (Cluster, FunctionId) {
    let mut c = Cluster::new(scn.hosts, DispatchPolicy::RoundRobin, scn.seed);
    let cfg = SandboxConfig::builder().ull(true).build().unwrap();
    let f = c.register("oracle", Category::Cat2, cfg);
    let mut rel = ReliabilityConfig::with_seed(scn.seed);
    // Small windows so breakers actually transition within the run.
    rel.breaker.min_samples = 4;
    rel.breaker.window = 16;
    rel.hedge.min_samples = 64;
    c.set_reliability(rel);
    if scn.sick_host {
        c.set_host_injector(
            HostId(0),
            FaultInjector::new(
                scn.seed ^ 0xD15E,
                FaultPlan::new().with(FaultSite::PoolEntryInvalid, FaultTrigger::Nth(3)),
            ),
        );
        c.set_host_retry_policy(
            HostId(0),
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        );
    }
    c.provision_all(f, scn.provision, StartStrategy::Horse)
        .expect("initial provisioning");
    (c, f)
}

fn draw_request(rng: &mut StdRng, f: FunctionId) -> Request {
    let class = if rng.gen_bool(0.7) {
        RequestClass::Ull
    } else {
        RequestClass::Background
    };
    // Deadline mix: mostly generous, some absent, a few hopeless —
    // the hopeless ones exercise the typed boundary aborts.
    let deadline_ns = match rng.gen_range(0u32..10) {
        0..=5 => Some(rng.gen_range(200_000u64..2_000_000)),
        6..=7 => None,
        8 => Some(rng.gen_range(20_000u64..200_000)),
        _ => Some(rng.gen_range(1u64..400)),
    };
    Request {
        function: f,
        strategy: StartStrategy::Horse,
        class,
        deadline_ns,
    }
}

/// Runs one scenario end to end and cross-checks the two ledgers.
///
/// Returns the report for further gating (determinism, SLO floors);
/// errors describe the first ledger line that disagreed.
pub fn run_reliability_scenario(scn: &ReliabilityScenario) -> Result<OracleReport, String> {
    let (c, f) = build_cluster(scn);
    let factory = SeedFactory::new(scn.seed);
    let mut rng = factory.stream("check/reliability-oracle");
    let schedule = if scn.churn {
        ChurnSchedule::generate(
            &factory,
            scn.hosts,
            &ChurnConfig {
                period: (scn.submissions / 16).max(1),
                events: 12,
                min_alive: 2,
            },
        )
    } else {
        ChurnSchedule::empty()
    };
    let rejoin_warm = [(f, StartStrategy::Horse, scn.provision)];

    let mut external = DispositionTally::default();
    let mut fingerprint = 0xCBF2_9CE4_8422_2325u64;
    let mut churn_cursor = 0usize;
    let mut churn_events = 0u64;

    for i in 0..scn.submissions {
        for event in schedule.due(&mut churn_cursor, i) {
            if c.apply_churn(event, &rejoin_warm)
                .map_err(|e| format!("churn event {event:?} at submission {i}: {e}"))?
            {
                churn_events += 1;
            }
        }
        // Keep the fleet stocked so breakers/hedges see live traffic
        // rather than pure pool-dry failures, and keep the sick host
        // tempting enough to keep biting.
        if i % 32 == 0 {
            for h in 0..scn.hosts {
                let _ = c.provision_on(HostId(h), f, 1, StartStrategy::Horse);
            }
        }
        let d = c.submit(draw_request(&mut rng, f));
        external.observe(&d);
        fingerprint = fingerprint_disposition(fingerprint, &d);
    }

    let internal = c.reliability_snapshot();
    let report = OracleReport {
        external,
        internal,
        fingerprint,
        churn_events,
    };
    check_ledgers(&report)?;
    Ok(report)
}

/// Cross-checks the external (disposition) ledger against the internal
/// (plane) ledger, plus the conservation and hedge invariants.
pub fn check_ledgers(report: &OracleReport) -> Result<(), String> {
    let ext = &report.external;
    let int = &report.internal;
    let line = |name: &str, e: u64, i: u64| -> Result<(), String> {
        if e == i {
            Ok(())
        } else {
            Err(format!(
                "ledger mismatch on {name}: external {e} vs internal {i} — \
                 a request was double-applied or dropped"
            ))
        }
    };
    line("submissions", ext.total(), int.submissions)?;
    line("completions", ext.completions, int.completions)?;
    line("sheds", ext.sheds, int.sheds)?;
    line("deadline_misses", ext.deadline_misses, int.deadline_misses)?;
    line("failures", ext.failures, int.failures)?;
    line("met_deadline", ext.met_deadline, int.deadline_met)?;
    // Hedges launch only inside a completion, at most once each: the
    // external count of hedged completions IS the launch count.
    line("hedges", ext.hedged, int.hedges_launched)?;
    if !int.conserves() {
        return Err(format!(
            "conservation violated: {} submissions vs {} + {} + {} + {}",
            int.submissions, int.completions, int.sheds, int.deadline_misses, int.failures
        ));
    }
    if !int.hedges_consistent() {
        return Err(format!(
            "hedge books inconsistent: {} wins vs {} launches",
            int.hedge_wins, int.hedges_launched
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_scenario_balances_trivially() {
        let report = run_reliability_scenario(&ReliabilityScenario {
            submissions: 200,
            sick_host: false,
            churn: false,
            ..ReliabilityScenario::default()
        })
        .unwrap();
        assert!(report.external.completions > 0);
        assert_eq!(report.churn_events, 0);
    }

    #[test]
    fn ledger_checker_rejects_a_doctored_book() {
        let mut report = run_reliability_scenario(&ReliabilityScenario {
            submissions: 100,
            sick_host: false,
            churn: false,
            ..ReliabilityScenario::default()
        })
        .unwrap();
        // Cook the external ledger the way a double-applied hedge would:
        // one extra completion.
        report.external.completions += 1;
        let err = check_ledgers(&report).unwrap_err();
        assert!(err.contains("ledger mismatch"), "{err}");
    }
}
