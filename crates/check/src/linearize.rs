//! Wing–Gong-style linearizability checking of pool histories.
//!
//! Given a recorded [`History`], the checker searches for a
//! *linearization*: a total order of the operations that (a) respects
//! the real-time partial order (`ret(op₁) < call(op₂)` ⇒ op₁ before
//! op₂) and (b) is legal for the sequential specification
//! ([`SpecPool`]'s relaxed set semantics — a take returns some live
//! pooled entry, a miss is only legal when no live entry exists).
//!
//! The search is the classic Wing–Gong backtracking over *minimal*
//! operations, with the Lowe-style memoization of `(linearized-set,
//! spec-state)` pairs that makes repeated sub-searches cheap. It is
//! **bounded**: histories beyond [`MAX_OPS`] operations or
//! [`DEFAULT_STATE_BUDGET`] explored states are rejected up front /
//! reported as inconclusive rather than running forever — the harness
//! keeps histories small instead.

use crate::history::{Event, History, PoolOp, PoolResult};
use crate::spec::SpecPool;
use std::collections::HashSet;
use std::fmt;

/// Hard cap on history size (the linearized-set is a `u128` bitmask).
pub const MAX_OPS: usize = 128;

/// Default cap on visited `(mask, state)` pairs before the search gives
/// up as inconclusive.
pub const DEFAULT_STATE_BUDGET: usize = 2_000_000;

/// Why a history failed the check.
#[derive(Debug, Clone)]
pub enum LinearizeError {
    /// No linearization exists: the history is provably not
    /// linearizable w.r.t. the spec. Carries the rendered history and
    /// the longest legal prefix found (for debugging).
    NotLinearizable {
        /// Human-readable replay payload.
        rendered: String,
        /// Most operations any explored order managed to linearize.
        best_prefix: usize,
        /// Total operations in the history.
        total: usize,
    },
    /// The bounded search exhausted its state budget.
    Inconclusive {
        /// States visited before giving up.
        visited: usize,
    },
    /// The history is too large for the checker.
    TooLarge {
        /// Operations in the history.
        ops: usize,
    },
}

impl fmt::Display for LinearizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearizeError::NotLinearizable {
                rendered,
                best_prefix,
                total,
            } => write!(
                f,
                "history is NOT linearizable (best legal prefix {best_prefix}/{total} ops)\n{rendered}"
            ),
            LinearizeError::Inconclusive { visited } => {
                write!(f, "linearizability search inconclusive after {visited} states")
            }
            LinearizeError::TooLarge { ops } => {
                write!(f, "history has {ops} ops; checker caps at {MAX_OPS}")
            }
        }
    }
}

impl std::error::Error for LinearizeError {}

/// A successful check: the witness linearization as indices into the
/// (call-sorted) operation list.
#[derive(Debug, Clone)]
pub struct Linearization {
    /// Operation indices in linearized order.
    pub order: Vec<usize>,
    /// `(mask, state)` pairs visited by the search.
    pub states_visited: usize,
}

/// Checks a history against the relaxed pool spec with the default
/// state budget. See [`check_linearizable_bounded`].
pub fn check_linearizable(history: &History) -> Result<Linearization, LinearizeError> {
    check_linearizable_bounded(history, DEFAULT_STATE_BUDGET)
}

/// Checks a history against the relaxed pool spec, visiting at most
/// `state_budget` distinct `(linearized-set, spec-state)` pairs.
///
/// # Errors
///
/// [`LinearizeError::NotLinearizable`] when no valid order exists,
/// [`LinearizeError::Inconclusive`] when the budget runs out first, and
/// [`LinearizeError::TooLarge`] for histories over [`MAX_OPS`] ops.
pub fn check_linearizable_bounded(
    history: &History,
    state_budget: usize,
) -> Result<Linearization, LinearizeError> {
    let mut ops: Vec<Event> = history.events.clone();
    if ops.len() > MAX_OPS {
        return Err(LinearizeError::TooLarge { ops: ops.len() });
    }
    ops.sort_by_key(|e| e.call);

    let mut initial = SpecPool::new(history.keep_alive);
    for &(id, since) in &history.initial {
        initial.put(id, since);
    }

    let n = ops.len();
    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };

    // Iterative DFS. Each frame: (mask of linearized ops, spec state,
    // next candidate index to try, order so far).
    let mut seen: HashSet<(u128, Vec<(u64, u64)>)> = HashSet::new();
    let mut best_prefix = 0usize;
    let mut visited = 0usize;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // Stack of (mask, state, candidate cursor).
    let mut stack: Vec<(u128, SpecPool, usize)> = vec![(0, initial, 0)];

    while let Some((mask, state, cursor)) = stack.pop() {
        if mask == full {
            return Ok(Linearization {
                order,
                states_visited: visited,
            });
        }
        // Find the next candidate >= cursor that is minimal and legal.
        let mut advanced = false;
        for i in cursor..n {
            if mask & (1u128 << i) != 0 {
                continue;
            }
            // Minimality: no unlinearized op returned before op i was
            // called.
            let minimal = (0..n)
                .filter(|&j| mask & (1u128 << j) == 0 && j != i)
                .all(|j| ops[j].ret >= ops[i].call);
            if !minimal {
                continue;
            }
            // Legality against the spec.
            let mut next_state = state.clone();
            let legal = match (ops[i].op, ops[i].result) {
                (PoolOp::Take { now }, PoolResult::Took(id)) => {
                    if next_state.can_take(id, now) {
                        next_state.commit_take(id, now);
                        true
                    } else {
                        false
                    }
                }
                (PoolOp::Take { now }, PoolResult::Missed) => next_state.can_miss(now),
                (PoolOp::Put { id, now }, _) => {
                    next_state.put(id, now);
                    true
                }
                (PoolOp::Take { .. }, PoolResult::Putted) => false,
            };
            if !legal {
                continue;
            }
            let next_mask = mask | (1u128 << i);
            if !seen.insert((next_mask, next_state.fingerprint())) {
                continue;
            }
            visited += 1;
            if visited > state_budget {
                return Err(LinearizeError::Inconclusive { visited });
            }
            // Re-push this frame with the cursor advanced, then descend.
            stack.push((mask, state, i + 1));
            order.push(i);
            best_prefix = best_prefix.max(order.len());
            stack.push((next_mask, next_state, 0));
            advanced = true;
            break;
        }
        if !advanced {
            // Dead end: unwind one linearized op (the parent frame we
            // re-pushed will try its next candidate).
            order.pop();
        }
    }

    Err(LinearizeError::NotLinearizable {
        rendered: history.render(),
        best_prefix,
        total: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_faas::KeepAlive;
    use horse_sched::SandboxId;
    use horse_sim::{SimDuration, SimTime};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(us * 1_000)
    }

    fn ev(thread: usize, call: u64, ret: u64, op: PoolOp, result: PoolResult) -> Event {
        Event {
            thread,
            call,
            ret,
            op,
            result,
        }
    }

    #[test]
    fn sequential_lifo_history_linearizes() {
        let mut h = History::new(KeepAlive::Provisioned, vec![]);
        h.events = vec![
            ev(
                0,
                0,
                1,
                PoolOp::Put {
                    id: SandboxId::new(1),
                    now: t(0),
                },
                PoolResult::Putted,
            ),
            ev(
                0,
                2,
                3,
                PoolOp::Put {
                    id: SandboxId::new(2),
                    now: t(1),
                },
                PoolResult::Putted,
            ),
            ev(
                0,
                4,
                5,
                PoolOp::Take { now: t(2) },
                PoolResult::Took(SandboxId::new(2)),
            ),
            ev(
                0,
                6,
                7,
                PoolOp::Take { now: t(2) },
                PoolResult::Took(SandboxId::new(1)),
            ),
            ev(0, 8, 9, PoolOp::Take { now: t(2) }, PoolResult::Missed),
        ];
        let lin = check_linearizable(&h).expect("legal history");
        assert_eq!(lin.order.len(), 5);
    }

    #[test]
    fn overlapping_take_put_linearizes_either_way() {
        // A take overlapping a put may see it (linearize put first) —
        // here the take returns the id the overlapping put supplied.
        let mut h = History::new(KeepAlive::Provisioned, vec![]);
        h.events = vec![
            ev(
                0,
                0,
                5,
                PoolOp::Take { now: t(1) },
                PoolResult::Took(SandboxId::new(9)),
            ),
            ev(
                1,
                1,
                2,
                PoolOp::Put {
                    id: SandboxId::new(9),
                    now: t(1),
                },
                PoolResult::Putted,
            ),
        ];
        check_linearizable(&h).expect("put can linearize before the overlapping take");
    }

    #[test]
    fn double_handout_is_rejected() {
        // Two non-overlapping takes both return id 1 with only one put:
        // no order is legal.
        let mut h = History::new(
            KeepAlive::Provisioned,
            vec![(SandboxId::new(1), SimTime::ZERO)],
        );
        h.events = vec![
            ev(
                0,
                0,
                1,
                PoolOp::Take { now: t(0) },
                PoolResult::Took(SandboxId::new(1)),
            ),
            ev(
                1,
                2,
                3,
                PoolOp::Take { now: t(0) },
                PoolResult::Took(SandboxId::new(1)),
            ),
        ];
        let err = check_linearizable(&h).unwrap_err();
        assert!(
            matches!(err, LinearizeError::NotLinearizable { .. }),
            "{err}"
        );
    }

    #[test]
    fn lost_sandbox_miss_is_rejected() {
        // A miss while a live entry is pooled and no concurrent take
        // could have removed it: not linearizable.
        let mut h = History::new(
            KeepAlive::Ttl(SimDuration::from_secs(1)),
            vec![(SandboxId::new(3), SimTime::ZERO)],
        );
        h.events = vec![ev(0, 0, 1, PoolOp::Take { now: t(1) }, PoolResult::Missed)];
        let err = check_linearizable(&h).unwrap_err();
        assert!(
            matches!(err, LinearizeError::NotLinearizable { .. }),
            "{err}"
        );
    }

    #[test]
    fn expired_entry_makes_miss_legal_and_handout_illegal() {
        let ttl = KeepAlive::Ttl(SimDuration::from_nanos(500));
        let mut h = History::new(ttl, vec![(SandboxId::new(4), SimTime::ZERO)]);
        h.events = vec![ev(0, 0, 1, PoolOp::Take { now: t(1) }, PoolResult::Missed)];
        check_linearizable(&h).expect("miss over an expired entry is legal");

        let mut bad = History::new(ttl, vec![(SandboxId::new(4), SimTime::ZERO)]);
        bad.events = vec![ev(
            0,
            0,
            1,
            PoolOp::Take { now: t(1) },
            PoolResult::Took(SandboxId::new(4)),
        )];
        let err = check_linearizable(&bad).unwrap_err();
        assert!(
            matches!(err, LinearizeError::NotLinearizable { .. }),
            "handing out an expired entry must be rejected: {err}"
        );
    }

    #[test]
    fn real_time_order_is_respected() {
        // take returns id 5, but the put of id 5 STARTS after the take
        // returned — no legal order.
        let mut h = History::new(KeepAlive::Provisioned, vec![]);
        h.events = vec![
            ev(
                0,
                0,
                1,
                PoolOp::Take { now: t(0) },
                PoolResult::Took(SandboxId::new(5)),
            ),
            ev(
                1,
                2,
                3,
                PoolOp::Put {
                    id: SandboxId::new(5),
                    now: t(0),
                },
                PoolResult::Putted,
            ),
        ];
        let err = check_linearizable(&h).unwrap_err();
        assert!(matches!(err, LinearizeError::NotLinearizable { .. }));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A wide all-overlapping history with a tiny budget.
        let mut h = History::new(KeepAlive::Provisioned, vec![]);
        for i in 0..12u64 {
            h.events.push(ev(
                i as usize,
                0,
                100,
                PoolOp::Put {
                    id: SandboxId::new(i),
                    now: t(0),
                },
                PoolResult::Putted,
            ));
        }
        match check_linearizable_bounded(&h, 4) {
            Err(LinearizeError::Inconclusive { visited }) => assert!(visited > 4),
            other => panic!("expected Inconclusive, got {other:?}"),
        }
    }
}
