//! Sequential reference models ("specs").
//!
//! Each spec is a deliberately naive, obviously-correct model of one
//! HORSE component, written with plain `Vec`s and no concern for
//! performance. The real implementations are validated against these in
//! three ways:
//!
//! * **trajectory equivalence** — drive the spec and the implementation
//!   with the same single-threaded operation sequence and require
//!   identical observable results at every step
//!   (`differential::run_pool_trajectory`);
//! * **linearizability** — use the spec as the sequential witness inside
//!   the Wing–Gong search over concurrent histories
//!   ([`crate::linearize`]);
//! * **differential oracles** — use the spec to predict the outcome of a
//!   whole randomized scenario ([`crate::differential`]).

use horse_faas::KeepAlive;
use horse_faas::PoolStats;
use horse_sched::SandboxId;
use horse_sim::SimTime;

/// Whether an entry parked at `since` has outlived `keep_alive` by
/// `now`. This is the *reference* boundary semantics shared by
/// `WarmPool` and `ShardedWarmPool` (encoded by
/// `tests/expiry_boundary.rs`): an entry expires **strictly after** its
/// TTL elapses — at `since + ttl` exactly it is still warm — and
/// entries stamped in the future count as age zero.
pub fn spec_expired(keep_alive: KeepAlive, since: SimTime, now: SimTime) -> bool {
    match keep_alive {
        KeepAlive::Provisioned => false,
        KeepAlive::Ttl(ttl) => now.as_nanos().saturating_sub(since.as_nanos()) > ttl.as_nanos(),
    }
}

/// Sequential reference model of a warm-sandbox pool.
///
/// Semantics (the contract `WarmPool` implements exactly and
/// `ShardedWarmPool` implements up to a documented LIFO relaxation):
///
/// * `put` stores `(id, since)`; the keep-alive clock restarts on every
///   put;
/// * `take(now)` returns the **most recently put** entry that has not
///   expired (LIFO, for cache warmth), lazily evicting any newer expired
///   entries it skips over into the doomed buffer;
/// * an expired entry is *never* handed out (strict-`>` boundary, see
///   [`spec_expired`]);
/// * `evict_expired` removes every expired entry;
/// * provisioned pools never expire anything.
#[derive(Debug, Clone, Default)]
pub struct SpecPool {
    /// (id, parked-at), oldest put first — LIFO takes pop from the back.
    entries: Vec<(SandboxId, SimTime)>,
    keep_alive: Option<KeepAlive>,
    stats: PoolStats,
    doomed: Vec<SandboxId>,
}

impl SpecPool {
    /// An empty spec pool with the given keep-alive policy.
    pub fn new(keep_alive: KeepAlive) -> Self {
        Self {
            entries: Vec::new(),
            keep_alive: Some(keep_alive),
            stats: PoolStats::default(),
            doomed: Vec::new(),
        }
    }

    fn ka(&self) -> KeepAlive {
        self.keep_alive.expect("SpecPool::new sets the policy")
    }

    /// Number of pooled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Usage statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Parks an entry.
    pub fn put(&mut self, id: SandboxId, now: SimTime) {
        self.entries.push((id, now));
    }

    /// LIFO take with lazy expiry — the exact sequential semantics.
    pub fn take(&mut self, now: SimTime) -> Option<SandboxId> {
        while let Some(&(id, since)) = self.entries.last() {
            self.entries.pop();
            if spec_expired(self.ka(), since, now) {
                self.stats.evictions += 1;
                self.doomed.push(id);
                continue;
            }
            self.stats.hits += 1;
            return Some(id);
        }
        self.stats.misses += 1;
        None
    }

    /// Entries lazily evicted by [`SpecPool::take`] since the last
    /// drain.
    pub fn drain_doomed(&mut self) -> Vec<SandboxId> {
        std::mem::take(&mut self.doomed)
    }

    /// Removes every expired entry, returning the evicted ids (oldest
    /// first).
    pub fn evict_expired(&mut self, now: SimTime) -> Vec<SandboxId> {
        let ka = self.ka();
        let mut evicted = Vec::new();
        self.entries.retain(|&(id, since)| {
            if spec_expired(ka, since, now) {
                evicted.push(id);
                false
            } else {
                true
            }
        });
        self.stats.evictions += evicted.len() as u64;
        evicted
    }

    /// Removes a specific entry, returning whether it was present.
    pub fn remove(&mut self, id: SandboxId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|&(e, _)| e != id);
        before != self.entries.len()
    }

    // ---- relaxed interface, used by the linearizability checker ----
    //
    // Under concurrent drivers the sharded pool only promises *set*
    // semantics: a take returns SOME live pooled entry (shard-local LIFO
    // makes the global order schedule-dependent). The checker therefore
    // asks "could this specific result have been produced here?" rather
    // than "what is THE result?".

    /// Whether a take at `now` may legally return `id`: it must be
    /// pooled and not expired.
    pub fn can_take(&self, id: SandboxId, now: SimTime) -> bool {
        self.entries
            .iter()
            .any(|&(e, since)| e == id && !spec_expired(self.ka(), since, now))
    }

    /// Commits a take that returned `id` (removes one matching entry).
    /// Panics if [`SpecPool::can_take`] would refuse it.
    pub fn commit_take(&mut self, id: SandboxId, now: SimTime) {
        let ka = self.ka();
        let pos = self
            .entries
            .iter()
            .position(|&(e, since)| e == id && !spec_expired(ka, since, now))
            .expect("commit_take: can_take was not checked");
        self.entries.remove(pos);
    }

    /// Whether a take at `now` may legally return `None`: every pooled
    /// entry must already be expired.
    pub fn can_miss(&self, now: SimTime) -> bool {
        self.entries
            .iter()
            .all(|&(_, since)| spec_expired(self.ka(), since, now))
    }

    /// Canonical fingerprint of the pooled set (sorted), for the
    /// checker's memoization.
    pub fn fingerprint(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .entries
            .iter()
            .map(|&(id, since)| (id.as_u64(), since.as_nanos()))
            .collect();
        v.sort_unstable();
        v
    }
}

/// Sequential reference model of a credit-sorted run queue — the oracle
/// for `p2sm::MergePlan::merge` and `SortedList::merge_walk`.
///
/// Entries are `(credit, tag)` pairs kept non-decreasing by credit.
/// Equal credits preserve arrival order, and a merged-in batch goes
/// *after* existing equal credits (both the vanilla per-element insert,
/// `merge_walk`, and the 𝒫²𝒮ℳ splice place the incoming sandbox's
/// vCPUs after the residents on ties).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecRunQueue {
    entries: Vec<(i64, u64)>,
}

impl SpecRunQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a queue by inserting each `(credit, tag)` in order.
    pub fn from_inserts(items: &[(i64, u64)]) -> Self {
        let mut q = Self::new();
        for &(credit, tag) in items {
            q.insert(credit, tag);
        }
        q
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted insert, FIFO among equal credits.
    pub fn insert(&mut self, credit: i64, tag: u64) {
        let pos = self.entries.partition_point(|&(c, _)| c <= credit);
        self.entries.insert(pos, (credit, tag));
    }

    /// Merges a sorted batch (a resuming sandbox's vCPUs) into the
    /// queue: the classic stable merge with residents first on ties.
    pub fn merge(&mut self, batch: &SpecRunQueue) {
        for &(credit, tag) in &batch.entries {
            self.insert(credit, tag);
        }
    }

    /// Pops the front (least-credit) entry.
    pub fn pop_front(&mut self) -> Option<(i64, u64)> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// The queue contents in dispatch order.
    pub fn entries(&self) -> &[(i64, u64)] {
        &self.entries
    }

    /// The credits in dispatch order.
    pub fn credits(&self) -> Vec<i64> {
        self.entries.iter().map(|&(c, _)| c).collect()
    }

    /// Verifies the defining invariant (non-decreasing credits).
    pub fn check_sorted(&self) -> Result<(), String> {
        for w in self.entries.windows(2) {
            if w[0].0 > w[1].0 {
                return Err(format!("spec queue unsorted: {} after {}", w[1].0, w[0].0));
            }
        }
        Ok(())
    }
}

/// Sequential reference model of the run-queue load variable: applies
/// the affine update `L(x) = αx + β` one vCPU at a time — the vanilla
/// step-⑤ behaviour the coalesced closed form must reproduce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecLoad {
    alpha: f64,
    beta: f64,
    load: f64,
}

impl SpecLoad {
    /// A load variable starting at `initial` with per-vCPU update
    /// coefficients `alpha`/`beta`.
    pub fn new(alpha: f64, beta: f64, initial: f64) -> Self {
        Self {
            alpha,
            beta,
            load: initial,
        }
    }

    /// Current load value.
    pub fn get(&self) -> f64 {
        self.load
    }

    /// Places `n` vCPUs sequentially: `n` elementary updates.
    pub fn place_n(&mut self, n: u32) {
        for _ in 0..n {
            self.load = self.alpha * self.load + self.beta;
        }
    }

    /// The value `n` sequential placements would produce, without
    /// mutating the model.
    pub fn predict_n(&self, n: u32) -> f64 {
        let mut v = self.load;
        for _ in 0..n {
            v = self.alpha * v + self.beta;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_sim::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn spec_pool_is_lifo_with_lazy_expiry() {
        let mut p = SpecPool::new(KeepAlive::Ttl(SimDuration::from_secs(100)));
        p.put(SandboxId::new(1), t(0));
        p.put(SandboxId::new(2), t(90));
        assert_eq!(p.take(t(150)), Some(SandboxId::new(2)));
        assert_eq!(p.take(t(150)), None, "1 expired at t=100+ε");
        assert_eq!(p.drain_doomed(), vec![SandboxId::new(1)]);
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 1));
    }

    #[test]
    fn spec_pool_boundary_is_strictly_greater() {
        let ka = KeepAlive::Ttl(SimDuration::from_secs(10));
        assert!(!spec_expired(ka, t(0), t(10)), "age == ttl is still warm");
        let just_past = t(10) + SimDuration::from_nanos(1);
        assert!(spec_expired(ka, t(0), just_past));
        assert!(!spec_expired(ka, t(10), t(0)), "future stamps: age zero");
        assert!(!spec_expired(KeepAlive::Provisioned, t(0), t(1_000_000)));
    }

    #[test]
    fn relaxed_interface_tracks_liveness() {
        let mut p = SpecPool::new(KeepAlive::Ttl(SimDuration::from_secs(10)));
        p.put(SandboxId::new(7), t(0));
        assert!(p.can_take(SandboxId::new(7), t(5)));
        assert!(!p.can_take(SandboxId::new(7), t(11)), "expired");
        assert!(!p.can_take(SandboxId::new(8), t(5)), "absent");
        assert!(!p.can_miss(t(5)), "a live entry forbids a miss");
        assert!(p.can_miss(t(11)));
        p.commit_take(SandboxId::new(7), t(5));
        assert!(p.is_empty());
    }

    #[test]
    fn spec_queue_merge_is_stable_and_sorted() {
        let mut q = SpecRunQueue::from_inserts(&[(5, 1), (5, 2), (10, 3)]);
        let batch = SpecRunQueue::from_inserts(&[(5, 100), (10, 101)]);
        q.merge(&batch);
        q.check_sorted().unwrap();
        assert_eq!(
            q.entries(),
            &[(5, 1), (5, 2), (5, 100), (10, 3), (10, 101)],
            "residents first on ties"
        );
        assert_eq!(q.pop_front(), Some((5, 1)));
    }

    #[test]
    fn spec_load_matches_closed_form() {
        let mut l = SpecLoad::new(0.5, 8.0, 100.0);
        let predicted = l.predict_n(3);
        l.place_n(3);
        assert_eq!(l.get(), predicted);
        // 0.5^3·100 + 8·(1 + 0.5 + 0.25) = 12.5 + 14 = 26.5
        assert!((l.get() - 26.5).abs() < 1e-12);
    }
}
