//! Differential oracles: HORSE fast paths vs vanilla paths vs specs.
//!
//! Every case builds the same randomized scenario twice — once through
//! the HORSE fast path (𝒫²𝒮ℳ splice merge, coalesced load update,
//! `ResumeMode::Horse`) and once through the vanilla path (two-pointer
//! `merge_walk` / per-element insert, iterated load updates,
//! `ResumeMode::Vanilla`) — plus once through the sequential reference
//! model, and demands identical observable results (exact queue
//! contents; float loads within the tolerance DESIGN.md §11 documents).
//!
//! A [`Mutation`] plants a known bug into the fast path; the oracle
//! must then reject the case (`check_suite --mutate`'s negative
//! self-test).

use crate::mutate::Mutation;
use crate::spec::{SpecLoad, SpecPool, SpecRunQueue};
use horse_core::{Arena, LoadUpdate, MergePlan, SortedList, SpliceMode};
use horse_faas::{KeepAlive, ShardedWarmPool, WarmPool};
use horse_sched::{SandboxId, Vcpu};
use horse_sim::{SimDuration, SimTime};
use horse_vmm::{CostModel, PausePolicy, ResumeMode, SandboxConfig, Vmm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Relative tolerance for comparing coalesced vs iterated load values,
/// scaled by `n + 1` elementary updates (documented in DESIGN.md §11).
pub const LOAD_REL_TOLERANCE: f64 = 1e-9;

/// Derives the per-case RNG seed (printed in failure reports so a
/// single case replays without re-running the whole section).
pub fn case_seed(seed: u64, case: u64) -> u64 {
    seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn build_list(arena: &mut Arena<u64>, items: &[(i64, u64)]) -> SortedList {
    let mut l = SortedList::new();
    for &(k, tag) in items {
        l.insert_sorted(arena, k, tag);
    }
    l
}

fn contents(arena: &Arena<u64>, l: &SortedList) -> Vec<(i64, u64)> {
    l.iter(arena).map(|(_, k, v)| (k, *v)).collect()
}

/// Swaps the nodes at positions `p` and `p + 1` of `list` by raw
/// pointer surgery — exactly what a misordered splice produces. `p`
/// must satisfy `1 <= p && p + 2 < len` so neither the head nor the
/// tail handle is involved.
fn swap_adjacent_nodes(arena: &Arena<u64>, list: &SortedList, p: usize) {
    let nodes: Vec<_> = list.iter(arena).map(|(n, _, _)| n).collect();
    assert!(p >= 1 && p + 2 < nodes.len(), "swap point must be interior");
    let prev = nodes[p - 1];
    let x = nodes[p];
    let y = nodes[p + 1];
    let rest = arena.next(y);
    arena.set_next(prev, Some(y));
    arena.set_next(y, Some(x));
    arena.set_next(x, rest);
}

/// One differential merge case: 𝒫²𝒮ℳ vs `merge_walk` vs
/// [`SpecRunQueue`], over random credit vectors (duplicates included).
pub fn merge_oracle_case(seed: u64, case: u64, mutation: Option<Mutation>) -> Result<(), String> {
    type Items = Vec<(i64, u64)>;
    let mut rng = StdRng::seed_from_u64(case_seed(seed, case));
    let (b_items, a_items): (Items, Items) = if mutation.is_some() {
        // Mutation runs use a fixed-shape scenario with distinct interior
        // keys so the planted bug always has somewhere to bite.
        let b: Vec<(i64, u64)> = (0..8).map(|i| (i * 10, i as u64)).collect();
        let a: Vec<(i64, u64)> = (0..6).map(|i| (i * 10 + 5, 100 + i as u64)).collect();
        (b, a)
    } else {
        let b_len = rng.gen_range(0..48usize);
        let a_len = rng.gen_range(0..40usize);
        // Narrow key range on purpose: duplicate credits are the
        // interesting stability cases.
        let b = (0..b_len)
            .map(|i| (rng.gen_range(-20i64..20), i as u64))
            .collect();
        let a = (0..a_len)
            .map(|i| (rng.gen_range(-20i64..20), 1_000 + i as u64))
            .collect();
        (b, a)
    };

    // --- HORSE fast path: precompute + splice merge. -------------------
    let mut fast_arena = Arena::new();
    let mut fast_b = build_list(&mut fast_arena, &b_items);
    let fast_a = build_list(&mut fast_arena, &a_items);
    let a_sorted_tags: Vec<(i64, u64)> = contents(&fast_arena, &fast_a);
    let plan = MergePlan::precompute(&fast_arena, &fast_b, fast_a);

    if mutation == Some(Mutation::StaleMergePlan) {
        // B mutates under the plan with no maintenance callback: the
        // front vCPU is dispatched off the queue.
        fast_b.pop_front(&mut fast_arena);
    }
    // Spec prediction starts from B exactly as the merge will see it.
    let oracle_b_items = contents(&fast_arena, &fast_b);

    let mode = if rng.gen::<bool>() {
        SpliceMode::Parallel
    } else {
        SpliceMode::Sequential
    };
    match plan.merge(&fast_arena, &mut fast_b, mode) {
        Ok(report) => {
            if report.merged != a_items.len() {
                return Err(format!(
                    "merge report claims {} merged, expected {}",
                    report.merged,
                    a_items.len()
                ));
            }
        }
        Err(e) => {
            return Err(format!(
                "fast-path merge refused: {e} (B mutated under the plan?)"
            ));
        }
    }

    if mutation == Some(Mutation::SpliceMisorder) {
        // Find an interior adjacent pair with differing keys and swap it.
        let keys = fast_b.keys(&fast_arena);
        let p = (1..keys.len().saturating_sub(2))
            .find(|&p| keys[p] != keys[p + 1])
            .expect("fixed mutation scenario has distinct interior keys");
        swap_adjacent_nodes(&fast_arena, &fast_b, p);
    }

    // --- vanilla path: two-pointer merge walk. -------------------------
    let mut slow_arena = Arena::new();
    let mut slow_b = build_list(&mut slow_arena, &b_items);
    let slow_a = build_list(&mut slow_arena, &a_items);
    slow_b.merge_walk(&slow_arena, slow_a);

    // --- sequential spec. ----------------------------------------------
    let mut spec = SpecRunQueue::from_inserts(&oracle_b_items);
    let batch = SpecRunQueue::from_inserts(&a_sorted_tags);
    spec.merge(&batch);
    spec.check_sorted()
        .expect("spec queue is sorted by construction");

    let fast = contents(&fast_arena, &fast_b);
    let slow = contents(&slow_arena, &slow_b);
    if fast != spec.entries() {
        return Err(format!(
            "fast path diverges from spec:\n  fast: {fast:?}\n  spec: {:?}",
            spec.entries()
        ));
    }
    if mutation != Some(Mutation::StaleMergePlan) && fast != slow {
        return Err(format!(
            "fast path diverges from merge_walk:\n  fast: {fast:?}\n  slow: {slow:?}"
        ));
    }
    fast_b
        .check_invariants(&fast_arena)
        .map_err(|e| format!("fast-path queue invariant broken after merge: {e}"))?;
    Ok(())
}

/// One differential coalescing case: the precomputed closed form vs the
/// sequential [`SpecLoad`] reference.
pub fn coalesce_oracle_case(
    seed: u64,
    case: u64,
    mutation: Option<Mutation>,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, case) ^ 0xC0A1);
    let (alpha, beta, x, n) = if mutation == Some(Mutation::CoalesceOffByOne) {
        // A regime where the off-by-one error term β·α^{n−1} is far
        // above tolerance.
        (
            rng.gen_range(0.5f64..0.95),
            rng.gen_range(1.0f64..100.0),
            rng.gen_range(-100.0f64..100.0),
            rng.gen_range(2u32..24),
        )
    } else {
        let alpha = match rng.gen_range(0..4u32) {
            0 => 1.0,
            1 => rng.gen_range(0.95f64..1.05),
            _ => rng.gen_range(0.0f64..1.0),
        };
        (
            alpha,
            rng.gen_range(-1e4f64..1e4),
            rng.gen_range(-1e6f64..1e6),
            rng.gen_range(0u32..64),
        )
    };

    let u = LoadUpdate::new(alpha, beta).map_err(|e| e.to_string())?;
    let fast = if mutation == Some(Mutation::CoalesceOffByOne) {
        // The paper's misprinted exponent: Σ_{i=0}^{n-2} αⁱ.
        let alpha_n = alpha.powi(n as i32);
        let geometric = if (alpha - 1.0).abs() < f64::EPSILON {
            (n as f64) - 1.0
        } else {
            (1.0 - alpha.powi(n as i32 - 1)) / (1.0 - alpha)
        };
        alpha_n * x + beta * geometric
    } else {
        u.coalesce(n).apply(x)
    };
    let slow = SpecLoad::new(alpha, beta, x).predict_n(n);
    let tolerance = LOAD_REL_TOLERANCE * slow.abs().max(1.0) * (n as f64 + 1.0);
    if (fast - slow).abs() > tolerance {
        return Err(format!(
            "coalesced load diverges from sequential reference: \
             alpha={alpha} beta={beta} x={x} n={n} fast={fast} slow={slow} tol={tolerance}"
        ));
    }
    Ok(())
}

/// Single-threaded trajectory equivalence: drives [`SpecPool`],
/// `WarmPool` and `ShardedWarmPool` with one identical randomized
/// operation sequence under a TTL keep-alive and requires:
///
/// * identical take results at every step (single-threaded, all three
///   are strict LIFO over live entries);
/// * identical *cumulative* expiry-victim sets after every full sweep
///   (the implementations lazily doom expired entries at different
///   moments — `WarmPool` eagerly on take, the others on encounter — so
///   only the post-sweep union is deterministic);
/// * identical hit/miss statistics and empty pools at the end.
///
/// Removals are restricted to currently-live entries: removing an
/// already-expired entry would legitimately diverge, because `WarmPool`
/// may have doomed it on an earlier take while the lazy pools still
/// hold it.
pub fn run_pool_trajectory(seed: u64, case: u64, steps: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, case) ^ 0x9001);
    let ttl = SimDuration::from_nanos(5_000);
    let ka = KeepAlive::Ttl(ttl);
    let mut spec = SpecPool::new(ka);
    let mut warm = WarmPool::new(ka);
    let sharded = ShardedWarmPool::new(ka);

    let mut now = SimTime::ZERO;
    let mut next_id = 1u64;
    let mut all_ids: Vec<SandboxId> = Vec::new();
    let mut taken: BTreeSet<u64> = BTreeSet::new();
    let mut removed: BTreeSet<u64> = BTreeSet::new();
    let mut victims_spec: BTreeSet<u64> = BTreeSet::new();
    let mut victims_warm: BTreeSet<u64> = BTreeSet::new();
    let mut victims_sharded: BTreeSet<u64> = BTreeSet::new();

    let sweep = |spec: &mut SpecPool,
                 warm: &mut WarmPool,
                 vs: &mut BTreeSet<u64>,
                 vw: &mut BTreeSet<u64>,
                 vsh: &mut BTreeSet<u64>,
                 now: SimTime,
                 step: usize|
     -> Result<(), String> {
        vs.extend(spec.evict_expired(now).iter().map(|i| i.as_u64()));
        vs.extend(spec.drain_doomed().iter().map(|i| i.as_u64()));
        vw.extend(warm.evict_expired(now).iter().map(|i| i.as_u64()));
        vw.extend(warm.drain_doomed().iter().map(|i| i.as_u64()));
        vsh.extend(sharded.evict_expired(now).iter().map(|i| i.as_u64()));
        vsh.extend(sharded.drain_doomed().iter().map(|i| i.as_u64()));
        if vs != vw || vs != vsh {
            return Err(format!(
                "step {step}: cumulative expiry victims diverge after sweep at {}ns:\n  \
                 spec: {vs:?}\n  warm: {vw:?}\n  sharded: {vsh:?}",
                now.as_nanos()
            ));
        }
        if spec.len() != warm.len() || spec.len() != sharded.len() {
            return Err(format!(
                "step {step}: post-sweep sizes diverge: spec={} warm={} sharded={}",
                spec.len(),
                warm.len(),
                sharded.len()
            ));
        }
        Ok(())
    };

    for step in 0..steps {
        now += SimDuration::from_nanos(rng.gen_range(0..2_000));
        match rng.gen_range(0..10u32) {
            0..=3 => {
                let id = SandboxId::new(next_id);
                next_id += 1;
                all_ids.push(id);
                spec.put(id, now);
                warm.put(id, now);
                sharded.put(id, now);
            }
            4..=7 => {
                let a = spec.take(now);
                let b = warm.take(now);
                let c = sharded.take(now);
                if a != b || a != c {
                    return Err(format!(
                        "step {step}: take results diverge at {}ns: spec={a:?} warm={b:?} sharded={c:?}",
                        now.as_nanos()
                    ));
                }
                if let Some(id) = a {
                    taken.insert(id.as_u64());
                }
            }
            8 => sweep(
                &mut spec,
                &mut warm,
                &mut victims_spec,
                &mut victims_warm,
                &mut victims_sharded,
                now,
                step,
            )?,
            _ => {
                // Remove a random currently-live entry, if any.
                let live: Vec<SandboxId> = all_ids
                    .iter()
                    .copied()
                    .filter(|&id| spec.can_take(id, now))
                    .collect();
                if let Some(&id) = live.get(rng.gen_range(0..live.len().max(1))) {
                    let a = spec.remove(id);
                    let b = warm.remove(id);
                    let c = sharded.remove(id);
                    if !(a && b && c) {
                        return Err(format!(
                            "step {step}: live entry {} not removable everywhere: \
                             spec={a} warm={b} sharded={c}",
                            id.as_u64()
                        ));
                    }
                    removed.insert(id.as_u64());
                }
            }
        }
    }

    // Final sweep far past every TTL: pools must drain completely and
    // every put id must be accounted for exactly once.
    let end = now + SimDuration::from_secs(3600);
    sweep(
        &mut spec,
        &mut warm,
        &mut victims_spec,
        &mut victims_warm,
        &mut victims_sharded,
        end,
        steps,
    )?;
    if !spec.is_empty() || !warm.is_empty() || !sharded.is_empty() {
        return Err(format!(
            "pools not empty after final sweep: spec={} warm={} sharded={}",
            spec.len(),
            warm.len(),
            sharded.len()
        ));
    }
    let accounted: BTreeSet<u64> = taken
        .iter()
        .chain(removed.iter())
        .chain(victims_spec.iter())
        .copied()
        .collect();
    let every: BTreeSet<u64> = all_ids.iter().map(|i| i.as_u64()).collect();
    if accounted != every {
        return Err(format!(
            "conservation violated: {} ids put, {} accounted for (taken+removed+victims)",
            every.len(),
            accounted.len()
        ));
    }
    let (ss, ws, hs) = (spec.stats(), warm.stats(), sharded.stats());
    if (ss.hits, ss.misses) != (ws.hits, ws.misses) || (ss.hits, ss.misses) != (hs.hits, hs.misses)
    {
        return Err(format!(
            "hit/miss statistics diverge: spec=({}, {}) warm=({}, {}) sharded=({}, {})",
            ss.hits, ss.misses, ws.hits, ws.misses, hs.hits, hs.misses
        ));
    }
    Ok(())
}

/// Collects every queued `(queue, credit, sandbox)` triple, sorted.
fn queue_snapshot(vmm: &Vmm) -> Vec<(usize, i64, u64)> {
    let sched = vmm.sched();
    let mut out = Vec::new();
    for rq in sched.general_queues().iter().chain(sched.ull_queues()) {
        for (_, credit, vcpu) in sched.queue_list(*rq).iter(sched.arena()) {
            let v: &Vcpu = vcpu;
            out.push((rq.as_usize(), credit, v.sandbox.as_u64()));
        }
    }
    out.sort();
    out
}

/// One randomized whole-pipeline case: the same pause/resume/dispatch
/// sequence driven through VMMs in every resume mode must leave
/// observably identical scheduler state.
///
/// `Ppsm` and `Coal` are the controlled baselines: each replaces exactly
/// one HORSE ingredient with its vanilla sub-algorithm *on the same
/// target queue* (per-element sorted inserts for the splice, per-vCPU
/// lock-protected updates for the coalesced load), so full snapshot,
/// load and dispatch equality against `Horse` isolates both fast paths.
/// Full `Vanilla` resume places vCPUs on the general queues instead of
/// the ull queue, so against it only the queue-agnostic
/// `(credit, sandbox)` multiset is required to match.
pub fn vmm_differential_case(seed: u64, case: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, case) ^ 0x7717);
    let n_sandboxes = rng.gen_range(1..4usize);
    let vcpu_counts: Vec<u32> = (0..n_sandboxes).map(|_| rng.gen_range(1..12u32)).collect();
    let ops: Vec<usize> = (0..rng.gen_range(4..16usize))
        .map(|_| rng.gen_range(0..n_sandboxes))
        .collect();

    #[allow(clippy::type_complexity)]
    let run =
        |mode: ResumeMode| -> Result<(Vec<(usize, i64, u64)>, Vec<f64>, Vec<(i64, u64)>), String> {
            let policy = PausePolicy {
                precompute_merge: mode.uses_ppsm(),
                precompute_coalesce: mode.uses_coalescing(),
            };
            let mut vmm = Vmm::new(Default::default(), CostModel::calibrated());
            let mut ids = Vec::new();
            for &v in &vcpu_counts {
                let cfg = SandboxConfig::builder()
                    .vcpus(v)
                    .ull(true)
                    .build()
                    .map_err(|e| format!("{e:?}"))?;
                let id = vmm.create(cfg);
                vmm.start(id).map_err(|e| format!("start: {e}"))?;
                ids.push(id);
            }
            let mut paused = vec![false; n_sandboxes];
            for &which in &ops {
                if paused[which] {
                    vmm.resume(ids[which], mode)
                        .map_err(|e| format!("resume: {e}"))?;
                } else {
                    vmm.pause(ids[which], policy)
                        .map_err(|e| format!("pause: {e}"))?;
                }
                paused[which] = !paused[which];
            }
            for (i, &p) in paused.iter().enumerate() {
                if p {
                    vmm.resume(ids[i], mode)
                        .map_err(|e| format!("final resume: {e}"))?;
                }
            }
            let snapshot = queue_snapshot(&vmm);
            let loads: Vec<f64> = vmm
                .sched()
                .ull_queues()
                .iter()
                .map(|&rq| vmm.sched().queue(rq).load().get())
                .collect();
            // Dispatch-drain the ull queues: order must be credit-sorted and
            // identical across modes.
            let mut dispatch = Vec::new();
            let ull_rqs = vmm.sched().ull_queues().to_vec();
            for rq in ull_rqs {
                while let Some((credit, vcpu)) = vmm.ull_dispatch(rq) {
                    dispatch.push((credit, vcpu.sandbox.as_u64()));
                }
            }
            Ok((snapshot, loads, dispatch))
        };

    let (horse_snap, horse_loads, horse_dispatch) = run(ResumeMode::Horse)?;
    for mode in [ResumeMode::Ppsm, ResumeMode::Coal] {
        let (snap, loads, dispatch) = run(mode)?;
        if horse_snap != snap {
            return Err(format!(
                "queue snapshots diverge between horse and {mode} after identical \
                 pause/resume sequence (vcpus={vcpu_counts:?}, ops={ops:?}):\n  \
                 horse: {horse_snap:?}\n  {mode}: {snap:?}"
            ));
        }
        for (i, (h, v)) in horse_loads.iter().zip(&loads).enumerate() {
            let tol = 1e-6 * v.abs().max(1.0);
            if (h - v).abs() > tol {
                return Err(format!(
                    "ull queue {i} load diverges: horse={h} {mode}={v} (tol {tol})"
                ));
            }
        }
        if horse_dispatch != dispatch {
            return Err(format!(
                "dispatch sequences diverge:\n  horse: {horse_dispatch:?}\n  {mode}: {dispatch:?}"
            ));
        }
    }
    let mut last = i64::MIN;
    for &(credit, _) in &horse_dispatch {
        if credit < last {
            return Err(format!(
                "horse dispatch order not credit-sorted: {credit} after {last}"
            ));
        }
        last = credit;
    }
    // Vanilla resume uses the general queues: compare the queue-agnostic
    // view (same vCPUs, same credits — just parked elsewhere).
    let (van_snap, _, _) = run(ResumeMode::Vanilla)?;
    let strip = |snap: &[(usize, i64, u64)]| -> Vec<(i64, u64)> {
        let mut v: Vec<(i64, u64)> = snap.iter().map(|&(_, c, s)| (c, s)).collect();
        v.sort_unstable();
        v
    };
    if strip(&horse_snap) != strip(&van_snap) {
        return Err(format!(
            "credit/sandbox multisets diverge between horse and vanilla \
             (vcpus={vcpu_counts:?}, ops={ops:?}):\n  horse: {horse_snap:?}\n  vanilla: {van_snap:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmutated_merge_cases_pass() {
        for case in 0..64 {
            merge_oracle_case(42, case, None).unwrap();
        }
    }

    #[test]
    fn unmutated_coalesce_cases_pass() {
        for case in 0..128 {
            coalesce_oracle_case(42, case, None).unwrap();
        }
    }

    #[test]
    fn pool_trajectories_agree() {
        for case in 0..16 {
            run_pool_trajectory(42, case, 200).unwrap();
        }
    }

    #[test]
    fn unmutated_vmm_cases_pass() {
        for case in 0..8 {
            vmm_differential_case(42, case).unwrap();
        }
    }

    #[test]
    fn splice_misorder_is_caught() {
        for case in 0..8 {
            let err = merge_oracle_case(42, case, Some(Mutation::SpliceMisorder))
                .expect_err("planted misorder must be caught");
            assert!(
                err.contains("diverges") || err.contains("invariant"),
                "{err}"
            );
        }
    }

    #[test]
    fn stale_plan_is_caught() {
        for case in 0..8 {
            merge_oracle_case(42, case, Some(Mutation::StaleMergePlan))
                .expect_err("planted stale plan must be caught");
        }
    }

    #[test]
    fn coalesce_off_by_one_is_caught() {
        for case in 0..16 {
            let err = coalesce_oracle_case(42, case, Some(Mutation::CoalesceOffByOne))
                .expect_err("planted exponent bug must be caught");
            assert!(err.contains("diverges"), "{err}");
        }
    }
}
