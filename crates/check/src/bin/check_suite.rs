//! `check_suite` — the model-based correctness harness runner.
//!
//! Runs every checker in the crate against the real HORSE
//! implementations and exits non-zero on any violation. Fully seeded:
//! the same `--seed` replays the same randomized cases, schedules and
//! concurrent histories, and every failure report names the seed and
//! section needed to reproduce it.
//!
//! `--mutate <name>` plants one known bug ([`horse_check::Mutation`])
//! into the system under test; the run must then FAIL (non-zero exit).
//! CI asserts this for every mutation — the harness's negative control.

use horse_check::{
    check_linearizable_bounded, coalesce_oracle_case, explore, explore_ring, explore_splice,
    merge_oracle_case, run_pool_trajectory, vmm_differential_case, Event, ExploreConfig, History,
    LinearizeError, Mutation, PoolOp, PoolResult, RingExploreConfig, SchedulePolicy,
    SpliceExploreConfig, TickSource,
};
use horse_faas::{KeepAlive, ShardedWarmPool};
use horse_sched::SandboxId;
use horse_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const USAGE: &str = "check_suite — model-based correctness harness for HORSE

USAGE:
    check_suite [--seed N] [--cases N] [--mutate NAME]

OPTIONS:
    --seed N       Master seed (default 42). Every randomized case,
                   schedule and history derives deterministically from
                   it; re-running with the same seed replays the exact
                   run a failure report came from.
    --cases N      Cases per randomized section (default 64).
    --mutate NAME  Plant a known bug; the run must fail. Names:
                   splice-misorder, stale-plan, coalesce-off-by-one,
                   nonlinearizable-pool, splice-worker-misorder.
    --help         Show this help.";

struct Suite {
    seed: u64,
    failures: Vec<String>,
}

impl Suite {
    fn fail(&mut self, section: &str, detail: String) {
        let n = self.failures.len() + 1;
        println!("FAIL [{section}] {detail}");
        println!("  replay: check_suite --seed {}", self.seed);
        self.failures.push(format!("#{n} [{section}]"));
    }

    fn section<F: FnMut(&mut Suite)>(&mut self, name: &str, mut f: F) {
        let before = self.failures.len();
        f(self);
        let new = self.failures.len() - before;
        if new == 0 {
            println!("ok   [{name}]");
        } else {
            println!("FAIL [{name}] {new} violation(s)");
        }
    }
}

/// Records one free-running concurrent history of the sharded pool:
/// real threads, no schedule control — whatever interleaving the OS
/// produces is checked for linearizability afterwards.
fn record_concurrent_history(seed: u64, round: u64) -> History {
    let keep_alive = if round % 2 == 0 {
        KeepAlive::Provisioned
    } else {
        KeepAlive::Ttl(SimDuration::from_nanos(50_000))
    };
    let pool = Arc::new(ShardedWarmPool::new(keep_alive));
    let ticks = Arc::new(TickSource::new());
    let mut initial = Vec::new();
    for i in 0..4u64 {
        let id = SandboxId::new(500_000 + i);
        pool.put(id, SimTime::ZERO);
        initial.push((id, SimTime::ZERO));
    }

    let threads = 4usize;
    let ops_per_thread = 8usize;
    let mut handles = Vec::new();
    for t in 0..threads {
        let pool = Arc::clone(&pool);
        let ticks = Arc::clone(&ticks);
        handles.push(std::thread::spawn(move || {
            let mut rng =
                StdRng::seed_from_u64(seed ^ round.wrapping_mul(0x51f2_77e4) ^ ((t as u64) << 40));
            let mut held: Vec<SandboxId> = Vec::new();
            let mut fresh = 0u64;
            let mut events = Vec::new();
            for _ in 0..ops_per_thread {
                let put_back = !held.is_empty() && rng.gen::<bool>();
                let call = ticks.next();
                let now = ticks.now();
                if put_back {
                    let id = held.pop().expect("held is non-empty");
                    pool.put(id, now);
                    let ret = ticks.next();
                    events.push(Event {
                        thread: t,
                        call,
                        ret,
                        op: PoolOp::Put { id, now },
                        result: PoolResult::Putted,
                    });
                } else if rng.gen_range(0..4u32) == 0 {
                    // Park a fresh sandbox.
                    fresh += 1;
                    let id = SandboxId::new((t as u64 + 1) * 100_000 + fresh);
                    pool.put(id, now);
                    let ret = ticks.next();
                    events.push(Event {
                        thread: t,
                        call,
                        ret,
                        op: PoolOp::Put { id, now },
                        result: PoolResult::Putted,
                    });
                } else {
                    let got = pool.take(now);
                    let ret = ticks.next();
                    if let Some(id) = got {
                        held.push(id);
                    }
                    events.push(Event {
                        thread: t,
                        call,
                        ret,
                        op: PoolOp::Take { now },
                        result: got.map(PoolResult::Took).unwrap_or(PoolResult::Missed),
                    });
                }
            }
            events
        }));
    }
    let mut history = History::new(keep_alive, initial);
    for h in handles {
        history
            .events
            .extend(h.join().expect("history worker panicked"));
    }
    history
}

/// Corrupts a recorded history into a double handout: a second take of
/// an id that was handed out and never returned (appended after every
/// real event, so no legal order can supply it).
fn plant_nonlinearizable(history: &mut History) {
    let max_ret = history.events.iter().map(|e| e.ret).max().unwrap_or(0);
    let taken_never_reput = history.events.iter().find_map(|e| match e.result {
        PoolResult::Took(id)
            if !history
                .events
                .iter()
                .any(|p| matches!(p.op, PoolOp::Put { id: pid, .. } if pid == id)) =>
        {
            Some(id)
        }
        _ => None,
    });
    // Fallback (every taken id was re-put): a take returning an id the
    // pool never saw — just as impossible.
    let id = taken_never_reput.unwrap_or_else(|| SandboxId::new(777_777_777));
    let now = SimTime::ZERO + SimDuration::from_nanos((max_ret + 1) * 1_000);
    history.events.push(Event {
        thread: 0,
        call: max_ret + 1,
        ret: max_ret + 2,
        op: PoolOp::Take { now },
        result: PoolResult::Took(id),
    });
}

fn main() {
    let mut seed = 42u64;
    let mut cases = 64u64;
    let mut mutation: Option<Mutation> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--cases" => {
                cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cases needs an integer"));
            }
            "--mutate" => {
                let name = args.next().unwrap_or_else(|| die("--mutate needs a name"));
                mutation = Some(Mutation::from_name(&name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown mutation '{name}' (have: {})",
                        Mutation::ALL.map(|m| m.name()).join(", ")
                    ))
                }));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }

    println!(
        "check_suite: seed={seed} cases={cases} mutation={}",
        mutation.map_or("none".to_string(), |m| m.to_string())
    );

    let mut suite = Suite {
        seed,
        failures: Vec::new(),
    };

    // 1. Differential merge oracle: 𝒫²𝒮ℳ vs merge_walk vs spec queue.
    suite.section("merge-oracle", |s| {
        let planted =
            mutation.filter(|m| matches!(m, Mutation::SpliceMisorder | Mutation::StaleMergePlan));
        for case in 0..cases {
            if let Err(e) = merge_oracle_case(s.seed, case, planted) {
                s.fail("merge-oracle", format!("case {case}: {e}"));
                break;
            }
        }
    });

    // 2. Coalescing oracle: closed form vs sequential load updates.
    suite.section("coalesce-oracle", |s| {
        let planted = mutation.filter(|m| matches!(m, Mutation::CoalesceOffByOne));
        for case in 0..cases * 2 {
            if let Err(e) = coalesce_oracle_case(s.seed, case, planted) {
                s.fail("coalesce-oracle", format!("case {case}: {e}"));
                break;
            }
        }
    });

    // 3. Pool trajectory equivalence: SpecPool vs WarmPool vs
    //    ShardedWarmPool on identical single-threaded op sequences.
    suite.section("pool-trajectory", |s| {
        for case in 0..cases / 4 {
            if let Err(e) = run_pool_trajectory(s.seed, case, 300) {
                s.fail("pool-trajectory", format!("case {case}: {e}"));
                break;
            }
        }
    });

    // 4. Deterministic interleaving exploration of the sharded pool.
    suite.section("explore", |s| {
        let cfg = ExploreConfig::default();
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::Random,
            SchedulePolicy::Pct { depth: 3 },
        ] {
            for i in 0..3u64 {
                let esee = s.seed.wrapping_add(i);
                let r = explore(&cfg, policy, esee);
                if let Some(v) = r.violation {
                    s.fail(
                        "explore",
                        format!(
                            "policy {policy} seed {esee}: {v}\n  schedule decisions: {:?}",
                            r.decisions
                        ),
                    );
                }
            }
        }
    });

    // 4b. Deterministic interleaving exploration of the batched invoke
    //    path's MPSC submission ring: no loss, no duplication, FIFO per
    //    producer, full/empty edges honest.
    suite.section("ring-explore", |s| {
        let cfg = RingExploreConfig::default();
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::Random,
            SchedulePolicy::Pct { depth: 3 },
        ] {
            for i in 0..3u64 {
                let esee = s.seed.wrapping_add(i);
                let r = explore_ring(&cfg, policy, esee);
                if let Some(v) = r.violation {
                    s.fail(
                        "ring-explore",
                        format!(
                            "policy {policy} seed {esee}: {v}\n  schedule decisions: {:?}",
                            r.decisions
                        ),
                    );
                }
            }
        }
    });

    // 4c. Deterministic interleaving exploration of the real 𝒫²𝒮ℳ
    //    splice workers: one splice per granted step, merged queue
    //    compared against the sequential merge-walk oracle (multiset AND
    //    FIFO order). `--mutate splice-worker-misorder` plants a worker
    //    that links its anchor to the sub-list tail.
    suite.section("splice-explore", |s| {
        let cfg = SpliceExploreConfig {
            plant_misorder: mutation == Some(Mutation::SpliceWorkerMisorder),
            ..SpliceExploreConfig::default()
        };
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::Random,
            SchedulePolicy::Pct { depth: 3 },
        ] {
            for i in 0..3u64 {
                let esee = s.seed.wrapping_add(i);
                let r = explore_splice(&cfg, policy, esee);
                if let Some(v) = r.violation {
                    s.fail(
                        "splice-explore",
                        format!(
                            "policy {policy} seed {esee}: {v}\n  schedule decisions: {:?}",
                            r.decisions
                        ),
                    );
                }
            }
        }
    });

    // 5. Linearizability of free-running concurrent histories.
    suite.section("linearize", |s| {
        for round in 0..4u64 {
            let mut history = record_concurrent_history(s.seed, round);
            if round == 0 && mutation == Some(Mutation::NonLinearizablePool) {
                plant_nonlinearizable(&mut history);
            }
            match check_linearizable_bounded(&history, 2_000_000) {
                Ok(_) => {}
                Err(e @ LinearizeError::NotLinearizable { .. }) => {
                    s.fail("linearize", format!("round {round}: {e}"));
                }
                Err(LinearizeError::Inconclusive { visited }) => {
                    // Not a verdict: report loudly but don't fail CI on a
                    // search-budget artifact.
                    println!("warn [linearize] round {round}: inconclusive after {visited} states");
                }
                Err(e) => s.fail("linearize", format!("round {round}: {e}")),
            }
        }
    });

    // 6. Whole-pipeline VMM differential: HORSE vs vanilla resume.
    suite.section("vmm-differential", |s| {
        for case in 0..cases / 8 {
            if let Err(e) = vmm_differential_case(s.seed, case) {
                s.fail("vmm-differential", format!("case {case}: {e}"));
                break;
            }
        }
    });

    println!();
    if suite.failures.is_empty() {
        if let Some(m) = mutation {
            println!("check_suite: ERROR — planted mutation '{m}' was NOT caught by any checker");
            println!("(a harness that can't fail its negative control proves nothing)");
            // Exit 0: CI's `if check_suite --mutate X; then exit 1; fi`
            // turns this into the job failure.
            return;
        }
        println!("check_suite: all sections passed (seed {seed})");
        return;
    }
    if let Some(m) = mutation {
        println!(
            "check_suite: planted mutation '{m}' caught — {} failure(s), exiting non-zero \
             as the negative self-test expects",
            suite.failures.len()
        );
    } else {
        println!(
            "check_suite: {} failure(s): {}",
            suite.failures.len(),
            suite.failures.join(", ")
        );
    }
    std::process::exit(1);
}

fn die(msg: &str) -> ! {
    eprintln!("check_suite: {msg}");
    std::process::exit(2);
}
