//! Planted bugs for the harness's negative self-test.
//!
//! A checker that never fires is worse than no checker: it manufactures
//! false confidence. `check_suite --mutate <name>` plants one of these
//! known bugs into the system under test (never into the oracle) and
//! the run must fail — CI asserts the non-zero exit. Each mutation
//! targets a different checker, so together they prove every layer of
//! the harness has teeth.

use std::fmt;

/// A known bug the harness must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Two adjacent nodes of the post-splice run queue are swapped —
    /// models a 𝒫²𝒮ℳ splice that linked a sub-list in the wrong order.
    /// Caught by the differential merge oracle (queue contents diverge
    /// from the reference merge / sortedness breaks).
    SpliceMisorder,
    /// *B* mutates after `precompute` with no maintenance callback, and
    /// the merge proceeds against the stale plan. Caught by the
    /// differential merge oracle: either the staleness guard fires
    /// (reported as a planted-stale detection) or the merged queue
    /// diverges from the oracle.
    StaleMergePlan,
    /// The coalesced load update uses the paper's misprinted `n−1`
    /// geometric exponent instead of `n`. Caught by the coalescing
    /// oracle (closed form diverges from the sequential reference).
    CoalesceOffByOne,
    /// A recorded pool history is corrupted into a double handout (two
    /// completed takes return the same sandbox with no intervening
    /// put). Caught by the Wing–Gong linearizability checker.
    NonLinearizablePool,
    /// One real splice-worker thread links its anchor to the sub-list
    /// *tail* instead of the head, silently dropping the interior nodes
    /// of a length-≥ 2 splice. Caught by the stepped splice-worker
    /// explorer (merged queue diverges from the sequential merge-walk
    /// oracle, or the list invariants break).
    SpliceWorkerMisorder,
}

impl Mutation {
    /// Every mutation, in a fixed order.
    pub const ALL: [Mutation; 5] = [
        Mutation::SpliceMisorder,
        Mutation::StaleMergePlan,
        Mutation::CoalesceOffByOne,
        Mutation::NonLinearizablePool,
        Mutation::SpliceWorkerMisorder,
    ];

    /// The CLI name (`check_suite --mutate <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SpliceMisorder => "splice-misorder",
            Mutation::StaleMergePlan => "stale-plan",
            Mutation::CoalesceOffByOne => "coalesce-off-by-one",
            Mutation::NonLinearizablePool => "nonlinearizable-pool",
            Mutation::SpliceWorkerMisorder => "splice-worker-misorder",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Mutation> {
        Mutation::ALL.iter().copied().find(|m| m.name() == name)
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::from_name(m.name()), Some(m));
        }
        assert_eq!(Mutation::from_name("nope"), None);
    }
}
