//! Seeded deterministic interleaving exploration of the sharded pool.
//!
//! Real concurrent runs exercise whatever interleavings the OS happens
//! to produce; this module explores interleavings *deterministically*.
//! Each virtual worker is a real OS thread (so the pool's per-thread
//! shard pinning behaves exactly as in production), but workers only
//! run when the explorer grants them a step, one operation at a time.
//! Which worker steps next is decided by a seeded [`SchedulePolicy`]:
//!
//! * **round-robin** — the systematic baseline;
//! * **random** — uniform over runnable workers;
//! * **PCT** — priority-based probabilistic concurrency testing
//!   (Burckhardt et al., ASPLOS'10): random thread priorities with `d`
//!   seeded priority-change points, which finds ordering bugs of depth
//!   `d` with provable probability.
//!
//! Operations execute atomically (one completes before the next is
//! granted), so the observed execution order *is* a linearization; the
//! oracle replays it against the relaxed
//! [`SpecPool`](crate::spec::SpecPool) semantics and
//! additionally checks end-of-run conservation. Any violation is
//! reported with the seed, the policy, and the full decision sequence —
//! enough to replay the failing interleaving exactly.

use horse_faas::{KeepAlive, ShardedWarmPool};
use horse_sched::SandboxId;
use horse_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;

/// One scripted worker operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Take a sandbox (held on success).
    Take,
    /// Put back the most recently taken held sandbox, or park a fresh
    /// worker-unique one if none is held.
    Put,
    /// Run an eager eviction sweep.
    Evict,
}

/// How the explorer picks the next worker to step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Cycle through runnable workers in index order.
    RoundRobin,
    /// Uniformly random runnable worker (seeded).
    Random,
    /// PCT with the given bug depth `d` (`d − 1` priority-change
    /// points).
    Pct {
        /// Bug depth (≥ 1).
        depth: usize,
    },
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulePolicy::RoundRobin => write!(f, "round-robin"),
            SchedulePolicy::Random => write!(f, "random"),
            SchedulePolicy::Pct { depth } => write!(f, "pct(d={depth})"),
        }
    }
}

/// What one granted step did (the explorer's replay log entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEffect {
    /// `take(now)` returned this.
    Took(Option<SandboxId>),
    /// `put(id, now)` parked this id.
    Put(SandboxId),
    /// An eviction sweep removed these many entries (ids recorded
    /// separately in the oracle replay).
    Evicted(usize),
}

/// One executed step.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Worker index granted the step.
    pub thread: usize,
    /// Virtual time the operation ran at.
    pub now: SimTime,
    /// The scripted operation.
    pub op: ScriptOp,
    /// Its observed effect (evictions carry the evicted ids).
    pub effect: StepEffect,
    /// Ids removed by an `Evict` step, sorted.
    pub evicted_ids: Vec<u64>,
}

/// Outcome of one exploration.
#[derive(Debug)]
pub struct Exploration {
    /// Scheduling decisions, in order: the worker index granted each
    /// step. Re-running with the same seed/policy/config replays the
    /// identical interleaving.
    pub decisions: Vec<usize>,
    /// Every executed step, in execution order.
    pub steps: Vec<StepRecord>,
    /// Error description if an oracle rejected the run.
    pub violation: Option<String>,
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Number of virtual workers (OS threads).
    pub threads: usize,
    /// Script length per worker.
    pub ops_per_thread: usize,
    /// Keep-alive TTL in virtual-time steps (1 µs each); `None` for a
    /// provisioned pool.
    pub ttl_steps: Option<u64>,
    /// Entries pre-pooled before workers start.
    pub initial_entries: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 12,
            ttl_steps: Some(24),
            initial_entries: 6,
        }
    }
}

/// Step duration in virtual nanoseconds (1 µs per granted step).
const STEP_NS: u64 = 1_000;

fn step_time(step: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_nanos(step * STEP_NS)
}

/// Generates each worker's op script from the seed: a take-heavy mix
/// with occasional puts-of-fresh entries and rare eviction sweeps.
fn generate_scripts(cfg: &ExploreConfig, seed: u64) -> Vec<Vec<ScriptOp>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5c72_1a2e_9d3f_4b60);
    (0..cfg.threads)
        .map(|_| {
            (0..cfg.ops_per_thread)
                .map(|_| match rng.gen_range(0..10u32) {
                    0..=4 => ScriptOp::Take,
                    5..=8 => ScriptOp::Put,
                    _ => ScriptOp::Evict,
                })
                .collect()
        })
        .collect()
}

enum Cmd {
    Step { now: SimTime },
    Stop,
}

struct WorkerReply {
    op: ScriptOp,
    effect: StepEffect,
    evicted_ids: Vec<u64>,
    held: Option<Vec<SandboxId>>, // populated on Stop
}

/// The seeded scheduler over runnable workers. Shared with the ring
/// explorer ([`crate::ring_explore`]), which steps a different system
/// under the same policies.
pub(crate) struct Scheduler {
    policy: SchedulePolicy,
    rng: StdRng,
    rr_next: usize,
    priorities: Vec<u64>,
    change_points: Vec<usize>,
}

impl Scheduler {
    pub(crate) fn new(
        policy: SchedulePolicy,
        seed: u64,
        threads: usize,
        total_steps: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut priorities: Vec<u64> = (0..threads as u64).map(|i| (i + 1) * 1_000).collect();
        // Shuffle initial priorities (Fisher–Yates on the seeded rng).
        for i in (1..priorities.len()).rev() {
            let j = rng.gen_range(0..=i);
            priorities.swap(i, j);
        }
        let change_points = match policy {
            SchedulePolicy::Pct { depth } if depth > 1 && total_steps > 0 => (0..depth - 1)
                .map(|_| rng.gen_range(0..total_steps))
                .collect(),
            _ => Vec::new(),
        };
        Self {
            policy,
            rng,
            rr_next: 0,
            priorities,
            change_points,
        }
    }

    /// Picks the next worker among `runnable` (non-empty) for step
    /// index `step`.
    pub(crate) fn pick(&mut self, runnable: &[usize], step: usize) -> usize {
        debug_assert!(!runnable.is_empty());
        match self.policy {
            SchedulePolicy::RoundRobin => {
                // Next runnable at or after the cursor, cyclically.
                let chosen = *runnable
                    .iter()
                    .find(|&&t| t >= self.rr_next)
                    .unwrap_or(&runnable[0]);
                self.rr_next = chosen + 1;
                chosen
            }
            SchedulePolicy::Random => runnable[self.rng.gen_range(0..runnable.len())],
            SchedulePolicy::Pct { .. } => {
                if self.change_points.contains(&step) {
                    // Demote the currently highest-priority runnable
                    // worker below everyone.
                    if let Some(&hi) = runnable.iter().max_by_key(|&&t| self.priorities[t]) {
                        let min = *self.priorities.iter().min().unwrap_or(&0);
                        self.priorities[hi] = min.saturating_sub(1);
                    }
                }
                *runnable
                    .iter()
                    .max_by_key(|&&t| self.priorities[t])
                    .expect("runnable is non-empty")
            }
        }
    }
}

/// Runs one seeded exploration of a [`ShardedWarmPool`] and validates
/// it against the sequential spec. The returned [`Exploration`] carries
/// the full decision sequence; `violation` is `None` on success.
pub fn explore(cfg: &ExploreConfig, policy: SchedulePolicy, seed: u64) -> Exploration {
    let keep_alive = match cfg.ttl_steps {
        Some(steps) => KeepAlive::Ttl(SimDuration::from_nanos(steps * STEP_NS)),
        None => KeepAlive::Provisioned,
    };
    let pool = Arc::new(ShardedWarmPool::new(keep_alive));
    let mut all_ids: Vec<u64> = Vec::new();
    for i in 0..cfg.initial_entries {
        let id = 900_000_000 + i;
        pool.put(SandboxId::new(id), step_time(0));
        all_ids.push(id);
    }

    let scripts = generate_scripts(cfg, seed);
    let total_steps: usize = scripts.iter().map(Vec::len).sum();
    let mut sched = Scheduler::new(policy, seed, cfg.threads, total_steps);

    // Spawn the workers, each behind a command channel.
    let mut cmd_txs = Vec::with_capacity(cfg.threads);
    let mut reply_rxs = Vec::with_capacity(cfg.threads);
    let mut handles = Vec::with_capacity(cfg.threads);
    for (widx, script) in scripts.iter().cloned().enumerate() {
        let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
        let (reply_tx, reply_rx) = mpsc::channel::<WorkerReply>();
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            let mut held: Vec<SandboxId> = Vec::new();
            let mut fresh = 0u64;
            let mut next_op = 0usize;
            while let Ok(cmd) = cmd_rx.recv() {
                match cmd {
                    Cmd::Stop => {
                        let _ = reply_tx.send(WorkerReply {
                            op: ScriptOp::Take,
                            effect: StepEffect::Evicted(0),
                            evicted_ids: Vec::new(),
                            held: Some(held),
                        });
                        return;
                    }
                    Cmd::Step { now } => {
                        let op = script[next_op];
                        next_op += 1;
                        let (effect, evicted_ids) = match op {
                            ScriptOp::Take => {
                                let got = pool.take(now);
                                if let Some(id) = got {
                                    held.push(id);
                                }
                                (StepEffect::Took(got), Vec::new())
                            }
                            ScriptOp::Put => {
                                let id = held.pop().unwrap_or_else(|| {
                                    fresh += 1;
                                    SandboxId::new((widx as u64 + 1) * 1_000_000 + fresh)
                                });
                                pool.put(id, now);
                                (StepEffect::Put(id), Vec::new())
                            }
                            ScriptOp::Evict => {
                                let mut buf = Vec::new();
                                pool.evict_expired_into(now, &mut buf);
                                let mut ids: Vec<u64> = buf.iter().map(|id| id.as_u64()).collect();
                                ids.sort_unstable();
                                (StepEffect::Evicted(ids.len()), ids)
                            }
                        };
                        let _ = reply_tx.send(WorkerReply {
                            op,
                            effect,
                            evicted_ids,
                            held: None,
                        });
                    }
                }
            }
        }));
        cmd_txs.push(cmd_tx);
        reply_rxs.push(reply_rx);
    }

    // Grant steps per the schedule, one at a time.
    let mut remaining: Vec<usize> = scripts.iter().map(Vec::len).collect();
    let mut decisions = Vec::with_capacity(total_steps);
    let mut steps: Vec<StepRecord> = Vec::with_capacity(total_steps);
    for step in 0..total_steps {
        let runnable: Vec<usize> = (0..cfg.threads).filter(|&t| remaining[t] > 0).collect();
        let chosen = sched.pick(&runnable, step);
        remaining[chosen] -= 1;
        decisions.push(chosen);
        let now = step_time(step as u64 + 1);
        cmd_txs[chosen]
            .send(Cmd::Step { now })
            .expect("worker alive");
        let reply = reply_rxs[chosen].recv().expect("worker replied");
        steps.push(StepRecord {
            thread: chosen,
            now,
            op: reply.op,
            effect: reply.effect,
            evicted_ids: reply.evicted_ids,
        });
    }

    // Collect held ids and join.
    let mut held_at_end: Vec<u64> = Vec::new();
    for t in 0..cfg.threads {
        cmd_txs[t].send(Cmd::Stop).expect("worker alive");
        let reply = reply_rxs[t].recv().expect("stop ack");
        held_at_end.extend(
            reply
                .held
                .expect("stop reply carries held")
                .iter()
                .map(|id| id.as_u64()),
        );
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let violation = validate(
        &pool,
        keep_alive,
        &steps,
        &mut all_ids,
        &held_at_end,
        total_steps,
    );
    Exploration {
        decisions,
        steps,
        violation,
    }
}

/// Replays the execution order against the relaxed spec and checks
/// conservation. Returns a description of the first violation.
///
/// Because `take` evicts expired entries *lazily* (an entry it passes
/// over on the way to a hit is doomed, so a later sweep legitimately
/// misses it), the oracle tracks expired entries in a *limbo* set —
/// "expired; either still pooled or already doomed" — instead of
/// predicting the exact sweep contents:
///
/// * a take may only return a **live** (pooled, non-expired) entry;
/// * a take may only miss when **no live entry exists**;
/// * a sweep may only evict **limbo** entries (never a live one);
/// * at the end, every id ever pooled is accounted for exactly once
///   (held ∪ drained ∪ doomed ∪ swept).
fn validate(
    pool: &ShardedWarmPool,
    keep_alive: KeepAlive,
    steps: &[StepRecord],
    all_ids: &mut Vec<u64>,
    held_at_end: &[u64],
    total_steps: usize,
) -> Option<String> {
    let expired = |since: SimTime, now: SimTime| crate::spec::spec_expired(keep_alive, since, now);
    // id -> parked-at for live entries; limbo holds expired ids.
    let mut live: Vec<(u64, SimTime)> = all_ids.iter().map(|&id| (id, step_time(0))).collect();
    let mut limbo: Vec<u64> = Vec::new();
    for (i, rec) in steps.iter().enumerate() {
        // Monotonic time: demote newly expired entries to limbo.
        let now = rec.now;
        let mut still_live = Vec::with_capacity(live.len());
        for (id, since) in live.drain(..) {
            if expired(since, now) {
                limbo.push(id);
            } else {
                still_live.push((id, since));
            }
        }
        live = still_live;
        match (rec.op, &rec.effect) {
            (ScriptOp::Take, StepEffect::Took(Some(id))) => {
                let raw = id.as_u64();
                match live.iter().position(|&(e, _)| e == raw) {
                    Some(pos) => {
                        live.remove(pos);
                    }
                    None => {
                        return Some(format!(
                            "step {i} (thread {t}): take returned id {raw} which is not \
                             pooled-and-live at now={now}ns",
                            t = rec.thread,
                            now = now.as_nanos(),
                        ));
                    }
                }
            }
            (ScriptOp::Take, StepEffect::Took(None)) => {
                if !live.is_empty() {
                    return Some(format!(
                        "step {i} (thread {t}): take missed while live entries {live:?} were \
                         pooled at now={now}ns (lost sandbox)",
                        t = rec.thread,
                        now = now.as_nanos(),
                    ));
                }
            }
            (ScriptOp::Put, StepEffect::Put(id)) => {
                live.push((id.as_u64(), now));
                if !all_ids.contains(&id.as_u64()) {
                    all_ids.push(id.as_u64());
                }
            }
            (ScriptOp::Evict, StepEffect::Evicted(_)) => {
                for &evicted in &rec.evicted_ids {
                    match limbo.iter().position(|&e| e == evicted) {
                        Some(pos) => {
                            limbo.swap_remove(pos);
                        }
                        None => {
                            return Some(format!(
                                "step {i} (thread {t}): eviction sweep removed id {evicted} \
                                 which was not an expired pooled entry at now={now}ns",
                                t = rec.thread,
                                now = now.as_nanos(),
                            ));
                        }
                    }
                }
            }
            (op, effect) => {
                return Some(format!("step {i}: inconsistent record {op:?} / {effect:?}"));
            }
        }
    }

    // Conservation: initial + fresh = held + pooled + doomed.
    let end_now = step_time(total_steps as u64 + 1);
    let mut accounted: Vec<u64> = held_at_end.to_vec();
    // Evict-sweep results were already removed from the pool; drain the
    // remainder (takes may lazily doom expired entries).
    while let Some(id) = pool.take(end_now) {
        accounted.push(id.as_u64());
    }
    accounted.extend(pool.drain_doomed().iter().map(|id| id.as_u64()));
    // Ids evicted by sweeps are gone for good — count them from the log.
    for rec in steps {
        accounted.extend(rec.evicted_ids.iter().copied());
    }
    let mut expected = all_ids.clone();
    expected.sort_unstable();
    accounted.sort_unstable();
    if accounted != expected {
        return Some(format!(
            "conservation violated: expected ids {expected:?}, accounted {accounted:?}"
        ));
    }
    if !pool.is_empty() {
        return Some(format!("pool reports len {} after full drain", pool.len()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_pass_on_the_real_pool() {
        let cfg = ExploreConfig::default();
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::Random,
            SchedulePolicy::Pct { depth: 3 },
        ] {
            for seed in [1u64, 42, 1337] {
                let r = explore(&cfg, policy, seed);
                assert!(
                    r.violation.is_none(),
                    "policy {policy} seed {seed}: {:?}\ndecisions: {:?}",
                    r.violation,
                    r.decisions
                );
                assert_eq!(r.decisions.len(), cfg.threads * cfg.ops_per_thread);
            }
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = ExploreConfig::default();
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::Random,
            SchedulePolicy::Pct { depth: 4 },
        ] {
            let a = explore(&cfg, policy, 7);
            let b = explore(&cfg, policy, 7);
            assert_eq!(a.decisions, b.decisions, "policy {policy} must replay");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_policies() {
        let cfg = ExploreConfig::default();
        let a = explore(&cfg, SchedulePolicy::Random, 1);
        let b = explore(&cfg, SchedulePolicy::Random, 2);
        assert_ne!(a.decisions, b.decisions, "seeds must steer the schedule");
    }

    #[test]
    fn provisioned_exploration_never_evicts() {
        let cfg = ExploreConfig {
            ttl_steps: None,
            ..ExploreConfig::default()
        };
        let r = explore(&cfg, SchedulePolicy::Random, 99);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.steps.iter().all(|s| s.evicted_ids.is_empty()));
    }
}
