//! Recorded call/return histories of warm-pool operations.
//!
//! Concurrent workers stamp every operation with a *call* and a
//! *return* tick drawn from one global atomic counter. The resulting
//! partial order (`op₁` precedes `op₂` iff `ret(op₁) < call(op₂)`) is
//! exactly what the Wing–Gong checker needs: overlapping operations are
//! unordered and the checker may linearize them either way.

use horse_faas::KeepAlive;
use horse_sched::SandboxId;
use horse_sim::{SimDuration, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One warm-pool operation, with its argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolOp {
    /// `take(now)`.
    Take {
        /// Virtual time passed to the take.
        now: SimTime,
    },
    /// `put(id, now)`.
    Put {
        /// Sandbox returned to the pool.
        id: SandboxId,
        /// Virtual time passed to the put.
        now: SimTime,
    },
}

/// The observed result of a [`PoolOp`] (puts return nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolResult {
    /// A take hit, returning this sandbox.
    Took(SandboxId),
    /// A take missed.
    Missed,
    /// A put completed.
    Putted,
}

/// One completed operation in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Worker thread that issued the operation.
    pub thread: usize,
    /// Global tick at invocation.
    pub call: u64,
    /// Global tick at return (`> call`).
    pub ret: u64,
    /// The operation.
    pub op: PoolOp,
    /// Its observed result.
    pub result: PoolResult,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.op, self.result) {
            (PoolOp::Take { now }, PoolResult::Took(id)) => write!(
                f,
                "[t{} {}..{}] take(now={}ns) -> Some({})",
                self.thread,
                self.call,
                self.ret,
                now.as_nanos(),
                id.as_u64()
            ),
            (PoolOp::Take { now }, _) => write!(
                f,
                "[t{} {}..{}] take(now={}ns) -> None",
                self.thread,
                self.call,
                self.ret,
                now.as_nanos()
            ),
            (PoolOp::Put { id, now }, _) => write!(
                f,
                "[t{} {}..{}] put({}, now={}ns)",
                self.thread,
                self.call,
                self.ret,
                id.as_u64(),
                now.as_nanos()
            ),
        }
    }
}

/// A complete concurrent history: the keep-alive policy in force, the
/// entries pooled before the workers started, and every completed
/// operation.
#[derive(Debug, Clone)]
pub struct History {
    /// Keep-alive policy of the pool under test.
    pub keep_alive: KeepAlive,
    /// Entries pooled before the first recorded operation.
    pub initial: Vec<(SandboxId, SimTime)>,
    /// Completed operations (any order; the checker sorts internally).
    pub events: Vec<Event>,
}

impl History {
    /// A history over a pool that started with `initial` entries.
    pub fn new(keep_alive: KeepAlive, initial: Vec<(SandboxId, SimTime)>) -> Self {
        Self {
            keep_alive,
            initial,
            events: Vec::new(),
        }
    }

    /// Renders the full history, one event per line — the replay payload
    /// attached to every linearizability failure report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "history: {} initial entries, {} events, keep_alive={:?}\n",
            self.initial.len(),
            self.events.len(),
            self.keep_alive,
        ));
        for &(id, since) in &self.initial {
            out.push_str(&format!(
                "  initial: id={} since={}ns\n",
                id.as_u64(),
                since.as_nanos()
            ));
        }
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.call);
        for e in &sorted {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }
}

/// Shared recorder handed to concurrent workers: a global tick source
/// plus per-worker event buffers merged after the join.
#[derive(Debug, Default)]
pub struct TickSource {
    ticks: AtomicU64,
}

impl TickSource {
    /// A fresh tick source starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next globally unique, monotonic tick.
    pub fn next(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    /// A monotonically increasing virtual time derived from the current
    /// tick (1 µs per tick), used as the `now` argument of recorded
    /// operations so that expiry is monotone along real time.
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.ticks.load(Ordering::Relaxed) * 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_unique_and_monotonic() {
        let t = TickSource::new();
        let a = t.next();
        let b = t.next();
        assert!(b > a);
        assert!(t.now().as_nanos() >= 2_000 - 1_000);
    }

    #[test]
    fn render_includes_every_event() {
        let mut h = History::new(
            KeepAlive::Provisioned,
            vec![(SandboxId::new(1), SimTime::ZERO)],
        );
        h.events.push(Event {
            thread: 0,
            call: 0,
            ret: 1,
            op: PoolOp::Take { now: SimTime::ZERO },
            result: PoolResult::Took(SandboxId::new(1)),
        });
        let text = h.render();
        assert!(text.contains("take"));
        assert!(text.contains("Some(1)"));
        assert!(text.contains("initial: id=1"));
    }
}
