//! `horse-check` — model-based correctness harness for HORSE.
//!
//! Performance work is only trustworthy on top of demonstrated
//! equivalence: HORSE promises to change *when* scheduler work happens,
//! never *what* the scheduler computes. This crate checks that promise
//! mechanically, from three angles:
//!
//! * [`spec`] — deliberately naive sequential reference models
//!   ([`spec::SpecPool`], [`spec::SpecRunQueue`], [`spec::SpecLoad`])
//!   that define what "correct" means;
//! * [`linearize`] — a bounded Wing–Gong linearizability checker that
//!   validates recorded concurrent histories of the sharded warm pool
//!   ([`history`]) against the spec, while [`explore`] generates those
//!   histories under seeded deterministic schedules (round-robin,
//!   random, PCT) that replay exactly from a seed;
//! * [`differential`] — randomized differential oracles driving the
//!   HORSE fast paths (𝒫²𝒮ℳ splice merge, coalesced load updates,
//!   `ResumeMode::Horse`) and the vanilla paths through identical
//!   scenarios, demanding identical observables;
//! * [`reliability_oracle`] — an external-vs-internal ledger oracle for
//!   the cluster reliability plane: the dispositions handed back to the
//!   caller must balance the plane's own conservation books line by
//!   line, so hedged or retried invocations can never double-apply.
//!
//! * [`splice_explore`] — the same seeded schedules driving real
//!   𝒫²𝒮ℳ splice-worker threads one splice at a time, with the merged
//!   queue compared against the sequential merge-walk oracle in both
//!   multiset and FIFO order;
//!
//! The harness distrusts itself too: [`mutate`] defines five known bugs
//! (`check_suite --mutate <name>`) that are planted into the system
//! under test, and CI asserts each one is caught — a checker that can't
//! fail its own negative control proves nothing.
//!
//! Every failure report carries the seed (and, for concurrent runs, the
//! recorded schedule or history) needed to replay it deterministically;
//! `tests/README.md` documents the replay workflow.

#![warn(missing_docs)]

pub mod differential;
pub mod explore;
pub mod history;
pub mod linearize;
pub mod mutate;
pub mod reliability_oracle;
pub mod ring_explore;
pub mod spec;
pub mod splice_explore;

pub use differential::{
    coalesce_oracle_case, merge_oracle_case, run_pool_trajectory, vmm_differential_case,
};
pub use explore::{explore, Exploration, ExploreConfig, SchedulePolicy};
pub use history::{Event, History, PoolOp, PoolResult, TickSource};
pub use linearize::{
    check_linearizable, check_linearizable_bounded, Linearization, LinearizeError,
};
pub use mutate::Mutation;
pub use reliability_oracle::{
    check_ledgers, run_reliability_scenario, DispositionTally, OracleReport, ReliabilityScenario,
};
pub use ring_explore::{explore_ring, RingExploration, RingExploreConfig};
pub use spec::{spec_expired, SpecLoad, SpecPool, SpecRunQueue};
pub use splice_explore::{
    explore_splice, SpliceExploration, SpliceExploreConfig, SpliceStepRecord,
};
