//! Seeded deterministic interleaving exploration of the
//! [`SubmissionRing`] — the MPSC ring feeding the batched invoke path.
//!
//! Same machinery as [`crate::explore`]: each producer (and the single
//! consumer) is a real OS thread that only runs when the explorer
//! grants it a step, and which worker steps next is decided by a seeded
//! [`SchedulePolicy`]. Operations execute atomically — one `push` or
//! `pop` completes before the next is granted — so the observed order
//! *is* a linearization, and the oracle can replay it against a plain
//! FIFO queue:
//!
//! * a `push` may fail (`RingFull`) **only** when the queue holds
//!   exactly `capacity` requests;
//! * a `pop` must return **exactly the queue front** — MPSC claim order
//!   is FIFO, and under atomic steps claim order is the step order;
//! * a `pop` may return `None` **only** on an empty queue;
//! * at the end, drained + popped = pushed — nothing lost, nothing
//!   duplicated — and each producer's requests come out in its own push
//!   order (FIFO per producer, implied by the front-match but asserted
//!   separately because it is the property the batch path leans on).
//!
//! Every request carries a unique `(producer, index)` tag in its
//! deadline field, so loss, duplication and reordering are all
//! distinguishable. Violations report the seed, policy and decision
//! sequence needed to replay the interleaving exactly.

use crate::explore::{SchedulePolicy, Scheduler};
use horse_faas::{FunctionRegistry, Request, StartStrategy, SubmissionRing};
use horse_reliability::RequestClass;
use horse_vmm::SandboxConfig;
use horse_workloads::Category;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct RingExploreConfig {
    /// Number of producer workers (OS threads); one consumer is added.
    pub producers: usize,
    /// Push attempts per producer.
    pub pushes_per_producer: usize,
    /// Ring capacity (rounded up to a power of two by the ring). Keep
    /// it smaller than the total pushes so full-ring rejections and
    /// wraparound are actually explored.
    pub capacity: usize,
    /// Extra consumer steps beyond the total push count, so empty-ring
    /// `pop` misses are explored too.
    pub pop_slack: usize,
}

impl Default for RingExploreConfig {
    fn default() -> Self {
        Self {
            producers: 3,
            pushes_per_producer: 16,
            capacity: 8,
            pop_slack: 6,
        }
    }
}

/// What one granted step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingStepEffect {
    /// `push` accepted the request with this tag.
    Pushed(u64),
    /// `push` was rejected full and handed the request (tag) back.
    Full(u64),
    /// `pop` returned a request with this tag, or `None` on empty.
    Popped(Option<u64>),
}

/// One executed step.
#[derive(Debug, Clone, Copy)]
pub struct RingStepRecord {
    /// Worker index granted the step (`producers` = the consumer).
    pub thread: usize,
    /// Its observed effect.
    pub effect: RingStepEffect,
}

/// Outcome of one ring exploration.
#[derive(Debug)]
pub struct RingExploration {
    /// Worker index granted each step; replays from the seed.
    pub decisions: Vec<usize>,
    /// Every executed step, in execution order.
    pub steps: Vec<RingStepRecord>,
    /// Error description if the oracle rejected the run.
    pub violation: Option<String>,
}

/// Tag layout: `producer * TAG_STRIDE + index`, stored in the request
/// deadline so it round-trips through the ring's encoded slot words.
const TAG_STRIDE: u64 = 1_000_000;

fn tagged_request(f: horse_faas::FunctionId, producer: usize, index: usize) -> Request {
    Request {
        function: f,
        strategy: StartStrategy::Horse,
        class: RequestClass::Ull,
        deadline_ns: Some(producer as u64 * TAG_STRIDE + index as u64),
    }
}

enum Cmd {
    Step,
    Stop,
}

/// Runs one seeded exploration of a [`SubmissionRing`] with
/// `cfg.producers` producers and one consumer, validating the observed
/// linearization against a FIFO queue. `violation` is `None` on
/// success.
pub fn explore_ring(cfg: &RingExploreConfig, policy: SchedulePolicy, seed: u64) -> RingExploration {
    let capacity = cfg.capacity.next_power_of_two().max(2);
    let ring = Arc::new(SubmissionRing::with_capacity(capacity));
    let mut registry = FunctionRegistry::new();
    let f = registry.register("filter", Category::Cat3, SandboxConfig::default());

    let total_pushes = cfg.producers * cfg.pushes_per_producer;
    let consumer_steps = total_pushes + cfg.pop_slack;
    let total_steps = total_pushes + consumer_steps;
    let workers = cfg.producers + 1; // last index is the consumer
    let mut sched = Scheduler::new(policy, seed, workers, total_steps);

    // Spawn producers and the consumer, each behind a command channel.
    let mut cmd_txs = Vec::with_capacity(workers);
    let mut reply_rxs = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for widx in 0..workers {
        let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
        let (reply_tx, reply_rx) = mpsc::channel::<RingStepEffect>();
        let ring = Arc::clone(&ring);
        let is_consumer = widx == cfg.producers;
        handles.push(std::thread::spawn(move || {
            // A rejected push keeps its request; the next granted step
            // retries it, so producer scripts are *attempts*.
            let mut next_index = 0usize;
            let mut retry: Option<Request> = None;
            while let Ok(cmd) = cmd_rx.recv() {
                match cmd {
                    Cmd::Stop => return,
                    Cmd::Step => {
                        let effect = if is_consumer {
                            RingStepEffect::Popped(
                                ring.pop().map(|r| r.deadline_ns.expect("tagged")),
                            )
                        } else {
                            let req = retry.take().unwrap_or_else(|| {
                                let r = tagged_request(f, widx, next_index);
                                next_index += 1;
                                r
                            });
                            let tag = req.deadline_ns.expect("tagged");
                            match ring.push(req) {
                                Ok(_) => RingStepEffect::Pushed(tag),
                                Err(horse_faas::RingFull(back)) => {
                                    retry = Some(back);
                                    RingStepEffect::Full(tag)
                                }
                            }
                        };
                        let _ = reply_tx.send(effect);
                    }
                }
            }
        }));
        cmd_txs.push(cmd_tx);
        reply_rxs.push(reply_rx);
    }

    // Grant steps per the schedule. A producer is runnable while it has
    // push attempts left; the consumer while it has pop steps left.
    let mut remaining: Vec<usize> = (0..workers)
        .map(|w| {
            if w == cfg.producers {
                consumer_steps
            } else {
                cfg.pushes_per_producer
            }
        })
        .collect();
    let mut decisions = Vec::with_capacity(total_steps);
    let mut steps = Vec::with_capacity(total_steps);
    for step in 0..total_steps {
        let runnable: Vec<usize> = (0..workers).filter(|&w| remaining[w] > 0).collect();
        let chosen = sched.pick(&runnable, step);
        remaining[chosen] -= 1;
        decisions.push(chosen);
        cmd_txs[chosen].send(Cmd::Step).expect("worker alive");
        let effect = reply_rxs[chosen].recv().expect("worker replied");
        steps.push(RingStepRecord {
            thread: chosen,
            effect,
        });
    }
    for tx in &cmd_txs {
        tx.send(Cmd::Stop).expect("worker alive");
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    // Final drain: whatever the consumer's slack didn't reach.
    let mut leftover = Vec::new();
    ring.drain_into(&mut leftover);
    let drained: Vec<u64> = leftover
        .iter()
        .map(|r| r.deadline_ns.expect("tagged"))
        .collect();

    let violation = validate(cfg, capacity, &steps, &drained);
    RingExploration {
        decisions,
        steps,
        violation,
    }
}

/// Replays the linearization against a plain FIFO queue and checks
/// end-of-run conservation plus per-producer FIFO.
fn validate(
    cfg: &RingExploreConfig,
    capacity: usize,
    steps: &[RingStepRecord],
    drained: &[u64],
) -> Option<String> {
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut pushed: Vec<u64> = Vec::new();
    let mut out: Vec<u64> = Vec::new();
    for (i, rec) in steps.iter().enumerate() {
        match rec.effect {
            RingStepEffect::Pushed(tag) => {
                if queue.len() >= capacity {
                    return Some(format!(
                        "step {i} (thread {t}): push of tag {tag} succeeded on a full ring \
                         (spec depth {d}, capacity {capacity})",
                        t = rec.thread,
                        d = queue.len(),
                    ));
                }
                queue.push_back(tag);
                pushed.push(tag);
            }
            RingStepEffect::Full(tag) => {
                if queue.len() < capacity {
                    return Some(format!(
                        "step {i} (thread {t}): push of tag {tag} rejected full with only \
                         {d} of {capacity} slots used (lost capacity)",
                        t = rec.thread,
                        d = queue.len(),
                    ));
                }
            }
            RingStepEffect::Popped(Some(tag)) => match queue.pop_front() {
                Some(front) if front == tag => out.push(tag),
                Some(front) => {
                    return Some(format!(
                        "step {i}: pop returned tag {tag} but the FIFO front was {front} \
                         (reordered)"
                    ));
                }
                None => {
                    return Some(format!(
                        "step {i}: pop returned tag {tag} from an empty ring (duplicated \
                         or fabricated)"
                    ));
                }
            },
            RingStepEffect::Popped(None) => {
                if let Some(&front) = queue.front() {
                    return Some(format!(
                        "step {i}: pop missed while tag {front} was enqueued (lost request)"
                    ));
                }
            }
        }
    }

    // Conservation: popped ++ drained must equal pushed, in FIFO order.
    for (j, &tag) in drained.iter().enumerate() {
        match queue.pop_front() {
            Some(front) if front == tag => out.push(tag),
            Some(front) => {
                return Some(format!(
                    "final drain slot {j}: got tag {tag}, FIFO front was {front}"
                ));
            }
            None => {
                return Some(format!(
                    "final drain slot {j}: got tag {tag} beyond everything pushed"
                ));
            }
        }
    }
    if let Some(&front) = queue.front() {
        return Some(format!("tag {front} was pushed but never came out (lost)"));
    }
    if out.len() != pushed.len() {
        return Some(format!(
            "conservation violated: {} pushed, {} came out",
            pushed.len(),
            out.len()
        ));
    }

    // FIFO per producer: each producer's tags come out in index order.
    for p in 0..cfg.producers as u64 {
        let mut last: Option<u64> = None;
        for &tag in out.iter().filter(|&&t| t / TAG_STRIDE == p) {
            if let Some(prev) = last {
                if tag <= prev {
                    return Some(format!(
                        "producer {p}: tag {tag} came out after {prev} (per-producer \
                         FIFO violated)"
                    ));
                }
            }
            last = Some(tag);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_policies_pass_on_the_real_ring() {
        let cfg = RingExploreConfig::default();
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::Random,
            SchedulePolicy::Pct { depth: 3 },
        ] {
            for seed in [1u64, 42, 1337] {
                let r = explore_ring(&cfg, policy, seed);
                assert!(
                    r.violation.is_none(),
                    "policy {policy} seed {seed}: {:?}\ndecisions: {:?}",
                    r.violation,
                    r.decisions
                );
            }
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = RingExploreConfig::default();
        let a = explore_ring(&cfg, SchedulePolicy::Random, 7);
        let b = explore_ring(&cfg, SchedulePolicy::Random, 7);
        assert_eq!(a.decisions, b.decisions, "ring exploration must replay");
    }

    #[test]
    fn tight_ring_actually_explores_full_rejections() {
        // Capacity 2 against 3×16 pushes: if no push ever bounced, the
        // full-ring oracle arm is vacuous.
        let cfg = RingExploreConfig {
            capacity: 2,
            ..RingExploreConfig::default()
        };
        let r = explore_ring(&cfg, SchedulePolicy::RoundRobin, 42);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(
            r.steps
                .iter()
                .any(|s| matches!(s.effect, RingStepEffect::Full(_))),
            "no full-ring rejection explored"
        );
        assert!(
            r.steps
                .iter()
                .any(|s| matches!(s.effect, RingStepEffect::Popped(None))),
            "no empty-ring miss explored"
        );
    }

    proptest! {
        /// Property: under any seeded schedule, producer count, script
        /// length and (tiny) capacity, the ring loses nothing,
        /// duplicates nothing, and preserves FIFO per producer.
        #[test]
        fn ring_conserves_under_random_schedules(
            seed in any::<u64>(),
            producers in 1usize..4,
            pushes in 1usize..24,
            capacity in 1usize..16,
            pop_slack in 0usize..8,
            depth in 1usize..4,
        ) {
            let cfg = RingExploreConfig { producers, pushes_per_producer: pushes, capacity, pop_slack };
            for policy in [SchedulePolicy::Random, SchedulePolicy::Pct { depth }] {
                let r = explore_ring(&cfg, policy, seed);
                prop_assert!(
                    r.violation.is_none(),
                    "policy {} seed {}: {:?}\ndecisions: {:?}",
                    policy, seed, r.violation, r.decisions
                );
            }
        }
    }
}
