//! Physical CPU topology of the simulated host.

use serde::{Deserialize, Serialize};

/// Identifier of a physical CPU (hardware thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CpuId(u32);

impl CpuId {
    /// Creates a CPU id.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

/// Host CPU topology: sockets × cores (hyperthreading optionally doubling
/// the logical count, as in the paper's §5 testbed which enables HT for
/// the macro experiments but disables it for §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuTopology {
    sockets: u32,
    cores_per_socket: u32,
    smt: bool,
}

impl CpuTopology {
    /// The paper's CloudLab r650 testbed: 2 × Intel Xeon Platinum 8360Y,
    /// 36 cores per socket.
    pub fn r650(smt: bool) -> Self {
        Self {
            sockets: 2,
            cores_per_socket: 36,
            smt,
        }
    }

    /// An arbitrary topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sockets: u32, cores_per_socket: u32, smt: bool) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0, "degenerate topology");
        Self {
            sockets,
            cores_per_socket,
            smt,
        }
    }

    /// Number of sockets.
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Physical cores per socket.
    pub fn cores_per_socket(&self) -> u32 {
        self.cores_per_socket
    }

    /// Whether SMT (hyperthreading) is enabled.
    pub fn smt(&self) -> bool {
        self.smt
    }

    /// Total logical CPUs (run-queue count).
    pub fn logical_cpus(&self) -> u32 {
        self.sockets * self.cores_per_socket * if self.smt { 2 } else { 1 }
    }

    /// Socket of a given logical CPU.
    pub fn socket_of(&self, cpu: CpuId) -> u32 {
        (cpu.0 / self.cores_per_socket) % self.sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r650_dimensions() {
        let t = CpuTopology::r650(false);
        assert_eq!(t.logical_cpus(), 72);
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.cores_per_socket(), 36);
        assert!(!t.smt());
        let t2 = CpuTopology::r650(true);
        assert_eq!(t2.logical_cpus(), 144);
        assert!(t2.smt());
    }

    #[test]
    fn socket_mapping() {
        let t = CpuTopology::r650(false);
        assert_eq!(t.socket_of(CpuId::new(0)), 0);
        assert_eq!(t.socket_of(CpuId::new(35)), 0);
        assert_eq!(t.socket_of(CpuId::new(36)), 1);
        assert_eq!(CpuId::new(5).as_u32(), 5);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_topology_panics() {
        CpuTopology::new(0, 4, false);
    }
}
