//! Per-CPU run queues.
//!
//! Each physical CPU owns a run queue: a credit-sorted list of runnable
//! vCPUs (least remaining credit first, credit2 semantics) plus the
//! lock-protected load variable consumed by the DVFS governor. HORSE adds
//! a second *kind* of queue — the reserved `ull_runqueue` (paper §4.1.3) —
//! distinguished by a 1 µs maximum time slice and by being the splice
//! target of 𝒫²𝒮ℳ merges.

use crate::load::RqLoad;
use crate::topology::CpuId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default time slice of general-purpose queues (10 ms, credit2's default
/// rate-limit granularity).
pub const GENERAL_TIMESLICE_NS: u64 = 10_000_000;

/// Time slice of reserved uLL queues: 1 µs — "each task on the
/// ull_runqueue has a maximum timeslice of 1µs" (paper §4.1.3).
pub const ULL_TIMESLICE_NS: u64 = 1_000;

/// Identifier of a run queue within a [`crate::HostScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RqId(pub(crate) usize);

impl RqId {
    /// Raw index.
    pub const fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Display for RqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rq{}", self.0)
    }
}

/// The role of a run queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RqKind {
    /// Ordinary per-CPU queue for general workloads.
    General,
    /// Reserved queue for ultra-low-latency sandboxes (paper §4.1.3):
    /// 1 µs time slice, 𝒫²𝒮ℳ splice target, isolated from long-running
    /// functions.
    Ull,
}

/// One run queue: the credit-sorted vCPU list plus scheduling metadata.
///
/// The vCPU list itself lives in the scheduler's shared arena; this struct
/// holds the list *handle*, the load variable, and the uLL bookkeeping
/// (how many paused sandboxes are assigned here, used for the paper's
/// pause-time load balancing across multiple ull_runqueues).
#[derive(Debug)]
pub struct RunQueue {
    id: RqId,
    kind: RqKind,
    cpu: CpuId,
    pub(crate) list: horse_core::SortedList,
    load: RqLoad,
    timeslice_ns: u64,
    paused_assigned: usize,
    failed: bool,
}

impl RunQueue {
    pub(crate) fn new(id: RqId, kind: RqKind, cpu: CpuId) -> Self {
        let timeslice_ns = match kind {
            RqKind::General => GENERAL_TIMESLICE_NS,
            RqKind::Ull => ULL_TIMESLICE_NS,
        };
        Self {
            id,
            kind,
            cpu,
            list: horse_core::SortedList::new(),
            load: RqLoad::new(),
            timeslice_ns,
            paused_assigned: 0,
            failed: false,
        }
    }

    /// Queue identifier.
    pub fn id(&self) -> RqId {
        self.id
    }

    /// Queue kind.
    pub fn kind(&self) -> RqKind {
        self.kind
    }

    /// Physical CPU this queue schedules.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Number of runnable vCPUs queued.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The lock-protected load variable.
    pub fn load(&self) -> &RqLoad {
        &self.load
    }

    /// Maximum time slice for tasks on this queue, in nanoseconds.
    pub fn timeslice_ns(&self) -> u64 {
        self.timeslice_ns
    }

    /// Number of paused uLL sandboxes currently assigned to this queue
    /// (only meaningful for [`RqKind::Ull`]).
    pub fn paused_assigned(&self) -> usize {
        self.paused_assigned
    }

    /// Whether the queue's CPU has been marked failed (chaos plane);
    /// failed queues are skipped by uLL assignment and rebalancing
    /// targets.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    pub(crate) fn set_failed(&mut self, failed: bool) {
        self.failed = failed;
    }

    pub(crate) fn inc_paused(&mut self) {
        self.paused_assigned += 1;
    }

    pub(crate) fn dec_paused(&mut self) {
        debug_assert!(self.paused_assigned > 0, "paused count underflow");
        self.paused_assigned = self.paused_assigned.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_set_timeslices() {
        let g = RunQueue::new(RqId(0), RqKind::General, CpuId::new(0));
        let u = RunQueue::new(RqId(1), RqKind::Ull, CpuId::new(1));
        assert_eq!(g.timeslice_ns(), 10_000_000);
        assert_eq!(u.timeslice_ns(), 1_000, "paper: 1µs uLL timeslice");
        assert_eq!(g.kind(), RqKind::General);
        assert_eq!(u.kind(), RqKind::Ull);
        assert!(g.is_empty());
        assert_eq!(u.cpu().as_u32(), 1);
        assert_eq!(u.id().to_string(), "rq1");
        assert_eq!(u.id().as_usize(), 1);
    }

    #[test]
    fn paused_accounting() {
        let mut q = RunQueue::new(RqId(0), RqKind::Ull, CpuId::new(0));
        assert_eq!(q.paused_assigned(), 0);
        q.inc_paused();
        q.inc_paused();
        q.dec_paused();
        assert_eq!(q.paused_assigned(), 1);
    }
}
