//! The host scheduler: arena, run queues, placement and uLL reservation.

use crate::flavor::SchedFlavor;
use crate::governor::{Governor, GovernorPolicy, PState};
use crate::load::LoadTracker;
use crate::runqueue::{RqId, RqKind, RunQueue};
use crate::topology::{CpuId, CpuTopology};
use crate::vcpu::Vcpu;
use horse_core::{
    Arena, ArenaStats, MergePlan, MergeReport, NodeRef, PlanBuffers, SortedList, SpliceMode,
    StalePlanError,
};
use horse_telemetry::{Counter, EventKind, Gauge, Recorder};

/// Configuration of a [`HostScheduler`].
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Physical topology (one general run queue per logical CPU, minus the
    /// reserved uLL queues).
    pub topology: CpuTopology,
    /// Number of CPUs whose queues are reserved as `ull_runqueue`s
    /// (paper §4.1.3: one by default, more under high uLL trigger
    /// frequency).
    pub ull_queues: usize,
    /// DVFS policy.
    pub governor_policy: GovernorPolicy,
    /// Scheduling policy, determining the run queues' sort-key semantics
    /// (credit2 under Xen, CFS under Linux-KVM — paper §3.1).
    pub flavor: SchedFlavor,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            topology: CpuTopology::r650(false),
            ull_queues: 1,
            governor_policy: GovernorPolicy::Performance,
            flavor: SchedFlavor::default(),
        }
    }
}

/// The host scheduler substrate.
///
/// Owns the node arena shared by every run queue (which is what makes the
/// O(1) 𝒫²𝒮ℳ splice between a paused sandbox's `merge_vcpus` list and an
/// `ull_runqueue` possible), the per-CPU queues, the PELT load tracker and
/// the DVFS governor.
///
/// # Example
///
/// ```
/// use horse_sched::{HostScheduler, SchedConfig, SandboxId, Vcpu, VcpuId};
///
/// let mut sched = HostScheduler::new(SchedConfig::default());
/// let rq = sched.least_loaded_general();
/// let v = Vcpu::new(VcpuId::new(0), SandboxId::new(0));
/// let node = sched.enqueue_vcpu(rq, 1000, v);
/// assert_eq!(sched.queue(rq).len(), 1);
/// sched.dequeue_vcpu(rq, node);
/// assert_eq!(sched.queue(rq).len(), 0);
/// ```
#[derive(Debug)]
pub struct HostScheduler {
    arena: Arena<Vcpu>,
    queues: Vec<RunQueue>,
    general: Vec<RqId>,
    ull: Vec<RqId>,
    tracker: LoadTracker,
    governor: Governor,
    flavor: SchedFlavor,
    topology: CpuTopology,
    /// Telemetry sink; disabled (and inert) by default.
    recorder: Recorder,
}

impl HostScheduler {
    /// Builds the scheduler: one run queue per logical CPU, the last
    /// `ull_queues` of which are reserved for uLL sandboxes.
    ///
    /// # Panics
    ///
    /// Panics if `ull_queues >= logical CPUs` (at least one general queue
    /// must remain).
    pub fn new(config: SchedConfig) -> Self {
        let cpus = config.topology.logical_cpus() as usize;
        assert!(
            config.ull_queues < cpus,
            "cannot reserve {} of {cpus} queues",
            config.ull_queues
        );
        let mut queues = Vec::with_capacity(cpus);
        let mut general = Vec::new();
        let mut ull = Vec::new();
        for i in 0..cpus {
            let id = RqId(i);
            let kind = if i >= cpus - config.ull_queues {
                RqKind::Ull
            } else {
                RqKind::General
            };
            queues.push(RunQueue::new(id, kind, CpuId::new(i as u32)));
            match kind {
                RqKind::General => general.push(id),
                RqKind::Ull => ull.push(id),
            }
        }
        Self {
            arena: Arena::with_capacity(cpus * 4),
            queues,
            general,
            ull,
            tracker: LoadTracker::pelt_default(),
            governor: Governor::xeon_8360y(config.governor_policy),
            flavor: config.flavor,
            topology: config.topology,
            recorder: Recorder::disabled(),
        }
    }

    /// Installs a telemetry recorder. Recorders are cheap clones sharing
    /// one sink, so the VMM and platform typically pass the same one down.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The active telemetry recorder (disabled unless one was installed).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The shared node arena (read access, e.g. for 𝒫²𝒮ℳ plan updates).
    pub fn arena(&self) -> &Arena<Vcpu> {
        &self.arena
    }

    /// The shared node arena (exclusive access).
    pub fn arena_mut(&mut self) -> &mut Arena<Vcpu> {
        &mut self.arena
    }

    /// PELT load tracker in use.
    pub fn tracker(&self) -> LoadTracker {
        self.tracker
    }

    /// DVFS governor in use.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// Scheduling policy in effect (sort-key semantics).
    pub fn flavor(&self) -> SchedFlavor {
        self.flavor
    }

    /// Number of run queues (== logical CPUs).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Accessor for one queue.
    ///
    /// # Panics
    ///
    /// Panics if `rq` does not belong to this scheduler.
    pub fn queue(&self, rq: RqId) -> &RunQueue {
        &self.queues[rq.0]
    }

    /// Ids of the general-purpose queues.
    pub fn general_queues(&self) -> &[RqId] {
        &self.general
    }

    /// Ids of the reserved uLL queues.
    pub fn ull_queues(&self) -> &[RqId] {
        &self.ull
    }

    /// The general queue with the lowest current load (wake-up placement).
    pub fn least_loaded_general(&self) -> RqId {
        *self
            .general
            .iter()
            .min_by(|a, b| {
                let la = self.queues[a.0].load().get();
                let lb = self.queues[b.0].load().get();
                la.partial_cmp(&lb).expect("loads are finite")
            })
            .expect("at least one general queue")
    }

    /// General queues on a given socket (NUMA-aware placement: keeping a
    /// sandbox's vCPUs on one socket avoids the cross-socket traffic the
    /// paper's related work highlights for NUMA VMs).
    pub fn general_queues_on_socket(&self, socket: u32) -> impl Iterator<Item = RqId> + '_ {
        let topology = self.topology;
        self.general
            .iter()
            .copied()
            .filter(move |rq| topology.socket_of(CpuId::new(rq.0 as u32)) == socket)
    }

    /// The least-loaded general queue on one socket, or `None` if the
    /// socket has no general queues.
    pub fn least_loaded_general_on_socket(&self, socket: u32) -> Option<RqId> {
        self.general_queues_on_socket(socket).min_by(|a, b| {
            let la = self.queues[a.0].load().get();
            let lb = self.queues[b.0].load().get();
            la.partial_cmp(&lb).expect("loads are finite")
        })
    }

    /// Socket of a queue's CPU.
    pub fn socket_of_queue(&self, rq: RqId) -> u32 {
        self.topology.socket_of(self.queues[rq.0].cpu())
    }

    /// Chooses the ull_runqueue for a sandbox being paused, balancing by
    /// the number of paused sandboxes already assigned to each queue
    /// (paper §4.1.3), and records the assignment.
    ///
    /// # Panics
    ///
    /// Panics if every uLL queue has been marked failed; callers that can
    /// degrade should use [`HostScheduler::try_assign_ull_queue`].
    pub fn assign_ull_queue(&mut self) -> RqId {
        self.try_assign_ull_queue()
            .expect("no healthy uLL queue available")
    }

    /// Like [`HostScheduler::assign_ull_queue`], but skips queues marked
    /// failed and returns `None` when no healthy uLL queue remains (the
    /// caller then degrades to a vanilla, plan-less pause).
    pub fn try_assign_ull_queue(&mut self) -> Option<RqId> {
        let id = *self
            .ull
            .iter()
            .filter(|id| !self.queues[id.0].is_failed())
            .min_by_key(|id| self.queues[id.0].paused_assigned())?;
        self.queues[id.0].inc_paused();
        Some(id)
    }

    /// Releases a pause-time assignment made by
    /// [`HostScheduler::assign_ull_queue`] (the sandbox resumed or was
    /// destroyed).
    pub fn release_ull_queue(&mut self, rq: RqId) {
        debug_assert_eq!(self.queues[rq.0].kind(), RqKind::Ull);
        self.queues[rq.0].dec_paused();
    }

    /// Sorted-inserts a vCPU into a run queue (the vanilla per-vCPU
    /// placement, paper step ④). Does **not** touch the load variable;
    /// pair with [`HostScheduler::load_update_per_vcpu`].
    pub fn enqueue_vcpu(&mut self, rq: RqId, credit: i64, vcpu: Vcpu) -> NodeRef {
        let q = &mut self.queues[rq.0];
        q.list.insert_sorted(&mut self.arena, credit, vcpu)
    }

    /// Removes a vCPU node from a queue (pause path). Returns its credit
    /// and payload.
    ///
    /// # Panics
    ///
    /// Panics if the node is not on that queue.
    pub fn dequeue_vcpu(&mut self, rq: RqId, node: NodeRef) -> (i64, Vcpu) {
        self.queues[rq.0]
            .list
            .remove(&mut self.arena, node)
            .expect("vCPU node not on the given run queue")
    }

    /// Pops the front (least-credit) vCPU for dispatch.
    pub fn pick_next(&mut self, rq: RqId) -> Option<(i64, Vcpu)> {
        self.queues[rq.0].list.pop_front(&mut self.arena)
    }

    /// Vanilla load update for an `n`-vCPU placement: `n` lock-protected
    /// affine updates (paper step ⑤).
    pub fn load_update_per_vcpu(&self, rq: RqId, n: u32) -> f64 {
        self.recorder
            .instant(EventKind::LoadUpdate, 0, u64::from(n));
        self.recorder
            .count(Counter::PerVcpuLoadUpdates, u64::from(n));
        self.queues[rq.0]
            .load()
            .apply_per_vcpu(self.tracker.update(), n)
    }

    /// HORSE load update: one lock acquisition applying the coalesced
    /// update precomputed at pause time (paper §4.2).
    pub fn load_update_coalesced(&self, rq: RqId, coalesced: horse_core::CoalescedUpdate) -> f64 {
        self.recorder
            .instant(EventKind::LoadCoalesce, 0, u64::from(coalesced.n()));
        self.recorder.count(Counter::CoalescedLoadUpdates, 1);
        self.queues[rq.0].load().apply_coalesced(coalesced)
    }

    /// Builds a 𝒫²𝒮ℳ plan for merging `merge_vcpus` into the given uLL
    /// queue (pause-time precomputation, paper §4.1.3).
    ///
    /// # Panics
    ///
    /// Panics if `rq` is not a reserved uLL queue — plans against general
    /// queues would have to be maintained for every queue, which is the
    /// cost explosion §4.1.3 explicitly avoids.
    pub fn ull_precompute(&self, rq: RqId, merge_vcpus: SortedList) -> MergePlan {
        self.ull_precompute_in(rq, merge_vcpus, PlanBuffers::default())
    }

    /// [`Self::ull_precompute`] reusing recycled plan buffers (from
    /// [`Self::ull_merge_recycling`] or
    /// `MergePlan::into_list_recycling`), so steady-state pause loops
    /// build plans without heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `rq` is not a reserved uLL queue (same contract as
    /// [`Self::ull_precompute`]).
    pub fn ull_precompute_in(
        &self,
        rq: RqId,
        merge_vcpus: SortedList,
        buffers: PlanBuffers,
    ) -> MergePlan {
        assert_eq!(
            self.queues[rq.0].kind(),
            RqKind::Ull,
            "P2SM plans are only maintained for reserved uLL queues"
        );
        MergePlan::precompute_in(&self.arena, &self.queues[rq.0].list, merge_vcpus, buffers)
    }

    /// Executes a 𝒫²𝒮ℳ merge into the given uLL queue (resume-time
    /// splice, paper Algorithm 1).
    ///
    /// # Errors
    ///
    /// Propagates [`StalePlanError`] if the plan no longer matches the
    /// queue.
    pub fn ull_merge(
        &mut self,
        rq: RqId,
        plan: MergePlan,
        mode: SpliceMode,
    ) -> Result<MergeReport, StalePlanError> {
        self.ull_merge_recycling(rq, plan, mode)
            .map(|(report, _)| report)
    }

    /// [`Self::ull_merge`] that hands back the plan's buffers for reuse
    /// in a future [`Self::ull_precompute_in`]. Telemetry and merge
    /// semantics are identical to [`Self::ull_merge`].
    ///
    /// # Errors
    ///
    /// Propagates [`StalePlanError`] if the plan no longer matches the
    /// queue (the stale plan's buffers are dropped — the cold path).
    pub fn ull_merge_recycling(
        &mut self,
        rq: RqId,
        plan: MergePlan,
        mode: SpliceMode,
    ) -> Result<(MergeReport, PlanBuffers), StalePlanError> {
        let q = &mut self.queues[rq.0];
        let (report, buffers) = plan.merge_recycling(&self.arena, &mut q.list, mode)?;
        self.recorder
            .instant(EventKind::RunqueueMerge, 0, report.splices as u64);
        self.recorder.count(Counter::Splices, report.splices as u64);
        Ok((report, buffers))
    }

    /// Completes a staged 𝒫²𝒮ℳ merge (see `MergePlan::stage`) whose node
    /// splices were already executed by a caller-owned worker pool: runs
    /// `MergePlan::finish_staged` against the queue and emits exactly the
    /// telemetry of [`Self::ull_merge_recycling`] — same
    /// [`EventKind::RunqueueMerge`] instant, same `Counter::Splices`
    /// increment — so the two paths are indistinguishable on the virtual
    /// axis.
    ///
    /// The caller must have obtained the staged view from this scheduler's
    /// queue (`MergePlan::stage(self.queue_list(rq))`) and joined every
    /// worker before calling.
    pub fn ull_finish_staged(&mut self, rq: RqId, plan: MergePlan) -> (MergeReport, PlanBuffers) {
        let q = &mut self.queues[rq.0];
        let (report, buffers) = plan.finish_staged(&self.arena, &mut q.list);
        self.recorder
            .instant(EventKind::RunqueueMerge, 0, report.splices as u64);
        self.recorder.count(Counter::Splices, report.splices as u64);
        (report, buffers)
    }

    /// Vanilla sorted merge of a standalone list into a queue — the
    /// degradation path taken when a 𝒫²𝒮ℳ plan fails verification at
    /// resume time (the list is then the plan's reconstructed *A*, see
    /// `MergePlan::into_list`). O(|A|+|B|) `merge_walk`, semantics
    /// identical to a successful splice. Returns the number of vCPUs
    /// merged.
    pub fn fallback_merge(&mut self, rq: RqId, list: SortedList) -> usize {
        let merged = list.len();
        let q = &mut self.queues[rq.0];
        q.list.merge_walk(&self.arena, list);
        merged
    }

    /// Marks a queue's CPU as failed (chaos plane: whole-host or per-CPU
    /// failure). Failed uLL queues are skipped by
    /// [`HostScheduler::try_assign_ull_queue`]; the caller is responsible
    /// for migrating the queue's current and paused occupants.
    pub fn fail_queue(&mut self, rq: RqId) {
        self.queues[rq.0].set_failed(true);
    }

    /// Clears a failure mark (the CPU came back).
    pub fn revive_queue(&mut self, rq: RqId) {
        self.queues[rq.0].set_failed(false);
    }

    /// Whether a queue is currently marked failed.
    pub fn queue_is_failed(&self, rq: RqId) -> bool {
        self.queues[rq.0].is_failed()
    }

    /// Ids of the uLL queues not marked failed.
    pub fn healthy_ull_queues(&self) -> impl Iterator<Item = RqId> + '_ {
        self.ull
            .iter()
            .copied()
            .filter(|rq| !self.queues[rq.0].is_failed())
    }

    /// Drains every vCPU off a queue (failure evacuation), returning the
    /// popped `(credit, vcpu)` pairs front-to-back.
    pub fn drain_queue(&mut self, rq: RqId) -> Vec<(i64, Vcpu)> {
        let mut out = Vec::with_capacity(self.queues[rq.0].len());
        while let Some(entry) = self.queues[rq.0].list.pop_front(&mut self.arena) {
            out.push(entry);
        }
        out
    }

    /// Read access to a queue's vCPU list (plan maintenance helpers).
    pub fn queue_list(&self, rq: RqId) -> &SortedList {
        &self.queues[rq.0].list
    }

    /// Decays every queue's load by one PELT period (periodic tick).
    pub fn tick_decay(&self) {
        for q in &self.queues {
            q.load().decay(crate::load::PELT_DECAY);
        }
        self.recorder
            .gauge(Gauge::QueuedVcpus, self.total_queued() as u64);
    }

    /// Target frequency for a queue's CPU under the active governor.
    pub fn target_pstate(&self, rq: RqId) -> PState {
        let pstate = self.governor.target_pstate(self.queues[rq.0].load().get());
        let mhz = pstate.mhz().round() as u64;
        self.recorder.instant(EventKind::GovernorDecision, 0, mhz);
        self.recorder.count(Counter::GovernorDecisions, 1);
        self.recorder.gauge(Gauge::LastPstateMhz, mhz);
        pstate
    }

    /// Drains and returns the arena's operation counters.
    pub fn take_arena_stats(&self) -> ArenaStats {
        self.arena.take_stats()
    }

    /// One round of load balancing across the general queues, consuming
    /// the same lock-protected load variable the resume path updates —
    /// the paper's §1: the variable "is used for DVFS **and thread load
    /// balancing on cores**". Migrates one vCPU per call from the most-
    /// to the least-loaded general queue when their load gap exceeds one
    /// vCPU's contribution. Returns whether a migration happened.
    pub fn rebalance_general(&mut self) -> bool {
        let (mut max_rq, mut max_load) = (None, f64::MIN);
        let (mut min_rq, mut min_load) = (None, f64::MAX);
        for &rq in &self.general {
            let load = self.queues[rq.0].load().get();
            if load > max_load {
                max_load = load;
                max_rq = Some(rq);
            }
            if load < min_load {
                min_load = load;
                min_rq = Some(rq);
            }
        }
        let (Some(src), Some(dst)) = (max_rq, min_rq) else {
            return false;
        };
        if src == dst
            || self.queues[src.0].len() < 2
            || max_load - min_load < crate::load::VCPU_LOAD_CONTRIB
        {
            return false;
        }
        // Migrate the front entity and transfer its load contribution.
        let Some((key, vcpu)) = self.pick_next(src) else {
            return false;
        };
        self.enqueue_vcpu(dst, key, vcpu);
        self.queues[src.0].load().decay(
            (max_load - crate::load::VCPU_LOAD_CONTRIB).max(0.0) / max_load.max(f64::EPSILON),
        );
        self.load_update_per_vcpu(dst, 1);
        self.recorder.instant(EventKind::Rebalance, 0, 1);
        self.recorder.count(Counter::RebalanceMigrations, 1);
        true
    }

    /// One-line-per-queue human-readable summary (operator debugging:
    /// lengths, loads, paused assignments, chosen P-states).
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scheduler: {} queues ({} general, {} uLL), flavor {}, {} queued",
            self.num_queues(),
            self.general.len(),
            self.ull.len(),
            self.flavor,
            self.total_queued()
        );
        for q in &self.queues {
            let _ = writeln!(
                out,
                "  {} [{}] len={} load={:.0} pstate={}MHz paused={}{}",
                q.id(),
                match q.kind() {
                    RqKind::General => "gen",
                    RqKind::Ull => "uLL",
                },
                q.len(),
                q.load().get(),
                self.target_pstate(q.id()).mhz(),
                q.paused_assigned(),
                if q.is_failed() { " FAILED" } else { "" }
            );
        }
        out
    }

    /// Total vCPUs currently queued across all run queues.
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcpu::{SandboxId, VcpuId};

    fn sched_with(ull: usize) -> HostScheduler {
        HostScheduler::new(SchedConfig {
            topology: CpuTopology::new(1, 8, false),
            ull_queues: ull,
            governor_policy: GovernorPolicy::Schedutil,
            flavor: SchedFlavor::default(),
        })
    }

    fn vcpu(i: u64) -> Vcpu {
        Vcpu::new(VcpuId::new(i), SandboxId::new(0))
    }

    #[test]
    fn queue_partitioning() {
        let s = sched_with(2);
        assert_eq!(s.num_queues(), 8);
        assert_eq!(s.general_queues().len(), 6);
        assert_eq!(s.ull_queues().len(), 2);
        for id in s.ull_queues() {
            assert_eq!(s.queue(*id).kind(), RqKind::Ull);
        }
    }

    #[test]
    #[should_panic(expected = "cannot reserve")]
    fn all_queues_ull_is_rejected() {
        sched_with(8);
    }

    #[test]
    fn enqueue_orders_by_credit() {
        let mut s = sched_with(1);
        let rq = s.general_queues()[0];
        s.enqueue_vcpu(rq, 300, vcpu(0));
        s.enqueue_vcpu(rq, 100, vcpu(1));
        s.enqueue_vcpu(rq, 200, vcpu(2));
        let (c1, v1) = s.pick_next(rq).unwrap();
        assert_eq!((c1, v1.id), (100, VcpuId::new(1)));
        let (c2, _) = s.pick_next(rq).unwrap();
        assert_eq!(c2, 200);
        assert_eq!(s.total_queued(), 1);
    }

    #[test]
    fn least_loaded_prefers_idle_queue() {
        let mut s = sched_with(1);
        let rq0 = s.general_queues()[0];
        s.enqueue_vcpu(rq0, 0, vcpu(0));
        s.load_update_per_vcpu(rq0, 1);
        let chosen = s.least_loaded_general();
        assert_ne!(chosen, rq0, "loaded queue must not be chosen");
    }

    #[test]
    fn ull_assignment_balances_by_paused_count() {
        let mut s = sched_with(2);
        let a = s.assign_ull_queue();
        let b = s.assign_ull_queue();
        assert_ne!(a, b, "second sandbox must go to the other uLL queue");
        let c = s.assign_ull_queue();
        s.release_ull_queue(a);
        s.release_ull_queue(b);
        s.release_ull_queue(c);
        assert_eq!(s.queue(a).paused_assigned(), 0);
    }

    #[test]
    fn ull_merge_via_plan() {
        let mut s = sched_with(1);
        let rq = s.ull_queues()[0];
        s.enqueue_vcpu(rq, 100, vcpu(0));
        s.enqueue_vcpu(rq, 300, vcpu(1));
        let mut merge_vcpus = SortedList::new();
        merge_vcpus.insert_sorted(s.arena_mut(), 200, vcpu(2));
        merge_vcpus.insert_sorted(s.arena_mut(), 400, vcpu(3));
        let plan = s.ull_precompute(rq, merge_vcpus);
        let report = s.ull_merge(rq, plan, SpliceMode::Parallel).unwrap();
        assert_eq!(report.merged, 2);
        assert_eq!(s.queue_list(rq).keys(s.arena()), vec![100, 200, 300, 400]);
    }

    #[test]
    #[should_panic(expected = "only maintained for reserved uLL queues")]
    fn precompute_rejects_general_queue() {
        let s = sched_with(1);
        s.ull_precompute(s.general_queues()[0], SortedList::new());
    }

    #[test]
    fn rebalance_migrates_from_hot_to_cold_queue() {
        let mut s = sched_with(1);
        let hot = s.general_queues()[0];
        // Five vCPUs all landed on one queue, whose load reflects them.
        for i in 0..5 {
            s.enqueue_vcpu(hot, i, vcpu(i as u64));
        }
        s.load_update_per_vcpu(hot, 5);
        assert!(s.rebalance_general(), "gap exceeds one contribution");
        assert_eq!(s.queue(hot).len(), 4);
        let moved: usize = s
            .general_queues()
            .iter()
            .filter(|rq| **rq != hot)
            .map(|rq| s.queue(*rq).len())
            .sum();
        assert_eq!(moved, 1);
        // Queues remain sorted after the migration.
        for rq in s.general_queues() {
            s.queue_list(*rq).check_invariants(s.arena()).unwrap();
        }
    }

    #[test]
    fn rebalance_is_a_noop_when_balanced() {
        let mut s = sched_with(1);
        assert!(!s.rebalance_general(), "idle host has nothing to move");
        let rq = s.general_queues()[0];
        s.enqueue_vcpu(rq, 1, vcpu(0));
        s.load_update_per_vcpu(rq, 1);
        // One vCPU: nothing migratable without emptying the queue.
        assert!(!s.rebalance_general());
    }

    #[test]
    fn failed_queues_are_skipped_by_assignment() {
        let mut s = sched_with(2);
        let a = s.ull_queues()[0];
        let b = s.ull_queues()[1];
        s.fail_queue(a);
        assert!(s.queue_is_failed(a));
        assert_eq!(s.healthy_ull_queues().collect::<Vec<_>>(), vec![b]);
        for _ in 0..3 {
            assert_eq!(s.try_assign_ull_queue(), Some(b));
        }
        s.fail_queue(b);
        assert_eq!(s.try_assign_ull_queue(), None);
        s.revive_queue(a);
        assert_eq!(s.try_assign_ull_queue(), Some(a));
        assert!(s.debug_snapshot().contains("FAILED"));
    }

    #[test]
    fn fallback_merge_equals_plan_merge() {
        let mut s = sched_with(1);
        let rq = s.ull_queues()[0];
        s.enqueue_vcpu(rq, 100, vcpu(0));
        s.enqueue_vcpu(rq, 300, vcpu(1));
        let mut merge_vcpus = SortedList::new();
        merge_vcpus.insert_sorted(s.arena_mut(), 200, vcpu(2));
        merge_vcpus.insert_sorted(s.arena_mut(), 400, vcpu(3));
        // Reconstruct A from a (corrupt-able) plan, then merge vanilla.
        let plan = s.ull_precompute(rq, merge_vcpus);
        let list = plan.into_list(s.arena());
        assert_eq!(s.fallback_merge(rq, list), 2);
        s.queue_list(rq).check_invariants(s.arena()).unwrap();
        assert_eq!(s.queue_list(rq).keys(s.arena()), vec![100, 200, 300, 400]);
    }

    #[test]
    fn drain_queue_empties_in_order() {
        let mut s = sched_with(1);
        let rq = s.ull_queues()[0];
        s.enqueue_vcpu(rq, 30, vcpu(0));
        s.enqueue_vcpu(rq, 10, vcpu(1));
        s.enqueue_vcpu(rq, 20, vcpu(2));
        let drained = s.drain_queue(rq);
        assert_eq!(
            drained.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert!(s.queue(rq).is_empty());
    }

    #[test]
    fn debug_snapshot_lists_every_queue() {
        let mut s = sched_with(1);
        let rq = s.general_queues()[0];
        s.enqueue_vcpu(rq, 5, vcpu(0));
        let snap = s.debug_snapshot();
        assert!(snap.contains("8 queues"));
        assert!(snap.contains("[uLL]"));
        assert!(snap.contains("len=1"));
        assert_eq!(snap.lines().count(), 9, "header + one line per queue");
    }

    #[test]
    fn numa_placement_helpers() {
        let s = HostScheduler::new(SchedConfig {
            topology: CpuTopology::new(2, 4, false),
            ull_queues: 1,
            governor_policy: GovernorPolicy::Schedutil,
            flavor: SchedFlavor::default(),
        });
        let socket0: Vec<_> = s.general_queues_on_socket(0).collect();
        let socket1: Vec<_> = s.general_queues_on_socket(1).collect();
        assert_eq!(socket0.len(), 4);
        // One socket-1 queue is reserved for uLL.
        assert_eq!(socket1.len(), 3);
        for rq in &socket0 {
            assert_eq!(s.socket_of_queue(*rq), 0);
        }
        let best = s.least_loaded_general_on_socket(1).unwrap();
        assert_eq!(s.socket_of_queue(best), 1);
        // A one-socket topology has no socket-1 queues.
        let s1 = HostScheduler::new(SchedConfig {
            topology: CpuTopology::new(1, 4, false),
            ull_queues: 1,
            governor_policy: GovernorPolicy::Schedutil,
            flavor: SchedFlavor::default(),
        });
        assert!(s1.least_loaded_general_on_socket(1).is_none());
    }

    #[test]
    fn recorder_sees_merge_and_load_events() {
        use horse_telemetry::{Counter, EventKind, Recorder};

        let mut s = sched_with(1);
        s.set_recorder(Recorder::enabled());
        assert!(s.recorder().is_enabled());
        let rq = s.ull_queues()[0];
        s.enqueue_vcpu(rq, 100, vcpu(0));
        let mut merge_vcpus = SortedList::new();
        merge_vcpus.insert_sorted(s.arena_mut(), 200, vcpu(1));
        merge_vcpus.insert_sorted(s.arena_mut(), 300, vcpu(2));
        let plan = s.ull_precompute(rq, merge_vcpus);
        let report = s.ull_merge(rq, plan, SpliceMode::Parallel).unwrap();
        s.load_update_coalesced(rq, s.tracker().coalesce(2));
        s.load_update_per_vcpu(rq, 3);
        let _ = s.target_pstate(rq);

        let rec = s.recorder().clone();
        assert_eq!(rec.counter_value(Counter::Splices), report.splices as u64);
        assert_eq!(rec.counter_value(Counter::CoalescedLoadUpdates), 1);
        assert_eq!(rec.counter_value(Counter::PerVcpuLoadUpdates), 3);
        assert_eq!(rec.counter_value(Counter::GovernorDecisions), 1);
        let snap = rec.drain();
        assert_eq!(snap.dropped, 0);
        let kinds: Vec<_> = snap.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::RunqueueMerge));
        assert!(kinds.contains(&EventKind::LoadCoalesce));
        assert!(kinds.contains(&EventKind::LoadUpdate));
        assert!(kinds.contains(&EventKind::GovernorDecision));
    }

    #[test]
    fn dispatch_events_inherit_the_installed_trace_context() {
        use horse_telemetry::{EventKind, Recorder, TraceContext};

        let mut s = sched_with(1);
        s.set_recorder(Recorder::enabled());
        let rq = s.ull_queues()[0];
        // The vmm installs the invocation context before dispatching the
        // merge/load work; the scheduler's own instants must inherit it
        // without any scheduler-side plumbing.
        let inv = s.recorder().mint_invocation();
        s.recorder()
            .set_context(TraceContext::root(inv).child(EventKind::ResumeSortedMerge));
        let mut merge_vcpus = SortedList::new();
        merge_vcpus.insert_sorted(s.arena_mut(), 200, vcpu(1));
        let plan = s.ull_precompute(rq, merge_vcpus);
        s.ull_merge(rq, plan, SpliceMode::Parallel).unwrap();
        s.recorder()
            .set_context(TraceContext::root(inv).child(EventKind::ResumeLoadUpdate));
        s.load_update_coalesced(rq, s.tracker().coalesce(1));
        s.recorder().clear_context();

        let snap = s.recorder().drain();
        let merge = snap
            .events
            .iter()
            .find(|e| e.kind == EventKind::RunqueueMerge)
            .unwrap();
        assert_eq!(merge.invocation, inv);
        assert_eq!(merge.parent, Some(EventKind::ResumeSortedMerge));
        let load = snap
            .events
            .iter()
            .find(|e| e.kind == EventKind::LoadCoalesce)
            .unwrap();
        assert_eq!(load.invocation, inv);
        assert_eq!(load.parent, Some(EventKind::ResumeLoadUpdate));
    }

    #[test]
    fn load_paths_agree_but_lock_counts_differ() {
        let s = sched_with(2);
        let rq_a = s.ull_queues()[0];
        let rq_b = s.ull_queues()[1];
        let v = s.load_update_per_vcpu(rq_a, 16);
        let h = s.load_update_coalesced(rq_b, s.tracker().coalesce(16));
        assert!((v - h).abs() < 1e-6);
        assert_eq!(s.queue(rq_a).load().lock_acquisitions(), 16);
        assert_eq!(s.queue(rq_b).load().lock_acquisitions(), 1);
        // Governor sees identical loads → identical frequency choice.
        assert_eq!(s.target_pstate(rq_a), s.target_pstate(rq_b));
        s.tick_decay();
        let _ = s.take_arena_stats();
    }
}
