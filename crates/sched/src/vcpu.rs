//! Virtual CPU and sandbox identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a virtual CPU, unique within a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VcpuId(u64);

impl VcpuId {
    /// Creates a vCPU id from a raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw numeric value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcpu{}", self.0)
    }
}

/// Identifier of a sandbox (microVM), unique within a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SandboxId(u64);

impl SandboxId {
    /// Creates a sandbox id from a raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw numeric value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SandboxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sbx{}", self.0)
    }
}

/// A vCPU as scheduled on a run queue: the arena payload of run-queue
/// nodes. The sort key of the node is the vCPU's *credit* (credit2
/// semantics: queues are sorted so the entity with the least remaining
/// credit runs first, paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vcpu {
    /// This vCPU's id.
    pub id: VcpuId,
    /// Owning sandbox.
    pub sandbox: SandboxId,
    /// Scheduling weight (credit refill proportionality; 256 = default,
    /// matching Xen credit2's default weight).
    pub weight: u32,
}

impl Vcpu {
    /// Creates a vCPU with the default weight.
    pub fn new(id: VcpuId, sandbox: SandboxId) -> Self {
        Self {
            id,
            sandbox,
            weight: 256,
        }
    }

    /// Creates a vCPU with an explicit weight.
    pub fn with_weight(id: VcpuId, sandbox: SandboxId, weight: u32) -> Self {
        Self {
            id,
            sandbox,
            weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_roundtrip() {
        let v = VcpuId::new(3);
        let s = SandboxId::new(7);
        assert_eq!(v.to_string(), "vcpu3");
        assert_eq!(s.to_string(), "sbx7");
        assert_eq!(v.as_u64(), 3);
        assert_eq!(s.as_u64(), 7);
    }

    #[test]
    fn vcpu_defaults() {
        let v = Vcpu::new(VcpuId::new(1), SandboxId::new(2));
        assert_eq!(v.weight, 256);
        let w = Vcpu::with_weight(VcpuId::new(1), SandboxId::new(2), 512);
        assert_eq!(w.weight, 512);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(VcpuId::new(1) < VcpuId::new(2));
        assert!(SandboxId::new(9) > SandboxId::new(3));
    }
}
