//! Virtual-time dispatch loop.
//!
//! Drives one run queue the way the hypervisor's scheduler core does:
//! pick the front entity, run it for at most one time slice, update its
//! sort key per the active [`crate::SchedFlavor`], and re-enqueue it until its
//! work is done. This is what makes the reserved uLL queues' **1 µs time
//! slice** (paper §4.1.3) observable: a Category-3 workload (≈0.7 µs)
//! finishes within its first slice, while anything longer round-robins
//! at microsecond granularity.

use crate::runqueue::RqId;
use crate::scheduler::HostScheduler;
use crate::vcpu::VcpuId;
use std::collections::HashMap;

/// One completed entity: who finished and at which virtual offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The vCPU whose work completed.
    pub vcpu: VcpuId,
    /// Virtual time of completion, ns from the start of the dispatch run.
    pub at_ns: u64,
}

/// Outcome of driving a queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Completions in time order.
    pub completions: Vec<Completion>,
    /// Number of slice-expiry preemptions (entity re-enqueued unfinished).
    pub preemptions: u64,
    /// Number of scheduling decisions made.
    pub slices: u64,
    /// Total virtual time consumed.
    pub elapsed_ns: u64,
}

impl DispatchOutcome {
    /// Completion time of a given vCPU, if it finished.
    pub fn completion_of(&self, vcpu: VcpuId) -> Option<u64> {
        self.completions
            .iter()
            .find(|c| c.vcpu == vcpu)
            .map(|c| c.at_ns)
    }
}

/// Drives `rq` until all tracked work completes or `limit_ns` of virtual
/// time elapses. `work` maps each queued vCPU to its remaining work in
/// ns; entries not in the map are treated as already idle (dequeued and
/// dropped). On return, `work` holds the remaining ns of unfinished
/// entities (re-queued on `rq`).
///
/// # Panics
///
/// Panics if `limit_ns` is zero.
pub fn run_queue(
    sched: &mut HostScheduler,
    rq: RqId,
    work: &mut HashMap<VcpuId, u64>,
    limit_ns: u64,
) -> DispatchOutcome {
    assert!(limit_ns > 0, "dispatch needs a positive time budget");
    let flavor = sched.flavor();
    let timeslice = sched.queue(rq).timeslice_ns();
    let mut out = DispatchOutcome::default();

    while out.elapsed_ns < limit_ns {
        let Some((key, vcpu)) = sched.pick_next(rq) else {
            break;
        };
        let Some(remaining) = work.get_mut(&vcpu.id) else {
            // Not tracked: the entity leaves the queue (idle vCPU).
            continue;
        };
        out.slices += 1;
        let budget = limit_ns - out.elapsed_ns;
        let ran = (*remaining).min(timeslice).min(budget);
        out.elapsed_ns += ran;
        *remaining -= ran;
        if *remaining == 0 {
            work.remove(&vcpu.id);
            out.completions.push(Completion {
                vcpu: vcpu.id,
                at_ns: out.elapsed_ns,
            });
        } else {
            // Slice expired (or budget ran out): update the key per the
            // policy and re-enqueue sorted.
            out.preemptions += 1;
            let mut new_key = flavor.key_after_run(key, ran, vcpu.weight);
            if flavor.needs_refill(new_key) {
                new_key = flavor.refill(new_key);
            }
            sched.enqueue_vcpu(rq, new_key, vcpu);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::SchedFlavor;
    use crate::governor::GovernorPolicy;
    use crate::scheduler::SchedConfig;
    use crate::topology::CpuTopology;
    use crate::vcpu::{SandboxId, Vcpu};
    use crate::ULL_TIMESLICE_NS;

    fn sched(flavor: SchedFlavor) -> HostScheduler {
        HostScheduler::new(SchedConfig {
            topology: CpuTopology::new(1, 4, false),
            ull_queues: 1,
            governor_policy: GovernorPolicy::Performance,
            flavor,
        })
    }

    fn enqueue(s: &mut HostScheduler, rq: RqId, id: u64, key: i64) -> VcpuId {
        let vid = VcpuId::new(id);
        s.enqueue_vcpu(rq, key, Vcpu::new(vid, SandboxId::new(0)));
        vid
    }

    #[test]
    fn cat3_workload_finishes_in_one_ull_slice() {
        // Paper §4.1.3: "1µs provides every [uLL] workload with enough
        // CPU time to terminate its execution as soon as possible."
        let mut s = sched(SchedFlavor::Credit2);
        let rq = s.ull_queues()[0];
        let v = enqueue(&mut s, rq, 0, 0);
        let mut work = HashMap::from([(v, 700u64)]); // Category 3: 0.7 µs
        let out = run_queue(&mut s, rq, &mut work, 10_000);
        assert_eq!(out.completions.len(), 1);
        assert_eq!(out.completion_of(v), Some(700));
        assert_eq!(out.preemptions, 0, "no slice expiry for Cat3");
        assert_eq!(out.slices, 1);
    }

    #[test]
    fn long_task_round_robins_at_1us_on_ull_queue() {
        let mut s = sched(SchedFlavor::Credit2);
        let rq = s.ull_queues()[0];
        let v = enqueue(&mut s, rq, 0, 0);
        let mut work = HashMap::from([(v, 17_000u64)]); // Category 1: 17 µs
        let out = run_queue(&mut s, rq, &mut work, 1_000_000);
        assert_eq!(out.completion_of(v), Some(17_000));
        // 17 slices of 1 µs: 16 preemptions + the finishing slice.
        assert_eq!(out.preemptions, 16);
        assert_eq!(out.slices, 17);
        assert_eq!(s.queue(rq).timeslice_ns(), ULL_TIMESLICE_NS);
    }

    #[test]
    fn general_queue_runs_long_slices() {
        let mut s = sched(SchedFlavor::Credit2);
        let rq = s.general_queues()[0];
        let v = enqueue(&mut s, rq, 0, crate::flavor::CREDIT2_INIT);
        let mut work = HashMap::from([(v, 17_000u64)]);
        let out = run_queue(&mut s, rq, &mut work, 1_000_000);
        assert_eq!(out.slices, 1, "17µs fits one 10ms general slice");
        assert_eq!(out.preemptions, 0);
    }

    #[test]
    fn cfs_interleaves_equal_tasks_fairly() {
        // CFS: least vruntime first — the task that just ran yields, so
        // two equal tasks alternate slice by slice and finish together.
        let mut s = sched(SchedFlavor::Cfs);
        let rq = s.ull_queues()[0];
        let a = enqueue(&mut s, rq, 0, SchedFlavor::Cfs.initial_key());
        let b = enqueue(&mut s, rq, 1, SchedFlavor::Cfs.initial_key());
        let mut work = HashMap::from([(a, 5_000u64), (b, 5_000u64)]);
        let out = run_queue(&mut s, rq, &mut work, 100_000);
        let ca = out.completion_of(a).unwrap();
        let cb = out.completion_of(b).unwrap();
        assert!(ca.abs_diff(cb) <= 2 * ULL_TIMESLICE_NS, "{ca} vs {cb}");
        assert_eq!(ca.max(cb), 10_000);
    }

    #[test]
    fn credit2_runs_least_credit_to_completion() {
        // The paper's credit2 rule ("least remaining credit first",
        // §3.1): a freshly-run entity has the least credit and therefore
        // keeps the CPU until it completes or exhausts its budget — the
        // two tasks run back-to-back, not interleaved.
        let flavor = SchedFlavor::Credit2;
        let mut s = sched(flavor);
        let rq = s.ull_queues()[0];
        let a = enqueue(&mut s, rq, 0, flavor.initial_key());
        let b = enqueue(&mut s, rq, 1, flavor.initial_key());
        let mut work = HashMap::from([(a, 5_000u64), (b, 5_000u64)]);
        let out = run_queue(&mut s, rq, &mut work, 100_000);
        let ca = out.completion_of(a).unwrap();
        let cb = out.completion_of(b).unwrap();
        assert_eq!(ca.min(cb), 5_000, "first task runs to completion");
        assert_eq!(ca.max(cb), 10_000, "second follows immediately");
    }

    #[test]
    fn heavier_weight_finishes_sooner_under_cfs() {
        let mut s = sched(SchedFlavor::Cfs);
        let rq = s.ull_queues()[0];
        let heavy = VcpuId::new(0);
        let light = VcpuId::new(1);
        s.enqueue_vcpu(
            rq,
            0,
            Vcpu::with_weight(
                heavy,
                SandboxId::new(0),
                4 * crate::flavor::CFS_WEIGHT_BASELINE,
            ),
        );
        s.enqueue_vcpu(rq, 0, Vcpu::new(light, SandboxId::new(0)));
        let mut work = HashMap::from([(heavy, 8_000u64), (light, 8_000u64)]);
        let out = run_queue(&mut s, rq, &mut work, 1_000_000);
        let ch = out.completion_of(heavy).unwrap();
        let cl = out.completion_of(light).unwrap();
        assert!(ch < cl, "weighted entity completes first: {ch} vs {cl}");
    }

    #[test]
    fn budget_limits_progress() {
        let mut s = sched(SchedFlavor::Credit2);
        let rq = s.ull_queues()[0];
        let v = enqueue(&mut s, rq, 0, 0);
        let mut work = HashMap::from([(v, 100_000u64)]);
        let out = run_queue(&mut s, rq, &mut work, 10_000);
        assert!(out.completions.is_empty());
        assert_eq!(out.elapsed_ns, 10_000);
        assert_eq!(work[&v], 90_000, "remaining work is preserved");
        assert_eq!(s.queue(rq).len(), 1, "unfinished entity is re-queued");
    }

    #[test]
    fn untracked_vcpus_are_drained() {
        let mut s = sched(SchedFlavor::Credit2);
        let rq = s.ull_queues()[0];
        enqueue(&mut s, rq, 0, 0);
        let mut work = HashMap::new();
        let out = run_queue(&mut s, rq, &mut work, 1_000);
        assert!(out.completions.is_empty());
        assert_eq!(s.queue(rq).len(), 0);
    }

    #[test]
    #[should_panic(expected = "positive time budget")]
    fn zero_budget_panics() {
        let mut s = sched(SchedFlavor::Credit2);
        let rq = s.ull_queues()[0];
        run_queue(&mut s, rq, &mut HashMap::new(), 0);
    }
}
