//! PELT-style run-queue load tracking (paper §3.1, step ⑤).
//!
//! Each run queue carries a *load* — "a measure of processing performed by
//! the tasks in that run queue that the virtualization system governor
//! uses for frequency scaling". Linux/KVM and Xen track it with per-entity
//! load tracking (PELT): a geometrically decaying sum where placing an
//! entity always updates the load as `L(x) = αx + β` (the paper's key
//! observation enabling coalescing).
//!
//! The variable is **lock-protected**; the number of lock acquisitions is
//! counted because it is one of the dominant costs of the vanilla resume
//! path (one lock + update per vCPU) that HORSE coalesces into one.

use horse_core::{CoalescedUpdate, LoadUpdate};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// PELT decay per 1 ms period: `y` with `y³² = 0.5`, the constant used by
/// the Linux scheduler since the 2011 per-entity load tracking rework.
pub const PELT_DECAY: f64 = 0.978_572_062_087_700_2;

/// Load contribution of one runnable vCPU at default weight (Linux scales
/// load in units of 1024).
pub const VCPU_LOAD_CONTRIB: f64 = 1024.0;

/// Parameters of the affine per-vCPU load update.
///
/// # Example
///
/// ```
/// use horse_sched::LoadTracker;
///
/// let t = LoadTracker::pelt_default();
/// // Placing one vCPU on an idle queue yields its contribution.
/// assert!((t.update().apply(0.0) - 1024.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadTracker {
    update: LoadUpdate,
}

impl LoadTracker {
    /// The Linux-PELT-like default tracker: `L(x) = 0.97857·x + 1024`.
    pub fn pelt_default() -> Self {
        Self {
            update: LoadUpdate::new(PELT_DECAY, VCPU_LOAD_CONTRIB)
                .expect("default PELT coefficients are valid"),
        }
    }

    /// A tracker with explicit coefficients.
    ///
    /// # Errors
    ///
    /// Propagates [`horse_core::InvalidCoefficientsError`] for non-finite
    /// or negative-α coefficients.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, horse_core::InvalidCoefficientsError> {
        Ok(Self {
            update: LoadUpdate::new(alpha, beta)?,
        })
    }

    /// The elementary affine update applied when placing one vCPU.
    pub fn update(&self) -> LoadUpdate {
        self.update
    }

    /// Precomputes the coalesced update for an `n`-vCPU sandbox (done at
    /// pause time by HORSE, §4.2.2).
    pub fn coalesce(&self, n: u32) -> CoalescedUpdate {
        self.update.coalesce(n)
    }
}

/// The lock-protected load variable of one run queue.
///
/// Both resume paths go through this type so the lock-acquisition count —
/// a dominant vanilla cost — is measured identically for both:
///
/// * vanilla: [`RqLoad::apply_per_vcpu`] — *n* acquisitions, *n* updates;
/// * HORSE: [`RqLoad::apply_coalesced`] — 1 acquisition, 1 multiply-add.
#[derive(Debug, Default)]
pub struct RqLoad {
    value: Mutex<f64>,
    lock_acquisitions: AtomicU64,
    updates: AtomicU64,
}

impl RqLoad {
    /// Creates a zero-load variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current load value.
    pub fn get(&self) -> f64 {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        *self.value.lock()
    }

    /// Vanilla path: applies the per-vCPU update `n` times, acquiring the
    /// lock for each vCPU (as the unmodified resume loop does — the lock
    /// is taken per placement, paper §3.1 step ⑤).
    pub fn apply_per_vcpu(&self, update: LoadUpdate, n: u32) -> f64 {
        let mut last = 0.0;
        for _ in 0..n {
            self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
            self.updates.fetch_add(1, Ordering::Relaxed);
            let mut v = self.value.lock();
            *v = update.apply(*v);
            last = *v;
        }
        last
    }

    /// HORSE path: applies a precomputed coalesced update under a single
    /// lock acquisition (paper §4.2).
    pub fn apply_coalesced(&self, coalesced: CoalescedUpdate) -> f64 {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.updates.fetch_add(1, Ordering::Relaxed);
        let mut v = self.value.lock();
        *v = coalesced.apply(*v);
        *v
    }

    /// Decays the load by one PELT period with no new contribution
    /// (`β = 0`); called by the periodic scheduler tick.
    pub fn decay(&self, alpha: f64) -> f64 {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.updates.fetch_add(1, Ordering::Relaxed);
        let mut v = self.value.lock();
        *v *= alpha;
        *v
    }

    /// Number of lock acquisitions so far.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Number of updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Resets the counters (not the load), e.g. between experiment runs.
    pub fn reset_counters(&self) {
        self.lock_acquisitions.store(0, Ordering::Relaxed);
        self.updates.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelt_constants_are_plausible() {
        // y^32 must be 0.5 (half-life of 32 periods).
        assert!((PELT_DECAY.powi(32) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn per_vcpu_equals_coalesced() {
        let t = LoadTracker::pelt_default();
        let vanilla = RqLoad::new();
        let horse = RqLoad::new();
        let v = vanilla.apply_per_vcpu(t.update(), 36);
        let h = horse.apply_coalesced(t.coalesce(36));
        assert!((v - h).abs() < 1e-6 * v.abs());
    }

    #[test]
    fn lock_counts_differ_between_paths() {
        let t = LoadTracker::pelt_default();
        let vanilla = RqLoad::new();
        let horse = RqLoad::new();
        vanilla.apply_per_vcpu(t.update(), 36);
        horse.apply_coalesced(t.coalesce(36));
        assert_eq!(vanilla.lock_acquisitions(), 36);
        assert_eq!(horse.lock_acquisitions(), 1);
        assert_eq!(vanilla.updates(), 36);
        assert_eq!(horse.updates(), 1);
    }

    #[test]
    fn decay_shrinks_load() {
        let l = RqLoad::new();
        l.apply_per_vcpu(LoadTracker::pelt_default().update(), 1);
        let before = l.get();
        let after = l.decay(PELT_DECAY);
        assert!(after < before);
    }

    #[test]
    fn counters_reset() {
        let l = RqLoad::new();
        l.get();
        l.decay(0.5);
        assert!(l.lock_acquisitions() >= 2);
        l.reset_counters();
        assert_eq!(l.lock_acquisitions(), 0);
        assert_eq!(l.updates(), 0);
    }

    #[test]
    fn custom_tracker_coefficients() {
        let t = LoadTracker::new(0.5, 10.0).unwrap();
        assert_eq!(t.update().apply(100.0), 60.0);
        assert!(LoadTracker::new(f64::NAN, 0.0).is_err());
    }
}
