//! DVFS frequency governor.
//!
//! The run-queue load tracked by [`crate::RqLoad`] exists for one consumer:
//! the frequency governor, which scales each CPU's P-state with the load of
//! its run queue (the paper's step ⑤ rationale). This module implements a
//! schedutil-like governor over a discrete P-state table modeled after the
//! paper's testbed CPU (Intel Xeon Platinum 8360Y, 2.4 GHz nominal).

use serde::{Deserialize, Serialize};

/// A discrete performance state: a frequency in kHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PState {
    khz: u32,
}

impl PState {
    /// Creates a P-state from a frequency in kHz.
    pub const fn from_khz(khz: u32) -> Self {
        Self { khz }
    }

    /// Frequency in kHz.
    pub const fn khz(self) -> u32 {
        self.khz
    }

    /// Frequency in MHz (fractional).
    pub fn mhz(self) -> f64 {
        self.khz as f64 / 1e3
    }
}

/// Governor operating mode, mirroring `cpufreq` policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GovernorPolicy {
    /// Scale frequency with run-queue load (schedutil-like).
    #[default]
    Schedutil,
    /// Pin every core at the highest P-state (the paper's §5.2
    /// experiments set the host governor to performance mode).
    Performance,
    /// Pin every core at the lowest P-state.
    Powersave,
}

/// A schedutil-like DVFS governor over a discrete P-state table.
///
/// # Example
///
/// ```
/// use horse_sched::{Governor, GovernorPolicy};
///
/// let g = Governor::xeon_8360y(GovernorPolicy::Schedutil);
/// let idle = g.target_pstate(0.0);
/// let busy = g.target_pstate(4096.0);
/// assert!(busy.khz() > idle.khz());
/// assert_eq!(busy.khz(), g.max_pstate().khz());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Governor {
    pstates: Vec<PState>,
    policy: GovernorPolicy,
    /// Load at (or above) which the max P-state is requested.
    saturation_load: f64,
}

impl Governor {
    /// A P-state table modeled after the paper's Xeon 8360Y testbed:
    /// 800 MHz idle floor up to the 2.4 GHz nominal frequency in
    /// 200 MHz steps.
    pub fn xeon_8360y(policy: GovernorPolicy) -> Self {
        let pstates = (4..=12).map(|i| PState::from_khz(i * 200_000)).collect();
        Self::new(pstates, policy, 2.0 * crate::VCPU_LOAD_CONTRIB).expect("static table is valid")
    }

    /// Creates a governor from an explicit P-state table (ascending).
    ///
    /// # Errors
    ///
    /// Returns `Err` if the table is empty, unsorted, or the saturation
    /// load is not positive.
    pub fn new(
        pstates: Vec<PState>,
        policy: GovernorPolicy,
        saturation_load: f64,
    ) -> Result<Self, String> {
        if pstates.is_empty() {
            return Err("empty P-state table".into());
        }
        if pstates.windows(2).any(|w| w[0] >= w[1]) {
            return Err("P-state table must be strictly ascending".into());
        }
        if saturation_load.is_nan() || saturation_load <= 0.0 {
            return Err("saturation load must be positive".into());
        }
        Ok(Self {
            pstates,
            policy,
            saturation_load,
        })
    }

    /// Lowest available P-state.
    pub fn min_pstate(&self) -> PState {
        self.pstates[0]
    }

    /// Highest available P-state.
    pub fn max_pstate(&self) -> PState {
        *self.pstates.last().expect("non-empty table")
    }

    /// Active policy.
    pub fn policy(&self) -> GovernorPolicy {
        self.policy
    }

    /// The P-state requested for a given run-queue load.
    pub fn target_pstate(&self, load: f64) -> PState {
        match self.policy {
            GovernorPolicy::Performance => self.max_pstate(),
            GovernorPolicy::Powersave => self.min_pstate(),
            GovernorPolicy::Schedutil => {
                let ratio = (load / self.saturation_load).clamp(0.0, 1.0);
                let idx = (ratio * (self.pstates.len() - 1) as f64).round() as usize;
                self.pstates[idx]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedutil_scales_with_load() {
        let g = Governor::xeon_8360y(GovernorPolicy::Schedutil);
        let mut last = 0;
        for load in [0.0, 512.0, 1024.0, 2048.0, 4096.0] {
            let p = g.target_pstate(load);
            assert!(p.khz() >= last);
            last = p.khz();
        }
        assert_eq!(g.target_pstate(1e9), g.max_pstate());
        assert_eq!(g.target_pstate(0.0), g.min_pstate());
    }

    #[test]
    fn performance_pins_max() {
        let g = Governor::xeon_8360y(GovernorPolicy::Performance);
        assert_eq!(g.target_pstate(0.0), g.max_pstate());
        assert_eq!(g.max_pstate().khz(), 2_400_000);
        assert!((g.max_pstate().mhz() - 2_400.0).abs() < 1e-9);
        assert_eq!(g.policy(), GovernorPolicy::Performance);
    }

    #[test]
    fn powersave_pins_min() {
        let g = Governor::xeon_8360y(GovernorPolicy::Powersave);
        assert_eq!(g.target_pstate(1e9), g.min_pstate());
        assert_eq!(g.min_pstate().khz(), 800_000);
    }

    #[test]
    fn rejects_invalid_tables() {
        assert!(Governor::new(vec![], GovernorPolicy::Schedutil, 1.0).is_err());
        let unsorted = vec![PState::from_khz(2), PState::from_khz(1)];
        assert!(Governor::new(unsorted, GovernorPolicy::Schedutil, 1.0).is_err());
        let ok = vec![PState::from_khz(1), PState::from_khz(2)];
        assert!(Governor::new(ok.clone(), GovernorPolicy::Schedutil, 0.0).is_err());
        assert!(Governor::new(ok, GovernorPolicy::Schedutil, 1.0).is_ok());
    }
}
