//! DVFS energy accounting.
//!
//! The run-queue load variable exists to drive frequency scaling (paper
//! §3.1 step ⑤); the energy ledger closes that loop: it tracks each
//! CPU's P-state residency over virtual time and integrates a power model
//! into joules. Its role in the reproduction is the *equivalence*
//! argument — coalesced load updates must produce the exact same
//! frequency decisions, hence the same energy, as per-vCPU updates.

use crate::governor::PState;
use serde::{Deserialize, Serialize};

/// A CPU power model: quadratic-in-frequency active power plus idle
/// floor, the standard CMOS approximation `P ≈ P_idle + c·f²`
/// (capacitance-voltage effects folded into the coefficient).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle power per CPU, in watts.
    pub idle_watts: f64,
    /// Active power coefficient: watts per GHz².
    pub watts_per_ghz2: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Xeon 8360Y ballpark: ~250 W TDP over 36 cores at 2.4 GHz
        // ≈ 6.9 W/core active; idle floor ~1 W/core.
        Self {
            idle_watts: 1.0,
            watts_per_ghz2: 1.2,
        }
    }
}

impl PowerModel {
    /// Power draw of one busy CPU at a P-state, in watts.
    pub fn busy_watts(&self, pstate: PState) -> f64 {
        let ghz = pstate.mhz() / 1e3;
        self.idle_watts + self.watts_per_ghz2 * ghz * ghz
    }
}

/// Frequency-residency ledger of one CPU: how long it spent at each
/// P-state, and the energy that implies.
///
/// # Example
///
/// ```
/// use horse_sched::{EnergyLedger, PowerModel, PState};
///
/// let mut ledger = EnergyLedger::new(PowerModel::default());
/// ledger.run_at(PState::from_khz(2_400_000), 1_000_000_000); // 1 s at 2.4 GHz
/// ledger.idle(1_000_000_000);                                 // 1 s idle
/// assert!(ledger.total_joules() > 1.0);
/// assert_eq!(ledger.busy_ns(), 1_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    model: PowerModel,
    /// (pstate, accumulated busy ns) pairs.
    residency: Vec<(PState, u64)>,
    idle_ns: u64,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new(model: PowerModel) -> Self {
        Self {
            model,
            residency: Vec::new(),
            idle_ns: 0,
        }
    }

    /// Accounts `ns` of busy time at the given P-state.
    pub fn run_at(&mut self, pstate: PState, ns: u64) {
        match self.residency.iter_mut().find(|(p, _)| *p == pstate) {
            Some((_, acc)) => *acc += ns,
            None => self.residency.push((pstate, ns)),
        }
    }

    /// Accounts `ns` of idle time.
    pub fn idle(&mut self, ns: u64) {
        self.idle_ns += ns;
    }

    /// Total busy nanoseconds across all P-states.
    pub fn busy_ns(&self) -> u64 {
        self.residency.iter().map(|(_, ns)| ns).sum()
    }

    /// Nanoseconds spent at one P-state.
    pub fn residency_ns(&self, pstate: PState) -> u64 {
        self.residency
            .iter()
            .find(|(p, _)| *p == pstate)
            .map_or(0, |(_, ns)| *ns)
    }

    /// Total energy in joules (busy at each P-state's power + idle
    /// floor).
    pub fn total_joules(&self) -> f64 {
        let busy: f64 = self
            .residency
            .iter()
            .map(|(p, ns)| self.model.busy_watts(*p) * (*ns as f64 / 1e9))
            .sum();
        busy + self.model.idle_watts * (self.idle_ns as f64 / 1e9)
    }

    /// Average power over the accounted span, in watts (0 for an empty
    /// ledger).
    pub fn average_watts(&self) -> f64 {
        let span = (self.busy_ns() + self.idle_ns) as f64 / 1e9;
        if span == 0.0 {
            0.0
        } else {
            self.total_joules() / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(khz: u32) -> PState {
        PState::from_khz(khz)
    }

    #[test]
    fn power_grows_quadratically() {
        let m = PowerModel::default();
        let low = m.busy_watts(p(800_000));
        let high = m.busy_watts(p(2_400_000));
        // Active parts scale by 9 (3x frequency squared).
        let active_low = low - m.idle_watts;
        let active_high = high - m.idle_watts;
        assert!((active_high / active_low - 9.0).abs() < 1e-9);
    }

    #[test]
    fn residency_accumulates_per_pstate() {
        let mut l = EnergyLedger::new(PowerModel::default());
        l.run_at(p(800_000), 100);
        l.run_at(p(800_000), 50);
        l.run_at(p(2_400_000), 25);
        assert_eq!(l.residency_ns(p(800_000)), 150);
        assert_eq!(l.residency_ns(p(2_400_000)), 25);
        assert_eq!(l.residency_ns(p(1_000_000)), 0);
        assert_eq!(l.busy_ns(), 175);
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let m = PowerModel {
            idle_watts: 1.0,
            watts_per_ghz2: 1.0,
        };
        let mut l = EnergyLedger::new(m);
        // 1 s at 1 GHz (2 W) + 1 s idle (1 W) = 3 J.
        l.run_at(p(1_000_000), 1_000_000_000);
        l.idle(1_000_000_000);
        assert!((l.total_joules() - 3.0).abs() < 1e-9);
        assert!((l.average_watts() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = EnergyLedger::new(PowerModel::default());
        assert_eq!(l.total_joules(), 0.0);
        assert_eq!(l.average_watts(), 0.0);
        assert_eq!(l.busy_ns(), 0);
    }

    #[test]
    fn identical_frequency_decisions_mean_identical_energy() {
        // The HORSE equivalence argument: if coalesced and per-vCPU load
        // updates yield the same loads (tested in load.rs), the governor
        // picks the same P-states, and the ledgers agree exactly.
        use crate::governor::{Governor, GovernorPolicy};
        use crate::load::{LoadTracker, RqLoad};

        let g = Governor::xeon_8360y(GovernorPolicy::Schedutil);
        let t = LoadTracker::pelt_default();

        let vanilla_load = RqLoad::new();
        vanilla_load.apply_per_vcpu(t.update(), 36);
        let horse_load = RqLoad::new();
        horse_load.apply_coalesced(t.coalesce(36));

        let mut vanilla = EnergyLedger::new(PowerModel::default());
        let mut horse = EnergyLedger::new(PowerModel::default());
        vanilla.run_at(g.target_pstate(vanilla_load.get()), 1_000_000);
        horse.run_at(g.target_pstate(horse_load.get()), 1_000_000);
        assert!((vanilla.total_joules() - horse.total_joules()).abs() < 1e-12);
    }
}
