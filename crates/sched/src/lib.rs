//! # horse-sched — hypervisor scheduler substrate
//!
//! The HORSE paper modifies the host scheduler of Linux-KVM (under
//! Firecracker) and Xen. This crate is that substrate, rebuilt in Rust:
//!
//! * per-CPU **run queues** sorted by credit ([`RunQueue`], credit2
//!   semantics: least remaining credit first — paper §3.1 step ④);
//! * a **lock-protected load variable** per queue with PELT-style affine
//!   updates ([`RqLoad`], paper step ⑤) feeding a DVFS [`Governor`];
//! * **reserved uLL run queues** with a 1 µs time slice, pause-time
//!   assignment balancing, and 𝒫²𝒮ℳ merge entry points
//!   ([`HostScheduler::ull_precompute`] / [`HostScheduler::ull_merge`] —
//!   paper §4.1.3).
//!
//! The resume pipelines themselves (vanilla and HORSE) live one layer up
//! in `horse-vmm`; this crate provides the mechanisms they are built from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dispatch;
mod energy;
mod flavor;
mod governor;
mod load;
mod runqueue;
mod scheduler;
mod topology;
mod vcpu;
mod watchdog;

pub use energy::{EnergyLedger, PowerModel};
pub use flavor::{SchedFlavor, CFS_WEIGHT_BASELINE, CREDIT2_INIT};
pub use governor::{Governor, GovernorPolicy, PState};
pub use load::{LoadTracker, RqLoad, PELT_DECAY, VCPU_LOAD_CONTRIB};
pub use runqueue::{RqId, RqKind, RunQueue, GENERAL_TIMESLICE_NS, ULL_TIMESLICE_NS};
pub use scheduler::{HostScheduler, SchedConfig};
pub use topology::{CpuId, CpuTopology};
pub use vcpu::{SandboxId, Vcpu, VcpuId};
pub use watchdog::{RescuePlan, SpliceWatchdog, DEFAULT_SPLICE_BUDGET_NS};
