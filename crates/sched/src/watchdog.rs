//! Watchdog for the parallel 𝒫²𝒮ℳ splice.
//!
//! The paper's Algorithm 1 dispatches one thread per splice point and
//! assumes they all finish promptly; in a real kernel a splice worker can
//! be preempted, stalled on a remote cache line, or die with its CPU. The
//! watchdog bounds how long the merge waits on stragglers: when the
//! budget expires, the unfinished splice points are reclaimed and
//! completed sequentially on the resuming thread. The merge result is
//! identical (splices are disjoint, so completion order is free); only
//! the latency differs — the rescue pays the budget plus the sequential
//! completion cost, which the VMM's cost model accounts against the
//! resume and telemetry reports as `merge.straggler_rescue`.

use serde::{Deserialize, Serialize};

/// Default straggler budget: half a microsecond, chosen so a rescued
/// HORSE resume stays cheaper than a vanilla one (vanilla merge base is
/// ≈375 ns plus per-vCPU work) while being an order of magnitude above
/// a healthy splice's completion time.
pub const DEFAULT_SPLICE_BUDGET_NS: u64 = 500;

/// How a watchdog-bounded parallel merge should be re-executed after
/// some of its splice threads straggled or died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescuePlan {
    /// Threads that completed within the budget (≥ 1 — the resuming
    /// thread itself always survives to run the rescue).
    pub healthy_threads: usize,
    /// Splice points reclaimed from stragglers and completed
    /// sequentially.
    pub rescued_splices: usize,
}

/// Bounds the time a parallel splice may wait on straggling workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpliceWatchdog {
    budget_ns: u64,
}

impl Default for SpliceWatchdog {
    fn default() -> Self {
        Self {
            budget_ns: DEFAULT_SPLICE_BUDGET_NS,
        }
    }
}

impl SpliceWatchdog {
    /// A watchdog with an explicit budget.
    pub fn with_budget(budget_ns: u64) -> Self {
        Self { budget_ns }
    }

    /// The straggler budget, in virtual ns.
    pub fn budget_ns(&self) -> u64 {
        self.budget_ns
    }

    /// Plans the rescue of a merge that dispatched `splices` splice
    /// points and lost `lost` of its workers (straggled past the budget
    /// or died). The reclaimed splice points are completed sequentially;
    /// the survivors' work stands.
    pub fn plan_rescue(&self, splices: usize, lost: usize) -> RescuePlan {
        let rescued = lost.min(splices);
        RescuePlan {
            healthy_threads: (splices - rescued).max(1),
            rescued_splices: rescued,
        }
    }

    /// Latency charged to a rescued merge on top of the healthy parallel
    /// path: the full budget (the merge waited it out before reclaiming)
    /// plus `per_splice_ns` for each sequentially completed splice.
    pub fn rescue_penalty_ns(&self, rescued_splices: usize, per_splice_ns: f64) -> u64 {
        self.budget_ns + (rescued_splices as f64 * per_splice_ns).round() as u64
    }

    /// Supervises a *real-thread* merge after the fact: given each
    /// worker's measured wall-clock duration and a wall budget, reports
    /// how many workers overran as a [`RescuePlan`] (`rescued_splices`
    /// counts overrunning workers; `healthy_threads` the rest, never 0).
    ///
    /// Purely observational — the workers already joined, their splices
    /// already stand, and nothing here feeds the virtual cost axis or the
    /// telemetry recorder. It exists so the wall-clock bench and the VMM's
    /// pool stats can flag runners whose threads straggle for real, with
    /// the same vocabulary the virtual-axis rescue uses.
    pub fn supervise_wall(&self, per_worker_nanos: &[u64], wall_budget_nanos: u64) -> RescuePlan {
        let overran = per_worker_nanos
            .iter()
            .filter(|&&d| d > wall_budget_nanos)
            .count();
        RescuePlan {
            healthy_threads: (per_worker_nanos.len() - overran).max(1),
            rescued_splices: overran,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescue_clamps_to_splice_count() {
        let w = SpliceWatchdog::default();
        assert_eq!(w.budget_ns(), DEFAULT_SPLICE_BUDGET_NS);
        let plan = w.plan_rescue(4, 1);
        assert_eq!(plan.healthy_threads, 3);
        assert_eq!(plan.rescued_splices, 1);
        let all_lost = w.plan_rescue(4, 9);
        assert_eq!(all_lost.rescued_splices, 4);
        assert_eq!(all_lost.healthy_threads, 1, "resuming thread survives");
        let none = w.plan_rescue(0, 3);
        assert_eq!(none.rescued_splices, 0);
    }

    #[test]
    fn penalty_grows_with_rescued_splices() {
        let w = SpliceWatchdog::with_budget(100);
        assert_eq!(w.rescue_penalty_ns(0, 4.0), 100);
        assert_eq!(w.rescue_penalty_ns(3, 4.0), 112);
    }

    #[test]
    fn supervise_wall_counts_overruns() {
        let w = SpliceWatchdog::default();
        let plan = w.supervise_wall(&[100, 5_000, 200, 9_000], 1_000);
        assert_eq!(plan.rescued_splices, 2);
        assert_eq!(plan.healthy_threads, 2);
        // Budget is inclusive: exactly-on-budget workers are healthy.
        let at_budget = w.supervise_wall(&[1_000, 1_000], 1_000);
        assert_eq!(at_budget.rescued_splices, 0);
    }

    #[test]
    fn supervise_wall_all_overrun_keeps_one_healthy() {
        let w = SpliceWatchdog::default();
        let plan = w.supervise_wall(&[5, 6, 7], 1);
        assert_eq!(plan.rescued_splices, 3);
        assert_eq!(plan.healthy_threads, 1, "resuming thread survives");
        let empty = w.supervise_wall(&[], 100);
        assert_eq!(empty.rescued_splices, 0);
        assert_eq!(empty.healthy_threads, 1);
    }
}
