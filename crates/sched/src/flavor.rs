//! Scheduler flavors: credit2 (Xen) and CFS (Linux-KVM).
//!
//! The paper implements HORSE in both Xen and Firecracker/Linux-KVM and
//! notes that "each run queue is sorted, and the attribute considered for
//! the sort depends on the scheduling policy used" (§3.1). This module
//! captures the two policies' sort-key semantics so the same run-queue
//! machinery — and the same 𝒫²𝒮ℳ fast path — serves both:
//!
//! * **credit2** sorts by remaining *credit*: entities burn credit while
//!   running and are refilled epoch-wise; least remaining credit first.
//! * **CFS** sorts by *virtual runtime*: entities accumulate weighted
//!   runtime; least vruntime first.
//!
//! Either way the queue is an ascending sorted list over an `i64` key,
//! which is all 𝒫²𝒮ℳ requires — demonstrating the paper's claim that
//! HORSE "does not rely on specific CPU operations nor hardware
//! accelerators" and ports across hypervisors.

use serde::{Deserialize, Serialize};

/// Default credit budget refilled to a credit2 entity (mirrors Xen's
/// `CSCHED2_CREDIT_INIT` order of magnitude, in ns of runtime).
pub const CREDIT2_INIT: i64 = 10_000_000;

/// NICE-0 weight used as the CFS weight baseline.
pub const CFS_WEIGHT_BASELINE: u32 = 1024;

/// The host scheduling policy in effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedFlavor {
    /// Xen's credit2: queues sorted by remaining credit, ascending
    /// ("the process with the least remaining credit first", §3.1).
    #[default]
    Credit2,
    /// Linux CFS (the KVM host under Firecracker): queues sorted by
    /// virtual runtime, ascending.
    Cfs,
}

impl SchedFlavor {
    /// Sort key a freshly started entity enters the queue with.
    pub fn initial_key(self) -> i64 {
        match self {
            // Full credit: sorts *after* partially-burned entities...
            // credit2 actually orders by credit ascending, so a fresh
            // entity with full credit yields to nearly-exhausted ones.
            SchedFlavor::Credit2 => CREDIT2_INIT,
            // CFS: new entities start at (min_vruntime of the queue),
            // approximated as 0 on an idle queue.
            SchedFlavor::Cfs => 0,
        }
    }

    /// Key after the entity ran for `ran_ns` at the given weight.
    ///
    /// * credit2: credit decreases by the runtime (weight scales the
    ///   burn rate — heavier entities burn slower);
    /// * CFS: vruntime increases by the weighted runtime.
    pub fn key_after_run(self, key: i64, ran_ns: u64, weight: u32) -> i64 {
        let weight = i64::from(weight.max(1));
        match self {
            SchedFlavor::Credit2 => key - (ran_ns as i64) * i64::from(CFS_WEIGHT_BASELINE) / weight,
            SchedFlavor::Cfs => key + (ran_ns as i64) * i64::from(CFS_WEIGHT_BASELINE) / weight,
        }
    }

    /// Whether the key signals an exhausted time allocation that needs a
    /// refill (credit2 only; CFS vruntime grows forever).
    pub fn needs_refill(self, key: i64) -> bool {
        match self {
            SchedFlavor::Credit2 => key <= 0,
            SchedFlavor::Cfs => false,
        }
    }

    /// Refilled key for an exhausted entity (credit2 epoch refill). For
    /// CFS this is the identity.
    pub fn refill(self, key: i64) -> i64 {
        match self {
            SchedFlavor::Credit2 => key + CREDIT2_INIT,
            SchedFlavor::Cfs => key,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SchedFlavor::Credit2 => "credit2 (Xen)",
            SchedFlavor::Cfs => "CFS (Linux-KVM)",
        }
    }
}

impl std::fmt::Display for SchedFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_burns_down_and_refills() {
        let f = SchedFlavor::Credit2;
        let k0 = f.initial_key();
        let k1 = f.key_after_run(k0, 6_000_000, CFS_WEIGHT_BASELINE);
        assert_eq!(k1, k0 - 6_000_000);
        let k2 = f.key_after_run(k1, 6_000_000, CFS_WEIGHT_BASELINE);
        assert!(f.needs_refill(k2));
        let k3 = f.refill(k2);
        assert!(k3 > 0);
        assert!(!f.needs_refill(k3));
    }

    #[test]
    fn vruntime_accumulates_and_never_refills() {
        let f = SchedFlavor::Cfs;
        let k0 = f.initial_key();
        assert_eq!(k0, 0);
        let k1 = f.key_after_run(k0, 1_000, CFS_WEIGHT_BASELINE);
        assert_eq!(k1, 1_000);
        assert!(!f.needs_refill(i64::MAX));
        assert_eq!(f.refill(k1), k1);
    }

    #[test]
    fn weight_scales_key_movement() {
        // A double-weight entity burns credit (or accrues vruntime) at
        // half the rate.
        for f in [SchedFlavor::Credit2, SchedFlavor::Cfs] {
            let base = f.key_after_run(0, 10_000, CFS_WEIGHT_BASELINE);
            let heavy = f.key_after_run(0, 10_000, 2 * CFS_WEIGHT_BASELINE);
            assert_eq!(heavy.abs() * 2, base.abs(), "{f}");
        }
    }

    #[test]
    fn zero_weight_is_clamped() {
        let f = SchedFlavor::Cfs;
        // Must not divide by zero.
        let k = f.key_after_run(0, 100, 0);
        assert!(k > 0);
    }

    #[test]
    fn labels() {
        assert!(SchedFlavor::Credit2.to_string().contains("Xen"));
        assert!(SchedFlavor::Cfs.to_string().contains("KVM"));
    }
}
