//! Property tests of the scheduler substrate: arbitrary operation
//! sequences must preserve every structural invariant.

use horse_sched::{
    GovernorPolicy, HostScheduler, SandboxId, SchedConfig, SchedFlavor, Vcpu, VcpuId,
};
use proptest::prelude::*;

fn sched(flavor: SchedFlavor) -> HostScheduler {
    HostScheduler::new(SchedConfig {
        topology: horse_sched::CpuTopology::new(1, 6, false),
        ull_queues: 2,
        governor_policy: GovernorPolicy::Schedutil,
        flavor,
    })
}

/// One randomized scheduler operation.
#[derive(Debug, Clone)]
enum Op {
    Enqueue { queue: usize, key: i64 },
    PickNext { queue: usize },
    LoadUpdate { queue: usize, n: u32 },
    Decay,
    AssignUll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..6, -1000i64..1000).prop_map(|(queue, key)| Op::Enqueue { queue, key }),
        (0usize..6).prop_map(|queue| Op::PickNext { queue }),
        (0usize..6, 1u32..8).prop_map(|(queue, n)| Op::LoadUpdate { queue, n }),
        Just(Op::Decay),
        Just(Op::AssignUll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Queues stay sorted, counters stay consistent, nothing leaks —
    /// under any interleaving of operations and under both flavors.
    #[test]
    fn random_ops_preserve_invariants(
        ops in proptest::collection::vec(op_strategy(), 0..200),
        cfs in any::<bool>(),
    ) {
        let flavor = if cfs { SchedFlavor::Cfs } else { SchedFlavor::Credit2 };
        let mut s = sched(flavor);
        let all_queues: Vec<_> = s
            .general_queues()
            .iter()
            .chain(s.ull_queues())
            .copied()
            .collect();
        let mut next_vcpu = 0u64;
        let mut expected_queued = 0usize;
        let mut assigned_ull = Vec::new();

        for op in ops {
            match op {
                Op::Enqueue { queue, key } => {
                    let rq = all_queues[queue % all_queues.len()];
                    let v = Vcpu::new(VcpuId::new(next_vcpu), SandboxId::new(0));
                    next_vcpu += 1;
                    s.enqueue_vcpu(rq, key, v);
                    expected_queued += 1;
                }
                Op::PickNext { queue } => {
                    let rq = all_queues[queue % all_queues.len()];
                    if s.pick_next(rq).is_some() {
                        expected_queued -= 1;
                    }
                }
                Op::LoadUpdate { queue, n } => {
                    let rq = all_queues[queue % all_queues.len()];
                    let load = s.load_update_per_vcpu(rq, n);
                    prop_assert!(load.is_finite() && load >= 0.0);
                }
                Op::Decay => s.tick_decay(),
                Op::AssignUll => assigned_ull.push(s.assign_ull_queue()),
            }
            // Invariants after every step.
            for &rq in &all_queues {
                s.queue_list(rq)
                    .check_invariants(s.arena())
                    .map_err(TestCaseError::fail)?;
            }
        }
        prop_assert_eq!(s.total_queued(), expected_queued);
        prop_assert_eq!(s.arena().live(), expected_queued);
        // uLL assignments balance within 1 of each other.
        let counts: Vec<usize> = s
            .ull_queues()
            .iter()
            .map(|q| s.queue(*q).paused_assigned())
            .collect();
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "unbalanced uLL assignment: {counts:?}");
        for rq in assigned_ull {
            s.release_ull_queue(rq);
        }
    }

    /// pick_next always yields keys in non-decreasing order between
    /// enqueues (the sorted-queue contract the resume paths depend on).
    #[test]
    fn drain_is_sorted(keys in proptest::collection::vec(-10_000i64..10_000, 0..100)) {
        let mut s = sched(SchedFlavor::Credit2);
        let rq = s.ull_queues()[0];
        for (i, &k) in keys.iter().enumerate() {
            s.enqueue_vcpu(rq, k, Vcpu::new(VcpuId::new(i as u64), SandboxId::new(0)));
        }
        let mut last = i64::MIN;
        while let Some((k, _)) = s.pick_next(rq) {
            prop_assert!(k >= last);
            last = k;
        }
        prop_assert!(s.arena().is_empty());
    }

    /// Load updates commute with the governor: identical loads yield
    /// identical frequency targets regardless of how they were applied.
    #[test]
    fn governor_sees_identical_loads(n in 1u32..64) {
        let s1 = sched(SchedFlavor::Credit2);
        let s2 = sched(SchedFlavor::Credit2);
        let rq1 = s1.ull_queues()[0];
        let rq2 = s2.ull_queues()[0];
        s1.load_update_per_vcpu(rq1, n);
        s2.load_update_coalesced(rq2, s2.tracker().coalesce(n));
        prop_assert_eq!(s1.target_pstate(rq1), s2.target_pstate(rq2));
    }
}

proptest! {
    /// The dispatch loop conserves work: completed + remaining always
    /// equals submitted, under both flavors and any time budget.
    #[test]
    fn dispatch_conserves_work(
        works in proptest::collection::vec(1u64..50_000, 1..20),
        budget in 1u64..2_000_000,
        cfs in any::<bool>(),
    ) {
        use horse_sched::dispatch::run_queue;
        use std::collections::HashMap;

        let flavor = if cfs { SchedFlavor::Cfs } else { SchedFlavor::Credit2 };
        let mut s = sched(flavor);
        let rq = s.ull_queues()[0];
        let mut work: HashMap<VcpuId, u64> = HashMap::new();
        let total: u64 = works.iter().sum();
        for (i, &w) in works.iter().enumerate() {
            let id = VcpuId::new(i as u64);
            s.enqueue_vcpu(rq, flavor.initial_key(), Vcpu::new(id, SandboxId::new(0)));
            work.insert(id, w);
        }
        let out = run_queue(&mut s, rq, &mut work, budget);
        let completed: u64 = out
            .completions
            .iter()
            .map(|c| works[c.vcpu.as_u64() as usize])
            .sum();
        let remaining: u64 = work.values().sum();
        // Conservation: CPU time spent equals work consumed (completed
        // entities in full, the preempted one partially).
        prop_assert_eq!(out.elapsed_ns, total - remaining, "time equals work consumed");
        prop_assert!(out.elapsed_ns <= budget);
        prop_assert!(completed <= out.elapsed_ns, "completed work fits in elapsed time");
        // Completion times are monotone.
        prop_assert!(out.completions.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // The queue holds exactly the unfinished entities.
        prop_assert_eq!(s.queue(rq).len(), work.len());
    }
}
