//! # horse-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index), plus criterion micro-benchmarks. This library holds the shared
//! measurement helpers so every binary reports with the paper's
//! methodology: 10 repetitions, 95 % confidence intervals, and
//! paper-vs-measured columns.
//!
//! | Artifact | Binary |
//! |----------|--------|
//! | Table 1  | `cargo run -p horse-bench --bin table1` |
//! | Figure 1 | `cargo run -p horse-bench --bin fig1` |
//! | Figure 2 | `cargo run -p horse-bench --bin fig2` |
//! | Figure 3 | `cargo run -p horse-bench --bin fig3` |
//! | §5.2     | `cargo run -p horse-bench --bin overhead` |
//! | Figure 4 | `cargo run -p horse-bench --bin fig4` |
//! | §5.4     | `cargo run -p horse-bench --bin colocation` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use horse_metrics::RunningStats;
use horse_sched::{CpuTopology, GovernorPolicy, SchedConfig, SchedFlavor};
use horse_vmm::{CostModel, PausePolicy, ResumeBreakdown, ResumeMode, SandboxConfig, Vmm};

/// Repetitions per experiment point — the paper runs each experiment 10×.
pub const REPETITIONS: u32 = 10;

/// The vCPU sweep used throughout the paper's Figures 2–3 (1 to 36).
pub const VCPU_SWEEP: [u32; 9] = [1, 2, 4, 8, 12, 16, 24, 30, 36];

/// The r650-like scheduler configuration used by all resume experiments.
pub fn paper_sched_config() -> SchedConfig {
    SchedConfig {
        topology: CpuTopology::r650(false),
        ull_queues: 1,
        governor_policy: GovernorPolicy::Performance,
        flavor: horse_sched::SchedFlavor::default(),
    }
}

/// The pause policy matching a resume mode (what HORSE precomputes at
/// pause time is exactly what the mode consumes).
pub fn policy_for(mode: ResumeMode) -> PausePolicy {
    PausePolicy {
        precompute_merge: mode.uses_ppsm(),
        precompute_coalesce: mode.uses_coalescing(),
    }
}

/// The hypervisor whose calibration and scheduler flavor an experiment
/// runs under (the paper implements HORSE in both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Hypervisor {
    /// Firecracker / Linux-KVM: CFS flavor, Firecracker calibration.
    #[default]
    Firecracker,
    /// Xen 4.17: credit2 flavor, Xen calibration.
    Xen,
}

impl Hypervisor {
    /// Cost calibration for this hypervisor.
    pub fn cost_model(self) -> CostModel {
        match self {
            Hypervisor::Firecracker => CostModel::calibrated(),
            Hypervisor::Xen => CostModel::xen_calibrated(),
        }
    }

    /// Scheduler flavor for this hypervisor.
    pub fn flavor(self) -> SchedFlavor {
        match self {
            Hypervisor::Firecracker => SchedFlavor::Cfs,
            Hypervisor::Xen => SchedFlavor::Credit2,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Hypervisor::Firecracker => "Firecracker/KVM",
            Hypervisor::Xen => "Xen 4.17",
        }
    }
}

/// Runs one pause/resume cycle on a given hypervisor's substrate.
pub fn one_resume_on(hv: Hypervisor, vcpus: u32, mode: ResumeMode) -> ResumeBreakdown {
    let mut config = paper_sched_config();
    config.flavor = hv.flavor();
    let mut vmm = Vmm::new(config, hv.cost_model());
    let cfg = SandboxConfig::builder()
        .vcpus(vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("static config is valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("fresh sandbox starts");
    vmm.pause(id, policy_for(mode))
        .expect("running sandbox pauses");
    vmm.resume(id, mode)
        .expect("paused sandbox resumes")
        .breakdown
}

/// Runs one pause/resume cycle of a fresh sandbox and returns the
/// instrumented breakdown.
pub fn one_resume(vcpus: u32, mode: ResumeMode) -> ResumeBreakdown {
    let mut vmm = Vmm::new(paper_sched_config(), CostModel::calibrated());
    let cfg = SandboxConfig::builder()
        .vcpus(vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("static config is valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("fresh sandbox starts");
    vmm.pause(id, policy_for(mode))
        .expect("running sandbox pauses");
    vmm.resume(id, mode)
        .expect("paused sandbox resumes")
        .breakdown
}

/// Measured resume statistics at one sweep point: per-step means over
/// [`REPETITIONS`] runs plus the total's confidence interval.
#[derive(Debug, Clone)]
pub struct ResumePoint {
    /// vCPU count of the sweep point.
    pub vcpus: u32,
    /// Resume mode measured.
    pub mode: ResumeMode,
    /// Mean duration of each pipeline step (ns), pipeline order.
    pub step_means: [f64; 6],
    /// Statistics of the total resume duration.
    pub total: RunningStats,
}

impl ResumePoint {
    /// Mean total resume duration (ns).
    pub fn mean_total_ns(&self) -> f64 {
        self.total.mean()
    }

    /// Mean share of steps ④+⑤ (the paper's dominant-cost metric).
    pub fn dominant_share(&self) -> f64 {
        let total: f64 = self.step_means.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            (self.step_means[3] + self.step_means[4]) / total
        }
    }
}

/// Measures one `(vcpus, mode)` point with the paper's repetition count.
pub fn measure_resume(vcpus: u32, mode: ResumeMode) -> ResumePoint {
    measure_resume_on(Hypervisor::Firecracker, vcpus, mode)
}

/// Measures one `(hypervisor, vcpus, mode)` point.
pub fn measure_resume_on(hv: Hypervisor, vcpus: u32, mode: ResumeMode) -> ResumePoint {
    let mut step_sums = [0f64; 6];
    let mut total = RunningStats::new();
    for _ in 0..REPETITIONS {
        let b = one_resume_on(hv, vcpus, mode);
        for (i, step) in horse_vmm::ResumeStep::ALL.iter().enumerate() {
            step_sums[i] += b.get(*step) as f64;
        }
        total.push(b.total_ns() as f64);
    }
    let step_means = step_sums.map(|s| s / f64::from(REPETITIONS));
    ResumePoint {
        vcpus,
        mode,
        step_means,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_reproducible_and_tight() {
        let p = measure_resume(8, ResumeMode::Vanilla);
        assert_eq!(p.total.len(), u64::from(REPETITIONS));
        // The model is deterministic: CI collapses to ~0, far below the
        // paper's 3% budget.
        assert!(p.total.ci95().relative() <= 0.03);
        assert!(p.mean_total_ns() > 0.0);
        assert!((0.8..1.0).contains(&p.dominant_share()));
    }

    #[test]
    fn sweep_covers_paper_range() {
        assert_eq!(*VCPU_SWEEP.first().unwrap(), 1);
        assert_eq!(*VCPU_SWEEP.last().unwrap(), 36);
    }

    #[test]
    fn one_resume_mode_variants() {
        for mode in ResumeMode::ALL {
            let b = one_resume(4, mode);
            assert!(b.total_ns() > 0, "{mode}");
        }
    }
}

/// Minimal command-line options shared by the experiment binaries
/// (hand-rolled to stay inside the allowed dependency set).
///
/// Supported flags: `--seed <u64>`, `--vcpus <a,b,c>`, `--out <dir>`.
/// Unknown flags abort with a usage message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Master seed (default 42).
    pub seed: u64,
    /// vCPU sweep override (default: the binary's own sweep).
    pub vcpus: Option<Vec<u32>>,
    /// Output directory for CSV artifacts (default: none).
    pub out: Option<String>,
    /// Run on the Xen calibration/flavor instead of Firecracker/KVM.
    pub xen: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            seed: 42,
            vcpus: None,
            out: None,
            xen: false,
        }
    }
}

impl CliOptions {
    /// Parses options from an argument iterator (excluding `argv[0]`).
    ///
    /// # Errors
    ///
    /// Returns a usage string on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        const USAGE: &str = "usage: [--seed <u64>] [--vcpus <a,b,c>] [--out <dir>] [--xen]";
        let mut opts = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} needs a value; {USAGE}"))
            };
            match flag.as_str() {
                "--seed" => {
                    opts.seed = value()?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}; {USAGE}"))?;
                }
                "--vcpus" => {
                    let list = value()?
                        .split(',')
                        .map(|s| s.trim().parse::<u32>())
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| format!("bad --vcpus: {e}; {USAGE}"))?;
                    if list.is_empty() || list.contains(&0) {
                        return Err(format!("--vcpus needs positive values; {USAGE}"));
                    }
                    opts.vcpus = Some(list);
                }
                "--out" => opts.out = Some(value()?),
                "--xen" => opts.xen = true,
                other => return Err(format!("unknown flag {other}; {USAGE}")),
            }
        }
        Ok(opts)
    }

    /// Parses from the process arguments, exiting with the usage message
    /// on error (binary entry-point convenience).
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The sweep to use: the override or the given default.
    pub fn sweep_or(&self, default: &[u32]) -> Vec<u32> {
        self.vcpus.clone().unwrap_or_else(|| default.to_vec())
    }

    /// The hypervisor selected by `--xen`.
    pub fn hypervisor(&self) -> Hypervisor {
        if self.xen {
            Hypervisor::Xen
        } else {
            Hypervisor::Firecracker
        }
    }
}

#[cfg(test)]
mod cli_tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, CliOptions::default());
        assert_eq!(o.sweep_or(&[1, 2]), vec![1, 2]);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&["--seed", "7", "--vcpus", "1,8,36", "--out", "results"]).unwrap();
        assert_eq!(o.seed, 7);
        assert_eq!(o.vcpus.as_deref(), Some(&[1, 8, 36][..]));
        assert_eq!(o.out.as_deref(), Some("results"));
        assert_eq!(o.sweep_or(&[99]), vec![1, 8, 36]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--vcpus", "1,0"]).is_err());
        assert!(parse(&["--wat"]).is_err());
    }
}
