//! Emits **Perfetto-loadable traces** of one pause/resume cycle, HORSE
//! vs vanilla, plus folded stacks for flame graphs — then re-reads the
//! JSON and verifies it is a well-formed Chrome trace covering all six
//! resume steps (and, for HORSE, the per-merge-thread splice work).
//!
//! Run: `cargo run -p horse-bench --bin trace_resume -- --out results`
//! and open the `.trace.json` files at <https://ui.perfetto.dev>.

use horse_metrics::export::{write_chrome_trace, write_folded_stacks};
use horse_telemetry::{json, Recorder, TraceSnapshot};
use horse_vmm::{ResumeMode, SandboxConfig, Vmm};

/// One traced pause/resume cycle in the given mode.
fn trace_cycle(mode: ResumeMode, vcpus: u32) -> TraceSnapshot {
    let mut vmm = Vmm::new(
        horse_bench::paper_sched_config(),
        horse_bench::Hypervisor::Firecracker.cost_model(),
    );
    vmm.set_recorder(Recorder::enabled());
    let cfg = SandboxConfig::builder()
        .vcpus(vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("static config is valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("fresh sandbox starts");
    vmm.pause(id, horse_bench::policy_for(mode))
        .expect("running sandbox pauses");
    vmm.resume(id, mode).expect("paused sandbox resumes");
    vmm.recorder().drain()
}

/// Validates a written `.trace.json`: parses it back, checks the Chrome
/// trace shape and that the six resume steps (and optionally the splice
/// tracks) are present. Returns the number of complete ("X") spans.
fn validate_trace(path: &str, expect_splices: bool) -> usize {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    let root = json::parse(&text).expect("trace is valid JSON");
    assert_eq!(
        root.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns"),
        "{path}: displayTimeUnit"
    );
    assert_eq!(
        root.get("droppedEvents").and_then(|v| v.as_f64()),
        Some(0.0),
        "{path}: the default ring must not drop a single cycle"
    );
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    let mut spans = 0usize;
    let mut splice_tids = Vec::new();
    let mut step_names = Vec::new();
    for ev in events {
        let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
        match ph {
            "X" => {
                spans += 1;
                assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some());
            }
            "i" => {}
            other => panic!("{path}: unexpected phase {other:?}"),
        }
        if ev.get("cat").and_then(|v| v.as_str()) == Some("resume") && ph == "X" {
            step_names.push(name.to_string());
        }
        if name == "splice" {
            splice_tids.push(ev.get("tid").and_then(|v| v.as_f64()).expect("tid"));
        }
    }
    for step in [
        "parse",
        "lock",
        "sanity",
        "sorted_merge",
        "load_update",
        "finalize",
    ] {
        assert!(
            step_names.iter().any(|n| n == step),
            "{path}: missing resume step span {step:?}"
        );
    }
    if expect_splices {
        assert!(!splice_tids.is_empty(), "{path}: no splice work recorded");
        let n = splice_tids.len();
        splice_tids.sort_by(f64::total_cmp);
        splice_tids.dedup();
        assert_eq!(splice_tids.len(), n, "{path}: one track per merge thread");
    }
    spans
}

fn main() {
    let opts = horse_bench::CliOptions::from_env();
    let dir = opts.out.clone().unwrap_or_else(|| "results".to_string());
    std::fs::create_dir_all(&dir).expect("create out dir");

    for (mode, expect_splices) in [(ResumeMode::Horse, true), (ResumeMode::Vanilla, false)] {
        let snapshot = trace_cycle(mode, 8);
        let stem = format!("{dir}/resume_{}", mode.label());
        let trace = format!("{stem}.trace.json");
        let folded = format!("{stem}.folded");
        write_chrome_trace(&trace, &snapshot).expect("write trace");
        write_folded_stacks(&folded, &snapshot).expect("write folded stacks");
        let spans = validate_trace(&trace, expect_splices);
        println!(
            "{trace}: {} events ({spans} spans), {} counters, 0 dropped — valid",
            snapshot.events.len(),
            snapshot.counters.len(),
        );
        println!("{folded}: flamegraph.pl input");
    }
    println!("open the .trace.json files at https://ui.perfetto.dev");
}
