//! Continuous-profiling report with a CI gate.
//!
//! Runs a seeded, single-driver cluster soak with the profiling plane
//! enabled (the counting `#[global_allocator]`, phase-scoped allocation
//! attribution, and timed-lock/CAS contention counters) and emits:
//!
//! * `BENCH_profile.json` — allocations and bytes per pipeline phase,
//!   lock acquisitions / nominal wait / CAS retries per contention
//!   site, per-shard warm-pool occupancy, and the two gated leaves
//!   (`gate.allocs_per_warm_invoke`, `gate.lock_wait_ns`);
//! * `BENCH_profile.prom` — the same state as a Prometheus text-format
//!   page (plus wall-clock lock-wait histograms, which are informative
//!   only and never gated).
//!
//! Everything under the JSON document's deterministic sections comes
//! from *counts* of a seeded single-threaded workload, so a given tree
//! reproduces them bit-for-bit: `gate.lock_wait_ns` is acquisitions ×
//! a nominal per-acquisition constant — wall-clock waits are too noisy
//! for a ±10 % gate, acquisition counts are not. The binary proves the
//! determinism claim on every run by executing the measured soak twice
//! and failing if any gated number differs, and proves profiling is
//! observation-only by running once more with the plane disabled and
//! failing if any virtual-latency percentile moved.
//!
//! Modes:
//!
//! * `profile_report --seed 42 --out results` — run and write artifacts;
//! * `profile_report --against results/bench_baseline.json` — compare
//!   the gated leaves against the committed baseline's `profile_doc`
//!   section and exit non-zero beyond ±10 % (the CI profile gate);
//! * `profile_report --write-baseline` — merge this seed's
//!   `profile_doc` section into the committed baseline, preserving the
//!   sections other binaries own;
//! * `profile_report --inflate-allocs 32 --against ...` — perform 32
//!   extra heap allocations per warm invoke, which MUST trip the gate
//!   (CI runs this as the gate's negative test).

use std::collections::BTreeMap;
use std::process::Command;

use horse_faas::{Cluster, DispatchPolicy, PlatformConfig, StartStrategy};
use horse_metrics::Histogram;
use horse_telemetry::alloc::PhaseAllocStats;
use horse_telemetry::contention::SiteStats;
use horse_telemetry::json::{self, JsonValue};
use horse_telemetry::{profiling, CountingAlloc, Recorder};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

/// The whole point of this binary: every allocation in the process goes
/// through the counting allocator (a single relaxed load + fall-through
/// to the system allocator while profiling is disabled).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SCHEMA_PROFILE: &str = "horse-bench/profile/1";
const SCHEMA_BASELINE: &str = "horse-bench/baseline/1";

/// Relative drift tolerated per gated leaf by `--against` (the issue's
/// ±10 % band; the workload is deterministic, so an unchanged tree
/// reproduces the baseline exactly).
const NOISE_BAND: f64 = 0.10;

/// Nominal cost charged per timed-lock acquisition when computing the
/// deterministic `gate.lock_wait_ns` leaf (an uncontended parking_lot
/// acquire is on this order). The *measured* wall-clock waits are
/// exported in the `.prom` page instead.
const NOMINAL_ACQUIRE_NS: u64 = 25;

/// Warm (vanilla resume) invocations of the measured loop — the
/// denominator of `gate.allocs_per_warm_invoke`.
const WARM_ROUNDS: usize = 200;
/// HORSE invocations exercising pause/plan/resume/splice/coalesce
/// phases.
const HORSE_ROUNDS: usize = 200;
/// Unmeasured invocations before the measured warm loop. The first few
/// invocations on a fresh host fill the scratch-buffer pools (plan
/// buffers, register/page scratch) that the steady state then recycles
/// forever; the zero-alloc gate is a *steady-state* claim, so those
/// one-time pool fills run before the measured window opens.
const WARMUP_ROUNDS: usize = 16;

struct Options {
    seed: u64,
    out: String,
    against: Option<String>,
    write_baseline: bool,
    inflate_allocs: u64,
    gate_zero_alloc: bool,
}

const USAGE: &str = "usage: profile_report [--seed <u64>] [--out <dir>] \
     [--against <baseline.json>] [--write-baseline] [--inflate-allocs <u64>] \
     [--gate-zero-alloc]";

impl Options {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Options {
            seed: 42,
            out: "results".to_string(),
            against: None,
            write_baseline: false,
            inflate_allocs: 0,
            gate_zero_alloc: false,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} needs a value; {USAGE}"))
            };
            match flag.as_str() {
                "--seed" => {
                    opts.seed = value()?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}; {USAGE}"))?;
                }
                "--out" => opts.out = value()?,
                "--against" => opts.against = Some(value()?),
                "--write-baseline" => opts.write_baseline = true,
                "--inflate-allocs" => {
                    opts.inflate_allocs = value()?
                        .parse()
                        .map_err(|e| format!("bad --inflate-allocs: {e}; {USAGE}"))?;
                }
                "--gate-zero-alloc" => opts.gate_zero_alloc = true,
                other => return Err(format!("unknown flag {other}; {USAGE}")),
            }
        }
        Ok(opts)
    }
}

fn git_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Everything one measured soak produces.
struct SoakResult {
    /// Total allocations observed during the warm loop (all phases).
    warm_allocs: u64,
    /// Per-phase allocation profile at the end of the soak.
    alloc: Vec<PhaseAllocStats>,
    /// Per-site contention profile at the end of the soak.
    contention: Vec<SiteStats>,
    /// Gauge state at drain (carries the per-shard pool occupancy).
    gauges: Vec<(&'static str, u64)>,
    snapshot: horse_telemetry::TraceSnapshot,
    /// Virtual (cost-model) latency of the warm and horse loops —
    /// deterministic, used for the bit-identity check.
    virt_init: Histogram,
    virt_total: Histogram,
}

/// Runs the seeded single-driver soak. With `profiled`, the counting
/// allocator and contention counters are live (and reset first); the
/// virtual-latency results must be identical either way.
fn soak(seed: u64, profiled: bool, inflate_allocs: u64) -> SoakResult {
    if profiled {
        profiling::reset();
    }
    profiling::set_enabled(profiled);

    let mut cluster = Cluster::with_config(
        3,
        DispatchPolicy::RoundRobin,
        seed,
        PlatformConfig::default(),
    );
    let recorder = Recorder::enabled();
    cluster.set_recorder(recorder.clone());

    let vanilla = SandboxConfig::builder().vcpus(1).build().unwrap();
    let ull = SandboxConfig::builder().vcpus(2).ull(true).build().unwrap();
    let warm_fn = cluster.register("nat", Category::Cat2, vanilla);
    let horse_fn = cluster.register("filter", Category::Cat3, ull);
    cluster
        .provision_all(warm_fn, 2, StartStrategy::Warm)
        .expect("provision warm pool");
    cluster
        .provision_all(horse_fn, 2, StartStrategy::Horse)
        .expect("provision horse pool");
    recorder.drain(); // provisioning is untracked noise: keep it out

    let mut virt_init = Histogram::new();
    let mut virt_total = Histogram::new();

    for _ in 0..WARMUP_ROUNDS {
        cluster
            .invoke(warm_fn, StartStrategy::Warm)
            .expect("warm-up invoke");
        cluster
            .invoke(horse_fn, StartStrategy::Horse)
            .expect("warm-up invoke");
    }

    let allocs_before = total_allocs();
    for _ in 0..WARM_ROUNDS {
        let (_, record) = cluster
            .invoke(warm_fn, StartStrategy::Warm)
            .expect("warm invoke");
        virt_init.record(record.init_ns);
        virt_total.record(record.total_ns());
        // The gate's negative self-test: deliberately allocate per
        // invoke so `allocs_per_warm_invoke` provably moves.
        for _ in 0..inflate_allocs {
            std::hint::black_box(vec![0u8; 256]);
        }
    }
    let warm_allocs = total_allocs() - allocs_before;

    for _ in 0..HORSE_ROUNDS {
        let (_, record) = cluster
            .invoke(horse_fn, StartStrategy::Horse)
            .expect("horse invoke");
        virt_init.record(record.init_ns);
        virt_total.record(record.total_ns());
    }
    let snapshot = recorder.drain();

    let result = SoakResult {
        warm_allocs,
        alloc: horse_telemetry::alloc::snapshot(),
        contention: horse_telemetry::contention::snapshot(),
        gauges: snapshot.gauges.clone(),
        snapshot,
        virt_init,
        virt_total,
    };
    profiling::set_enabled(false);
    result
}

/// Allocations observed so far, summed across every phase (including
/// untracked) — zero while profiling is disabled. Reads the counters
/// without allocating, so the probe never counts itself.
fn total_allocs() -> u64 {
    horse_telemetry::alloc::total_allocs()
}

fn obj(entries: Vec<(String, JsonValue)>) -> JsonValue {
    JsonValue::Object(entries.into_iter().collect::<BTreeMap<_, _>>())
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

/// The deterministic sections of `BENCH_profile.json` (everything the
/// baseline stores).
fn deterministic_sections(r: &SoakResult) -> Vec<(String, JsonValue)> {
    let total_invocations = (WARM_ROUNDS + HORSE_ROUNDS) as f64;

    let lock_wait_ns: u64 = r
        .contention
        .iter()
        .map(|s| s.acquisitions * NOMINAL_ACQUIRE_NS)
        .sum();
    let gate = obj(vec![
        (
            "allocs_per_warm_invoke".into(),
            num(r.warm_allocs as f64 / WARM_ROUNDS as f64),
        ),
        ("lock_wait_ns".into(), num(lock_wait_ns as f64)),
    ]);

    let mut phases = BTreeMap::new();
    for s in &r.alloc {
        phases.insert(
            s.phase.name().to_string(),
            obj(vec![
                ("allocs".into(), num(s.allocs as f64)),
                ("bytes".into(), num(s.bytes_allocated as f64)),
                (
                    "allocs_per_invoke".into(),
                    num(s.allocs as f64 / total_invocations),
                ),
                (
                    "bytes_per_invoke".into(),
                    num(s.bytes_allocated as f64 / total_invocations),
                ),
                // Pool-recycled buffers: hot-path work the phase served
                // *without* touching the heap. The complement of
                // `allocs` — a zero-alloc steady state shows recycles
                // climbing while allocs stays flat.
                ("recycles".into(), num(s.recycles as f64)),
                (
                    "recycles_per_invoke".into(),
                    num(s.recycles as f64 / total_invocations),
                ),
            ]),
        );
    }

    let mut sites = BTreeMap::new();
    for s in &r.contention {
        sites.insert(
            s.site.name().to_string(),
            obj(vec![
                ("acquisitions".into(), num(s.acquisitions as f64)),
                ("cas_retries".into(), num(s.cas_retries as f64)),
                (
                    "cas_retries_per_invoke".into(),
                    num(s.cas_retries as f64 / total_invocations),
                ),
                (
                    "nominal_wait_ns".into(),
                    num((s.acquisitions * NOMINAL_ACQUIRE_NS) as f64),
                ),
            ]),
        );
    }

    let mut pool_shards = BTreeMap::new();
    for (name, value) in &r.gauges {
        if name.starts_with("pool_shard") {
            pool_shards.insert(name.to_string(), num(*value as f64));
        }
    }

    vec![
        ("gate".to_string(), gate),
        ("phases".to_string(), JsonValue::Object(phases)),
        ("sites".to_string(), JsonValue::Object(sites)),
        ("pool_shards".to_string(), JsonValue::Object(pool_shards)),
        (
            "invocations".to_string(),
            obj(vec![
                ("warm".into(), num(WARM_ROUNDS as f64)),
                ("horse".into(), num(HORSE_ROUNDS as f64)),
            ]),
        ),
    ]
}

/// Virtual-latency fingerprint used by the determinism and bit-identity
/// checks: exact percentiles of the cost-model latencies.
fn virt_fingerprint(r: &SoakResult) -> Vec<u64> {
    [&r.virt_init, &r.virt_total]
        .iter()
        .flat_map(|h| {
            [50.0, 99.0, 99.9, 100.0]
                .iter()
                .map(|&p| h.percentile(p))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Flattens every numeric leaf to `(dotted.path, value)`.
fn numeric_leaves(value: &JsonValue, prefix: &str, out: &mut BTreeMap<String, f64>) {
    if let JsonValue::Object(map) = value {
        for (key, child) in map {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            match child {
                JsonValue::Number(n) => {
                    out.insert(path, *n);
                }
                _ => numeric_leaves(child, &path, out),
            }
        }
    }
}

/// Compares this run's gated leaves against the baseline's
/// `profile_doc.gate` for `seed`. Returns violations (empty = pass).
fn compare_gate(baseline: &JsonValue, seed: u64, gate: &JsonValue) -> Result<Vec<String>, String> {
    if baseline.get("schema").and_then(|v| v.as_str()) != Some(SCHEMA_BASELINE) {
        return Err(format!("baseline schema is not {SCHEMA_BASELINE}"));
    }
    let expected_gate = baseline
        .get("seeds")
        .and_then(|s| s.get(&seed.to_string()))
        .and_then(|e| e.get("profile_doc"))
        .and_then(|d| d.get("gate"))
        .ok_or_else(|| {
            format!("baseline has no profile_doc.gate for seed {seed} (run --write-baseline)")
        })?;
    let mut expected = BTreeMap::new();
    numeric_leaves(expected_gate, "gate", &mut expected);
    let mut actual = BTreeMap::new();
    numeric_leaves(gate, "gate", &mut actual);
    if expected.is_empty() {
        return Err(format!(
            "baseline profile_doc.gate for seed {seed} is empty"
        ));
    }
    let mut violations = Vec::new();
    for (path, base) in &expected {
        match actual.get(path) {
            None => violations.push(format!("{path}: present in baseline, missing in run")),
            Some(cur) => {
                let drift = (cur - base).abs() / base.abs().max(1.0);
                if drift > NOISE_BAND {
                    violations.push(format!(
                        "{path}: {base:.1} -> {cur:.1} ({:+.1} % > ±{:.0} % band)",
                        100.0 * (cur - base) / base.abs().max(1.0),
                        100.0 * NOISE_BAND
                    ));
                }
            }
        }
    }
    Ok(violations)
}

fn write_json(path: &str, value: &JsonValue) {
    let mut text = value.render();
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out).expect("create out dir");
    let sha = git_sha();

    // Run 1 + 2 (profiled): the determinism self-check. Every gated
    // number must reproduce exactly — the gate is only sound if the
    // measurement is.
    let first = soak(opts.seed, true, opts.inflate_allocs);
    let second = soak(opts.seed, true, opts.inflate_allocs);
    let first_sections = obj(deterministic_sections(&first));
    let second_sections = obj(deterministic_sections(&second));
    if first_sections.render() != second_sections.render() {
        eprintln!("profile_report: two identical profiled soaks disagree — measurement is not");
        eprintln!("deterministic; refusing to write a gate baseline from noise");
        std::process::exit(1);
    }
    if virt_fingerprint(&first) != virt_fingerprint(&second) {
        eprintln!("profile_report: virtual latencies differ across identical profiled soaks");
        std::process::exit(1);
    }

    // Run 3 (unprofiled): profiling must be observation-only — the
    // virtual results of the pipeline are bit-identical either way.
    let unprofiled = soak(opts.seed, false, opts.inflate_allocs);
    let bit_identical = virt_fingerprint(&unprofiled) == virt_fingerprint(&first);
    if !bit_identical {
        eprintln!("profile_report: enabling profiling changed virtual latencies — the plane");
        eprintln!("is supposed to observe the pipeline, not perturb it");
        std::process::exit(1);
    }

    let mut doc_entries = vec![
        (
            "schema".to_string(),
            JsonValue::String(SCHEMA_PROFILE.into()),
        ),
        ("git_sha".to_string(), JsonValue::String(sha.clone())),
        ("seed".to_string(), num(opts.seed as f64)),
        (
            "inflate_allocs".to_string(),
            num(opts.inflate_allocs as f64),
        ),
        (
            "checks".to_string(),
            obj(vec![
                ("deterministic".into(), JsonValue::Bool(true)),
                ("bit_identical_virtual".into(), JsonValue::Bool(true)),
            ]),
        ),
    ];
    doc_entries.extend(deterministic_sections(&first));
    let doc = obj(doc_entries);

    let json_path = format!("{}/BENCH_profile.json", opts.out);
    write_json(&json_path, &doc);
    let prom_path = format!("{}/BENCH_profile.prom", opts.out);
    horse_metrics::export::write_prometheus_page(
        &prom_path,
        &first.snapshot,
        &first.alloc,
        &first.contention,
    )
    .expect("write prometheus page");

    let gate = doc.get("gate").expect("doc carries gate").clone();
    let mut gate_leaves = BTreeMap::new();
    numeric_leaves(&gate, "gate", &mut gate_leaves);
    println!(
        "{json_path}: {SCHEMA_PROFILE} (sha {sha}, seed {})",
        opts.seed
    );
    println!("{prom_path}: Prometheus text-format page");
    for (path, v) in &gate_leaves {
        println!("  {path} = {v:.1}");
    }

    // The exact-zero gate: the steady-state warm path recycles every
    // buffer it touches, so *any* heap allocation per warm invoke is a
    // regression — no noise band, the leaf must be 0.0.
    if opts.gate_zero_alloc {
        let allocs_per_warm = first.warm_allocs as f64 / WARM_ROUNDS as f64;
        if allocs_per_warm != 0.0 {
            eprintln!(
                "zero-alloc gate FAILED: gate.allocs_per_warm_invoke = {allocs_per_warm:.2} \
                 (the warm path must not allocate)"
            );
            std::process::exit(1);
        }
        println!("zero-alloc gate: gate.allocs_per_warm_invoke == 0");
    }

    if opts.write_baseline {
        let path = format!("{}/bench_baseline.json", opts.out);
        let mut seeds = match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text).expect("existing baseline parses") {
                JsonValue::Object(mut map) => match map.remove("seeds") {
                    Some(JsonValue::Object(seeds)) => seeds,
                    _ => BTreeMap::new(),
                },
                _ => BTreeMap::new(),
            },
            Err(_) => BTreeMap::new(),
        };
        // Merge at the section level: bench_suite's sections survive a
        // profile baseline refresh, and vice versa.
        let mut entry = match seeds.remove(&opts.seed.to_string()) {
            Some(JsonValue::Object(existing)) => existing,
            _ => BTreeMap::new(),
        };
        entry.insert(
            "profile_doc".to_string(),
            obj(deterministic_sections(&first)),
        );
        seeds.insert(opts.seed.to_string(), JsonValue::Object(entry));
        let baseline = obj(vec![
            ("schema".into(), JsonValue::String(SCHEMA_BASELINE.into())),
            ("seeds".into(), JsonValue::Object(seeds)),
        ]);
        write_json(&path, &baseline);
        println!(
            "{path}: profile_doc baseline updated for seed {}",
            opts.seed
        );
    }

    if let Some(baseline_path) = &opts.against {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let baseline = json::parse(&text).expect("baseline is valid JSON");
        match compare_gate(&baseline, opts.seed, &gate) {
            Ok(violations) if violations.is_empty() => {
                println!(
                    "profile gate: all gated leaves within ±{:.0} % of {baseline_path} (seed {})",
                    100.0 * NOISE_BAND,
                    opts.seed
                );
            }
            Ok(violations) => {
                eprintln!(
                    "profile gate FAILED against {baseline_path} (seed {}): {} leaf(s) out of band",
                    opts.seed,
                    violations.len()
                );
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
            Err(msg) => {
                eprintln!("profile gate error: {msg}");
                std::process::exit(1);
            }
        }
    }
}
