//! Regenerates **Figure 1**: sandbox initialization time as a percentage
//! of the end-to-end pipeline, for cold/restore/warm starts across the
//! three uLL categories.
//!
//! Run: `cargo run -p horse-bench --bin fig1`

use horse_faas::{FaasPlatform, PlatformConfig, StartStrategy};
use horse_metrics::report::Table;
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

fn main() {
    let paper = [
        // cold, restore, warm per category
        [99.99, 98.7, 6.07],
        [99.99, 99.98, 42.3],
        [99.99, 99.94, 61.1],
    ];

    let mut table = Table::new(
        "Figure 1 — init % of the trigger-to-completion pipeline",
        &["category", "mode", "init % (measured)", "init % (paper)"],
    );
    let mut series: Vec<String> = Vec::new();

    for (ci, category) in Category::ULL.iter().enumerate() {
        for (si, strategy) in [
            StartStrategy::Cold,
            StartStrategy::Restore,
            StartStrategy::Warm,
        ]
        .iter()
        .enumerate()
        {
            let mut platform = FaasPlatform::new(PlatformConfig::default());
            let cfg = SandboxConfig::builder()
                .vcpus(1)
                .ull(true)
                .build()
                .expect("valid");
            let f = platform.register(category.short_label(), *category, cfg);
            if strategy.needs_warm_pool() {
                platform.provision(f, 1, *strategy).expect("provision");
            }
            let mut share = 0.0;
            for _ in 0..horse_bench::REPETITIONS {
                share += 100.0 * platform.invoke(f, *strategy).expect("invoke").init_share();
            }
            share /= f64::from(horse_bench::REPETITIONS);
            table.row_owned(vec![
                category.short_label().to_string(),
                strategy.label().to_string(),
                format!("{share:.2}"),
                format!("{:.2}", paper[ci][si]),
            ]);
            series.push(format!(
                "{}/{} {:.2}",
                category.short_label(),
                strategy.label(),
                share
            ));
        }
    }
    println!("{}", table.render());
    println!(
        "bar series (category/mode measured%): {}",
        series.join("  ")
    );
}
