//! Regenerates **Figure 2**: the per-step breakdown of the vanilla resume
//! process while varying the sandbox's vCPU count from 1 to 36.
//!
//! The paper's headline observation: the sorted merge (④) and the load
//! update (⑤) amount to 87.5 %–93.1 % of the resume and grow with the
//! vCPU count, while the other four steps stay flat.
//!
//! Run: `cargo run -p horse-bench --bin fig2`

use horse_bench::{measure_resume_on, VCPU_SWEEP};
use horse_metrics::chart::LinePlot;
use horse_metrics::report::Table;
use horse_vmm::ResumeMode;

fn main() {
    let opts = horse_bench::CliOptions::from_env();
    let hv = opts.hypervisor();
    println!("hypervisor: {}", hv.label());
    let mut table = Table::new(
        "Figure 2 — vanilla resume breakdown vs vCPUs (ns per step)",
        &[
            "vcpus",
            "parse",
            "lock",
            "sanity",
            "sorted_merge",
            "load_update",
            "finalize",
            "total",
            "steps45 %",
        ],
    );
    let mut min_share = f64::MAX;
    let mut max_share: f64 = 0.0;
    let mut merge_pts = Vec::new();
    let mut load_pts = Vec::new();
    let mut fixed_pts = Vec::new();
    for vcpus in opts.sweep_or(&VCPU_SWEEP) {
        let p = measure_resume_on(hv, vcpus, ResumeMode::Vanilla);
        let share = 100.0 * p.dominant_share();
        min_share = min_share.min(share);
        max_share = max_share.max(share);
        merge_pts.push((f64::from(vcpus), p.step_means[3]));
        load_pts.push((f64::from(vcpus), p.step_means[4]));
        fixed_pts.push((
            f64::from(vcpus),
            p.step_means[0] + p.step_means[1] + p.step_means[2] + p.step_means[5],
        ));
        let mut row: Vec<String> = vec![vcpus.to_string()];
        row.extend(p.step_means.iter().map(|s| format!("{s:.0}")));
        row.push(format!("{:.0}", p.mean_total_ns()));
        row.push(format!("{share:.1}"));
        table.row_owned(row);
    }
    println!("{}", table.render());
    let mut plot = LinePlot::new("Figure 2 — step cost (ns) vs vCPUs", 60, 12);
    plot.series("sorted_merge", &merge_pts);
    plot.series("load_update", &load_pts);
    plot.series("steps 1+2+3+6", &fixed_pts);
    println!("{}", plot.render());
    println!("steps 4+5 share range: {min_share:.1}%–{max_share:.1}%  (paper: 87.5%–93.1%)");
    println!("fixed steps (1/2/3/6) stay flat; 4 and 5 grow with vCPUs — matching the paper.");
}
