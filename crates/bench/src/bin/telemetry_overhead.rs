//! Measures the **telemetry self-overhead**: wall-clock time of the
//! HORSE pause/resume cycle with an enabled recorder vs a disabled one.
//! The recorder is designed to cost one branch when disabled and a
//! handful of relaxed atomics per event when enabled, so the inflation
//! of the mean cycle must stay below 10 %.
//!
//! Run: `cargo run -p horse-bench --release --bin telemetry_overhead`

use horse_sched::SandboxId;
use horse_telemetry::Recorder;
use horse_vmm::{PausePolicy, ResumeMode, SandboxConfig, Vmm};
use std::time::Instant;

const CYCLES_PER_TRIAL: u32 = 2_000;
const TRIALS: u32 = 7;
const BUDGET: f64 = 0.10;

fn setup(recorder: Option<Recorder>) -> (Vmm, SandboxId) {
    let mut vmm = Vmm::new(
        horse_bench::paper_sched_config(),
        horse_bench::Hypervisor::Firecracker.cost_model(),
    );
    if let Some(r) = recorder {
        vmm.set_recorder(r);
    }
    let cfg = SandboxConfig::builder()
        .vcpus(16)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("static config is valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("fresh sandbox starts");
    (vmm, id)
}

/// Wall-clock nanoseconds per pause/resume cycle over one trial.
fn trial_ns_per_cycle(vmm: &mut Vmm, id: SandboxId) -> f64 {
    let start = Instant::now();
    for _ in 0..CYCLES_PER_TRIAL {
        vmm.pause(id, PausePolicy::horse()).expect("pauses");
        vmm.resume(id, ResumeMode::Horse).expect("resumes");
    }
    start.elapsed().as_nanos() as f64 / f64::from(CYCLES_PER_TRIAL)
}

fn main() {
    let (mut off, off_id) = setup(None);
    let (mut on, on_id) = setup(Some(Recorder::enabled()));

    // Warm-up: fault in queues, caches and the ring before timing.
    trial_ns_per_cycle(&mut off, off_id);
    trial_ns_per_cycle(&mut on, on_id);
    on.recorder().drain();

    // Interleave trials so clock drift and frequency scaling hit both
    // sides equally; keep each side's best (least-noisy) trial.
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    for _ in 0..TRIALS {
        best_off = best_off.min(trial_ns_per_cycle(&mut off, off_id));
        best_on = best_on.min(trial_ns_per_cycle(&mut on, on_id));
        // Drain outside the timed window: ring overwrite is lock-free
        // either way, but the overhead claim is about recording.
        on.recorder().drain();
    }

    let overhead = best_on / best_off - 1.0;
    println!("disabled recorder: {best_off:>10.1} ns/cycle");
    println!("enabled recorder:  {best_on:>10.1} ns/cycle");
    println!(
        "self-overhead:     {:>9.2} %  (budget {:.0} %)",
        overhead * 100.0,
        BUDGET * 100.0
    );
    assert!(
        overhead < BUDGET,
        "telemetry inflates the HORSE cycle by {:.2} % (budget {:.0} %)",
        overhead * 100.0,
        BUDGET * 100.0
    );
    println!("PASS: telemetry self-overhead is within budget");
}
