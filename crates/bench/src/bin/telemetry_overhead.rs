//! Measures the **telemetry self-overhead**: wall-clock time of the
//! HORSE pause/resume cycle with an enabled recorder vs a disabled one,
//! and — one layer up — with the continuous-profiling plane (counting
//! allocator attribution + timed locks + CAS retry counters) enabled on
//! top of the recorder. The recorder is designed to cost one branch
//! when disabled and a handful of relaxed atomics per event when
//! enabled; the profiling plane costs one relaxed load per hook when
//! disabled. Each layer's inflation of the mean cycle must stay below
//! 10 %.
//!
//! The counting `#[global_allocator]` is installed in this binary so
//! the measured cycle pays the allocator hook on every heap operation —
//! exactly what production profiling runs pay.
//!
//! Run: `cargo run -p horse-bench --release --bin telemetry_overhead`

use horse_sched::SandboxId;
use horse_telemetry::{profiling, CountingAlloc, Recorder};
use horse_vmm::{PausePolicy, ResumeMode, SandboxConfig, Vmm};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const CYCLES_PER_TRIAL: u32 = 2_000;
const TRIALS: u32 = 7;
const BUDGET: f64 = 0.10;

fn setup(recorder: Option<Recorder>) -> (Vmm, SandboxId) {
    let mut vmm = Vmm::new(
        horse_bench::paper_sched_config(),
        horse_bench::Hypervisor::Firecracker.cost_model(),
    );
    if let Some(r) = recorder {
        vmm.set_recorder(r);
    }
    let cfg = SandboxConfig::builder()
        .vcpus(16)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("static config is valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("fresh sandbox starts");
    (vmm, id)
}

/// Wall-clock nanoseconds per pause/resume cycle over one trial.
fn trial_ns_per_cycle(vmm: &mut Vmm, id: SandboxId) -> f64 {
    let start = Instant::now();
    for _ in 0..CYCLES_PER_TRIAL {
        vmm.pause(id, PausePolicy::horse()).expect("pauses");
        vmm.resume(id, ResumeMode::Horse).expect("resumes");
    }
    start.elapsed().as_nanos() as f64 / f64::from(CYCLES_PER_TRIAL)
}

/// Same trial with the profiling plane live for exactly the timed
/// window.
fn trial_ns_per_cycle_profiled(vmm: &mut Vmm, id: SandboxId) -> f64 {
    profiling::set_enabled(true);
    let ns = trial_ns_per_cycle(vmm, id);
    profiling::set_enabled(false);
    ns
}

/// Reports one layer's inflation; returns an error line instead of
/// asserting so every measurement prints before the process fails.
fn check(label: &str, base: f64, cost: f64) -> Option<String> {
    let overhead = cost / base - 1.0;
    println!(
        "{label}: {:>9.2} %  (budget {:.0} %)",
        overhead * 100.0,
        BUDGET * 100.0
    );
    (overhead >= BUDGET).then(|| {
        format!(
            "{label} inflates the HORSE cycle by {:.2} % (budget {:.0} %)",
            overhead * 100.0,
            BUDGET * 100.0
        )
    })
}

fn main() {
    profiling::set_enabled(false);
    let (mut off, off_id) = setup(None);
    let (mut on, on_id) = setup(Some(Recorder::enabled()));
    let (mut prof, prof_id) = setup(Some(Recorder::enabled()));

    // Warm-up: fault in queues, caches and the ring before timing.
    trial_ns_per_cycle(&mut off, off_id);
    trial_ns_per_cycle(&mut on, on_id);
    trial_ns_per_cycle_profiled(&mut prof, prof_id);
    on.recorder().drain();
    prof.recorder().drain();

    // Interleave trials so clock drift and frequency scaling hit all
    // sides equally; keep each side's best (least-noisy) trial.
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    let mut best_prof = f64::MAX;
    for _ in 0..TRIALS {
        best_off = best_off.min(trial_ns_per_cycle(&mut off, off_id));
        best_on = best_on.min(trial_ns_per_cycle(&mut on, on_id));
        best_prof = best_prof.min(trial_ns_per_cycle_profiled(&mut prof, prof_id));
        // Drain outside the timed window: ring overwrite is lock-free
        // either way, but the overhead claim is about recording.
        on.recorder().drain();
        prof.recorder().drain();
    }

    println!("disabled recorder:           {best_off:>10.1} ns/cycle");
    println!("enabled recorder:            {best_on:>10.1} ns/cycle");
    println!("recorder + profiling plane:  {best_prof:>10.1} ns/cycle");
    let failures: Vec<String> = [
        check("telemetry self-overhead ", best_off, best_on),
        check("profiling self-overhead ", best_on, best_prof),
    ]
    .into_iter()
    .flatten()
    .collect();

    // The profiled side must actually have been observed — a zero
    // profile would mean the budget above was measured against a dead
    // plane.
    let profiled_allocs: u64 = horse_telemetry::alloc::snapshot()
        .iter()
        .map(|s| s.allocs)
        .sum();
    let profiled_acquisitions: u64 = horse_telemetry::contention::snapshot()
        .iter()
        .map(|s| s.acquisitions)
        .sum();
    assert!(
        profiled_allocs > 0,
        "profiled trials recorded no allocations — the counting allocator is not installed"
    );
    println!(
        "profile captured: {profiled_allocs} allocs, {profiled_acquisitions} lock acquisitions"
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("PASS: telemetry and profiling self-overhead are within budget");
}
