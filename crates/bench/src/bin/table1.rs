//! Regenerates **Table 1**: sandbox initialization time and function
//! execution time for the three uLL workload categories under cold,
//! restore and warm starts (1 vCPU, 512 MB sandbox).
//!
//! Run: `cargo run -p horse-bench --bin table1`

use horse_faas::{FaasPlatform, PlatformConfig, StartStrategy};
use horse_metrics::report::Table;
use horse_metrics::RunningStats;
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

fn main() {
    // Paper reference values (µs): init per scenario, exec per category.
    let paper_init_us = [("cold", 1.5e6), ("restore", 1300.0), ("warm", 1.1)];
    let paper_exec_us = [17.0, 1.5, 0.7];
    let paper_share_pct = [
        [99.99, 98.7, 6.07],
        [99.99, 99.98, 42.3],
        [99.99, 99.94, 61.1],
    ];

    let mut table = Table::new(
        "Table 1 — initialization vs execution per start mode (1 vCPU, 512 MB)",
        &[
            "category",
            "mode",
            "init (us)",
            "paper init (us)",
            "exec (us)",
            "paper exec (us)",
            "init %",
            "paper init %",
        ],
    );

    for (ci, category) in Category::ULL.iter().enumerate() {
        for (si, strategy) in [
            StartStrategy::Cold,
            StartStrategy::Restore,
            StartStrategy::Warm,
        ]
        .iter()
        .enumerate()
        {
            let mut init = RunningStats::new();
            let mut exec = RunningStats::new();
            let mut share = RunningStats::new();
            for rep in 0..horse_bench::REPETITIONS {
                let mut platform = FaasPlatform::new(PlatformConfig {
                    seed: 42 + u64::from(rep),
                    ..PlatformConfig::default()
                });
                let cfg = SandboxConfig::builder()
                    .vcpus(1)
                    .memory_mb(512)
                    .ull(true)
                    .build()
                    .expect("valid");
                let f = platform.register(category.short_label(), *category, cfg);
                if strategy.needs_warm_pool() {
                    platform.provision(f, 1, *strategy).expect("provisioning");
                }
                let r = platform.invoke(f, *strategy).expect("invocation");
                init.push(r.init_ns as f64 / 1e3);
                exec.push(r.exec_ns as f64 / 1e3);
                share.push(100.0 * r.init_share());
            }
            table.row_owned(vec![
                category.short_label().to_string(),
                strategy.label().to_string(),
                format!("{:.2}", init.mean()),
                format!("{:.1}", paper_init_us[si].1),
                format!("{:.2}", exec.mean()),
                format!("{:.1}", paper_exec_us[ci]),
                format!("{:.2}", share.mean()),
                format!("{:.2}", paper_share_pct[ci][si]),
            ]);
        }
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
