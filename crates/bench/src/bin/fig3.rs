//! Regenerates **Figure 3**: resume time of a sandbox under the four
//! setups — `vanil`, `ppsm`, `coal`, `horse` — sweeping 1–36 vCPUs.
//!
//! Expected shape (paper §5.1): coal improves vanilla by 16–20 %, ppsm by
//! 55–69 %, HORSE by up to 85 % (7.16×), and the HORSE resume time is
//! O(1) in the vCPU count at ≈150 ns.
//!
//! Run: `cargo run -p horse-bench --bin fig3`

use horse_bench::{measure_resume_on, VCPU_SWEEP};
use horse_metrics::chart::LinePlot;
use horse_metrics::report::Table;
use horse_vmm::ResumeMode;

fn main() {
    let opts = horse_bench::CliOptions::from_env();
    let hv = opts.hypervisor();
    println!("hypervisor: {}", hv.label());
    let mut table = Table::new(
        "Figure 3 — resume time (ns) per setup vs vCPUs",
        &[
            "vcpus",
            "vanil",
            "ppsm",
            "coal",
            "horse",
            "coal impr",
            "ppsm impr",
            "horse speedup",
            "ci95",
        ],
    );
    let mut horse_values = Vec::new();
    let mut max_speedup: f64 = 0.0;
    let mut plot_series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for vcpus in opts.sweep_or(&VCPU_SWEEP) {
        let points: Vec<_> = ResumeMode::ALL
            .iter()
            .map(|m| measure_resume_on(hv, vcpus, *m))
            .collect();
        let vanil = points[0].mean_total_ns();
        let ppsm = points[1].mean_total_ns();
        let coal = points[2].mean_total_ns();
        let horse = points[3].mean_total_ns();
        for (i, v) in [vanil, ppsm, coal, horse].into_iter().enumerate() {
            plot_series[i].push((f64::from(vcpus), v));
        }
        horse_values.push(horse);
        let speedup = vanil / horse;
        max_speedup = max_speedup.max(speedup);
        let worst_ci = points
            .iter()
            .map(|p| p.total.ci95().relative())
            .fold(0.0, f64::max);
        table.row_owned(vec![
            vcpus.to_string(),
            format!("{vanil:.0}"),
            format!("{ppsm:.0}"),
            format!("{coal:.0}"),
            format!("{horse:.0}"),
            format!("{:.1}%", 100.0 * (1.0 - coal / vanil)),
            format!("{:.1}%", 100.0 * (1.0 - ppsm / vanil)),
            format!("{speedup:.2}x"),
            format!("{:.2}%", 100.0 * worst_ci),
        ]);
    }
    println!("{}", table.render());
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).expect("create out dir");
        horse_metrics::export::write_table_csv(format!("{dir}/fig3.csv"), &table)
            .expect("write fig3.csv");
    }

    let mut plot = LinePlot::new("Figure 3 — resume time (ns) vs vCPUs", 60, 14);
    for (name, series) in ["vanil", "ppsm", "coal", "horse"].iter().zip(&plot_series) {
        plot.series(*name, series);
    }
    println!("{}", plot.render());

    let hmin = horse_values.iter().copied().fold(f64::MAX, f64::min);
    let hmax = horse_values.iter().copied().fold(0.0, f64::max);
    println!("max HORSE speedup: {max_speedup:.2}x (paper: up to 7.16x)");
    println!(
        "HORSE resume range: {hmin:.0}–{hmax:.0} ns, flatness {:.2}x (paper: O(1), ≈150 ns)",
        hmax / hmin
    );
}
