//! Runs the entire experiment suite — every table and figure — in one
//! command, writing each report to `results/`.
//!
//! Run: `cargo run --release -p horse-bench --bin repro [-- --skip-colocation]`
//!
//! The per-artifact binaries (`table1`, `fig1`…`fig4`, `overhead`,
//! `colocation`) remain available for focused runs; this driver simply
//! re-executes their logic and collects the outputs.

use std::fs;
use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let skip_colocation = args.iter().any(|a| a == "--skip-colocation");

    fs::create_dir_all("results").expect("create results dir");
    let mut bins = vec![
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "overhead",
        "ablation_queues",
        "keepalive_curve",
        "verify_claims",
    ];
    if !skip_colocation {
        bins.push("colocation");
    }

    let mut failures = 0;
    for bin in bins {
        eprintln!("==> running {bin}");
        let out = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(bin),
        )
        .output();
        match out {
            Ok(out) if out.status.success() => {
                let path = format!("results/{bin}.txt");
                fs::write(&path, &out.stdout).expect("write result");
                println!("{bin}: ok -> {path}");
            }
            Ok(out) => {
                eprintln!(
                    "{bin}: FAILED ({})\n{}",
                    out.status,
                    String::from_utf8_lossy(&out.stderr)
                );
                failures += 1;
            }
            Err(e) => {
                eprintln!("{bin}: could not launch: {e}");
                eprintln!("hint: build all binaries first: cargo build --release -p horse-bench");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("all experiments reproduced; see results/ and EXPERIMENTS.md");
}
