//! Machine-readable benchmark trajectory with a regression gate.
//!
//! Runs the resume / merge / coalesce micro-benchmarks plus a seeded
//! end-to-end soak and emits two JSON artifacts:
//!
//! * `BENCH_resume.json` — per `(mode × vCPU)` resume totals, per-step
//!   breakdowns and the paper's dominant-share metric, plus the isolated
//!   merge (step ④) and coalesce (step ⑤) numbers;
//! * `BENCH_e2e.json` — per-class p50/p99/p99.9 end-to-end and resume
//!   latencies of a seeded cluster soak, with the full per-step tail
//!   attribution (exemplar trace ids included) from
//!   [`horse_metrics::TailAttribution`].
//!
//! Both carry the git sha and seed. All latencies are **virtual
//! nanoseconds** from the calibrated cost model, so a given tree
//! reproduces its numbers bit-for-bit on any machine — which is what
//! makes a *committed* baseline meaningful.
//!
//! Modes:
//!
//! * `bench_suite --seed 42 --out results` — run and write artifacts;
//! * `bench_suite --against results/bench_baseline.json` — also compare
//!   every `*_ns` leaf against the committed baseline and exit non-zero
//!   when any leaf drifts beyond the noise band (the CI perf gate);
//! * `bench_suite --write-baseline` — regenerate the committed
//!   baseline's section for this seed;
//! * `bench_suite --slowdown-splice 2 --against ...` — scale the
//!   splice-path cost-model terms, which MUST trip the gate (CI runs
//!   this as the gate's negative test).

use std::collections::BTreeMap;
use std::process::Command;

use horse_bench::{paper_sched_config, policy_for};
use horse_faas::{Cluster, DispatchPolicy, PlatformConfig, StartStrategy};
use horse_metrics::export::write_chrome_trace;
use horse_metrics::TailAttribution;
use horse_telemetry::json::{self, JsonValue};
use horse_telemetry::{Recorder, TraceSnapshot};
use horse_vmm::{CostModel, ResumeMode, ResumeStep, SandboxConfig, Vmm};
use horse_workloads::Category;

const SCHEMA_RESUME: &str = "horse-bench/resume/1";
const SCHEMA_E2E: &str = "horse-bench/e2e/1";
const SCHEMA_BASELINE: &str = "horse-bench/baseline/1";

/// Relative drift tolerated per `*_ns` leaf by `--against`. The model is
/// deterministic, so an unchanged tree reproduces the baseline exactly;
/// the band only absorbs deliberate small calibration adjustments. A 2×
/// splice-path slowdown sits far outside it.
const NOISE_BAND: f64 = 0.10;

/// vCPU points of the micro sections (ends of the paper's Figure 2–3
/// sweep plus the mid-range knee).
const VCPUS: [u32; 3] = [1, 8, 36];

/// Invocation rounds of the e2e soak (each round = one warm + one
/// horse invocation).
const SOAK_ROUNDS: usize = 200;

struct Options {
    seed: u64,
    out: String,
    against: Option<String>,
    write_baseline: bool,
    slowdown_splice: f64,
}

const USAGE: &str = "usage: bench_suite [--seed <u64>] [--out <dir>] \
     [--against <baseline.json>] [--write-baseline] [--slowdown-splice <f64>]";

impl Options {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Options {
            seed: 42,
            out: "results".to_string(),
            against: None,
            write_baseline: false,
            slowdown_splice: 1.0,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} needs a value; {USAGE}"))
            };
            match flag.as_str() {
                "--seed" => {
                    opts.seed = value()?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}; {USAGE}"))?;
                }
                "--out" => opts.out = value()?,
                "--against" => opts.against = Some(value()?),
                "--write-baseline" => opts.write_baseline = true,
                "--slowdown-splice" => {
                    opts.slowdown_splice = value()?
                        .parse()
                        .map_err(|e| format!("bad --slowdown-splice: {e}; {USAGE}"))?;
                    if !opts.slowdown_splice.is_finite() || opts.slowdown_splice <= 0.0 {
                        return Err(format!("--slowdown-splice must be positive; {USAGE}"));
                    }
                }
                other => return Err(format!("unknown flag {other}; {USAGE}")),
            }
        }
        Ok(opts)
    }
}

fn git_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The calibrated model with the 𝒫²𝒮ℳ splice path scaled by `factor`
/// (1.0 = faithful). Used by CI to prove the gate catches a splice-path
/// regression.
fn cost_model(factor: f64) -> CostModel {
    let mut cost = CostModel::calibrated();
    cost.horse_merge_base_ns *= factor;
    cost.splice_thread_ns *= factor;
    cost
}

fn obj(entries: Vec<(String, JsonValue)>) -> JsonValue {
    JsonValue::Object(entries.into_iter().collect::<BTreeMap<_, _>>())
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

/// One deterministic pause/resume cycle under `cost`.
fn one_resume(cost: &CostModel, vcpus: u32, mode: ResumeMode) -> horse_vmm::ResumeBreakdown {
    let mut vmm = Vmm::new(paper_sched_config(), *cost);
    let cfg = SandboxConfig::builder()
        .vcpus(vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("static config is valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("fresh sandbox starts");
    vmm.pause(id, policy_for(mode))
        .expect("running sandbox pauses");
    vmm.resume(id, mode)
        .expect("paused sandbox resumes")
        .breakdown
}

/// The `resume` / `merge` / `coalesce` sections of `BENCH_resume.json`.
fn micro_sections(cost: &CostModel) -> (JsonValue, JsonValue, JsonValue) {
    let mut resume = BTreeMap::new();
    let mut merge = BTreeMap::new();
    let mut coalesce = BTreeMap::new();
    for mode in ResumeMode::ALL {
        for vcpus in VCPUS {
            let b = one_resume(cost, vcpus, mode);
            let key = format!("{}_v{vcpus}", mode.label());
            let total: u64 = b.total_ns();
            let mut steps = BTreeMap::new();
            for step in ResumeStep::ALL {
                steps.insert(format!("{}_ns", step.label()), num(b.get(step) as f64));
            }
            let dominant = (b.get(ResumeStep::SortedMerge) + b.get(ResumeStep::LoadUpdate)) as f64
                / total.max(1) as f64;
            resume.insert(
                key.clone(),
                obj(vec![
                    ("total_ns".into(), num(total as f64)),
                    ("steps".into(), JsonValue::Object(steps)),
                    ("dominant_share".into(), num(dominant)),
                ]),
            );
            merge.insert(
                format!("{key}_ns"),
                num(b.get(ResumeStep::SortedMerge) as f64),
            );
            coalesce.insert(
                format!("{key}_ns"),
                num(b.get(ResumeStep::LoadUpdate) as f64),
            );
        }
    }
    (
        JsonValue::Object(resume),
        JsonValue::Object(merge),
        JsonValue::Object(coalesce),
    )
}

/// Seeded cluster soak: warm (vanilla resume) and horse invocations on a
/// 3-host cluster, traced end to end. Returns the e2e JSON section and
/// the snapshot (for the sample Chrome trace artifact).
fn e2e_soak(seed: u64, cost: &CostModel) -> (JsonValue, TraceSnapshot) {
    let config = PlatformConfig {
        cost: *cost,
        ..PlatformConfig::default()
    };
    let mut cluster = Cluster::with_config(3, DispatchPolicy::RoundRobin, seed, config);
    let recorder = Recorder::enabled();
    cluster.set_recorder(recorder.clone());

    let vanilla = SandboxConfig::builder().vcpus(1).build().unwrap();
    let ull = SandboxConfig::builder().vcpus(2).ull(true).build().unwrap();
    let warm_fn = cluster.register("nat", Category::Cat2, vanilla);
    let horse_fn = cluster.register("filter", Category::Cat3, ull);
    cluster
        .provision_all(warm_fn, 2, StartStrategy::Warm)
        .expect("provision warm pool");
    cluster
        .provision_all(horse_fn, 2, StartStrategy::Horse)
        .expect("provision horse pool");
    recorder.drain(); // provisioning is untraced noise: keep it out

    for _ in 0..SOAK_ROUNDS {
        cluster
            .invoke(warm_fn, StartStrategy::Warm)
            .expect("warm invoke");
        cluster
            .invoke(horse_fn, StartStrategy::Horse)
            .expect("horse invoke");
    }
    let snapshot = recorder.drain();

    let attribution = TailAttribution::from_snapshot(&snapshot);
    let mut classes = BTreeMap::new();
    for (class, attr) in &attribution.classes {
        let mut entry = vec![("invocations".to_string(), num(attr.e2e.len() as f64))];
        for (pct, tag) in [(50.0, "p50"), (99.0, "p99"), (99.9, "p999")] {
            entry.push((
                format!("e2e_{tag}_ns"),
                num(attr.e2e.percentile(pct) as f64),
            ));
            entry.push((
                format!("resume_{tag}_ns"),
                num(attr.resume.percentile(pct) as f64),
            ));
        }
        classes.insert(class.to_string(), obj(entry));
    }
    let report = attribution.report(&[50.0, 99.0, 99.9]);
    let section = obj(vec![
        ("invocations".into(), num((SOAK_ROUNDS * 2) as f64)),
        ("classes".into(), JsonValue::Object(classes)),
        ("attribution".into(), report.to_json()),
    ]);
    (section, snapshot)
}

/// Flattens every numeric leaf whose key ends in `_ns` to
/// `(dotted.path, value)` — the latency surface the gate compares.
fn latency_leaves(value: &JsonValue, prefix: &str, out: &mut BTreeMap<String, f64>) {
    if let JsonValue::Object(map) = value {
        for (key, child) in map {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            match child {
                JsonValue::Number(n) if key.ends_with("_ns") => {
                    out.insert(path, *n);
                }
                _ => latency_leaves(child, &path, out),
            }
        }
    }
}

/// Compares current sections against the baseline's entry for `seed`.
/// Returns the list of violations (empty = gate passes).
fn compare(baseline: &JsonValue, seed: u64, current: &JsonValue) -> Result<Vec<String>, String> {
    if baseline.get("schema").and_then(|v| v.as_str()) != Some(SCHEMA_BASELINE) {
        return Err(format!("baseline schema is not {SCHEMA_BASELINE}"));
    }
    let entry = baseline
        .get("seeds")
        .and_then(|s| s.get(&seed.to_string()))
        .ok_or_else(|| format!("baseline has no entry for seed {seed}"))?;
    let mut expected = BTreeMap::new();
    latency_leaves(entry, "", &mut expected);
    let mut actual = BTreeMap::new();
    latency_leaves(current, "", &mut actual);
    if expected.is_empty() {
        return Err(format!("baseline entry for seed {seed} has no *_ns leaves"));
    }

    let mut violations = Vec::new();
    for (path, base) in &expected {
        match actual.get(path) {
            None => violations.push(format!("{path}: present in baseline, missing in run")),
            Some(cur) => {
                let drift = (cur - base).abs() / base.abs().max(1.0);
                if drift > NOISE_BAND {
                    violations.push(format!(
                        "{path}: {base:.0} ns -> {cur:.0} ns ({:+.1} % > ±{:.0} % band)",
                        100.0 * (cur - base) / base.abs().max(1.0),
                        100.0 * NOISE_BAND
                    ));
                }
            }
        }
    }
    Ok(violations)
}

fn write_json(path: &str, value: &JsonValue) {
    let mut text = value.render();
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out).expect("create out dir");
    let sha = git_sha();
    let cost = cost_model(opts.slowdown_splice);

    let (resume, merge, coalesce) = micro_sections(&cost);
    let resume_doc = obj(vec![
        ("schema".into(), JsonValue::String(SCHEMA_RESUME.into())),
        ("git_sha".into(), JsonValue::String(sha.clone())),
        ("seed".into(), num(opts.seed as f64)),
        ("slowdown_splice".into(), num(opts.slowdown_splice)),
        ("resume".into(), resume),
        ("merge".into(), merge),
        ("coalesce".into(), coalesce),
    ]);
    let resume_path = format!("{}/BENCH_resume.json", opts.out);
    write_json(&resume_path, &resume_doc);

    let (e2e_section, snapshot) = e2e_soak(opts.seed, &cost);
    let e2e_doc = obj(vec![
        ("schema".into(), JsonValue::String(SCHEMA_E2E.into())),
        ("git_sha".into(), JsonValue::String(sha.clone())),
        ("seed".into(), num(opts.seed as f64)),
        ("slowdown_splice".into(), num(opts.slowdown_splice)),
        ("e2e".into(), e2e_section),
    ]);
    let e2e_path = format!("{}/BENCH_e2e.json", opts.out);
    write_json(&e2e_path, &e2e_doc);

    // Sample Chrome trace of the soak — uploaded by CI next to the JSON
    // so a regression comes with the trace that explains it.
    let trace_path = format!("{}/BENCH_e2e.trace.json", opts.out);
    write_chrome_trace(&trace_path, &snapshot).expect("write sample trace");
    if snapshot.dropped > 0 {
        eprintln!(
            "warning: soak dropped {} events — percentiles are lower bounds",
            snapshot.dropped
        );
    }
    println!(
        "{resume_path}: {SCHEMA_RESUME} (sha {sha}, seed {})",
        opts.seed
    );
    println!(
        "{e2e_path}: {SCHEMA_E2E} ({} traced events)",
        snapshot.events.len()
    );
    println!("{trace_path}: sample Chrome trace");

    // The comparable surface: both documents' *_ns leaves under one root.
    let sections = obj(vec![
        ("resume_doc".into(), resume_doc),
        ("e2e_doc".into(), e2e_doc),
    ]);

    if opts.write_baseline {
        let path = format!("{}/bench_baseline.json", opts.out);
        // The baseline is committed *before* the commit it will gate, so
        // an embedded sha would always name the wrong tree — drop it.
        let mut sections = sections.clone();
        if let JsonValue::Object(docs) = &mut sections {
            for doc in docs.values_mut() {
                if let JsonValue::Object(map) = doc {
                    map.remove("git_sha");
                }
            }
        }
        let mut seeds = match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text).expect("existing baseline parses") {
                JsonValue::Object(mut map) => match map.remove("seeds") {
                    Some(JsonValue::Object(seeds)) => seeds,
                    _ => BTreeMap::new(),
                },
                _ => BTreeMap::new(),
            },
            Err(_) => BTreeMap::new(),
        };
        seeds.insert(opts.seed.to_string(), sections.clone());
        let baseline = obj(vec![
            ("schema".into(), JsonValue::String(SCHEMA_BASELINE.into())),
            ("seeds".into(), JsonValue::Object(seeds)),
        ]);
        write_json(&path, &baseline);
        println!("{path}: baseline updated for seed {}", opts.seed);
    }

    if let Some(baseline_path) = &opts.against {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let baseline = json::parse(&text).expect("baseline is valid JSON");
        match compare(&baseline, opts.seed, &sections) {
            Ok(violations) if violations.is_empty() => {
                println!(
                    "perf gate: all *_ns leaves within ±{:.0} % of {baseline_path} (seed {})",
                    100.0 * NOISE_BAND,
                    opts.seed
                );
            }
            Ok(violations) => {
                eprintln!(
                    "perf gate FAILED against {baseline_path} (seed {}): {} leaf(s) out of band",
                    opts.seed,
                    violations.len()
                );
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
            Err(msg) => {
                eprintln!("perf gate error: {msg}");
                std::process::exit(1);
            }
        }
    }
}
