//! Machine-readable benchmark trajectory with a regression gate.
//!
//! Runs the resume / merge / coalesce micro-benchmarks plus a seeded
//! end-to-end soak and emits two JSON artifacts:
//!
//! * `BENCH_resume.json` — per `(mode × vCPU)` resume totals, per-step
//!   breakdowns and the paper's dominant-share metric, plus the isolated
//!   merge (step ④) and coalesce (step ⑤) numbers;
//! * `BENCH_e2e.json` — per-class p50/p99/p99.9 end-to-end and resume
//!   latencies of a seeded cluster soak, with the full per-step tail
//!   attribution (exemplar trace ids included) from
//!   [`horse_metrics::TailAttribution`].
//!
//! Both carry the git sha and seed. All latencies are **virtual
//! nanoseconds** from the calibrated cost model, so a given tree
//! reproduces its numbers bit-for-bit on any machine — which is what
//! makes a *committed* baseline meaningful.
//!
//! Modes:
//!
//! * `bench_suite --seed 42 --out results` — run and write artifacts;
//! * `bench_suite --against results/bench_baseline.json` — also compare
//!   every `*_ns` leaf against the committed baseline and exit non-zero
//!   when any leaf drifts beyond the noise band (the CI perf gate);
//! * `bench_suite --write-baseline` — regenerate the committed
//!   baseline's section for this seed;
//! * `bench_suite --slowdown-splice 2 --against ...` — scale the
//!   splice-path cost-model terms, which MUST trip the gate (CI runs
//!   this as the gate's negative test);
//! * `bench_suite --throughput --threads 1,4,8` — also run the
//!   multi-threaded closed-loop load generator against a shared
//!   `Arc<Cluster>` and emit `BENCH_throughput.json` (wall-clock
//!   invocations/sec and latency under contention, plus — for the
//!   single-threaded run only — deterministic virtual-latency leaves
//!   that join the `--against` gate). When the committed baseline
//!   carries those leaves, run `--against` together with
//!   `--throughput --threads 1` so the run produces them;
//! * `bench_suite --throughput --threads 1,4 --gate-speedup 2` — fail
//!   unless the best multi-threaded run clears `2×` the
//!   single-threaded invocations/sec (the CI smoke gate; meaningless
//!   on a single-core machine, so it is opt-in);
//! * `bench_suite --wall-clock-resume` — also measure *real* resume
//!   latency (real splice-worker threads, emulated per-vCPU wake cost)
//!   at 1–144 vCPUs and emit `BENCH_wallclock.json`, gating that the
//!   parallel splice's 1→144 growth stays sub-linear while vanilla's is
//!   ~linear; `--serial-splice` forces the pool inline, which MUST trip
//!   that gate (CI's negative self-test).

use std::collections::BTreeMap;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use horse_bench::{paper_sched_config, policy_for};
use horse_faas::{Cluster, DispatchPolicy, FaasError, HostId, PlatformConfig, StartStrategy};
use horse_metrics::export::write_chrome_trace;
use horse_metrics::{Histogram, RobustSummary, TailAttribution};
use horse_telemetry::forensics::{chrome_trace_with_flows, ForensicIndex, SpanTree};
use horse_telemetry::json::{self, JsonValue};
use horse_telemetry::{Recorder, TraceSnapshot};
use horse_vmm::{CostModel, ResumeMode, ResumeStep, SandboxConfig, SplicePool, Vmm};
use horse_workloads::Category;

const SCHEMA_RESUME: &str = "horse-bench/resume/1";
const SCHEMA_E2E: &str = "horse-bench/e2e/1";
const SCHEMA_E2E_FORENSICS: &str = "horse-bench/e2e-forensics/1";
/// Slowest stitched trees kept in the e2e postmortem artifact.
const WORST_TREES: usize = 16;
const SCHEMA_THROUGHPUT: &str = "horse-bench/throughput/1";
const SCHEMA_WALLCLOCK: &str = "horse-bench/wallclock/1";
const SCHEMA_BASELINE: &str = "horse-bench/baseline/1";

/// Relative drift tolerated per `*_ns` leaf by `--against`. The model is
/// deterministic, so an unchanged tree reproduces the baseline exactly;
/// the band only absorbs deliberate small calibration adjustments. A 2×
/// splice-path slowdown sits far outside it.
const NOISE_BAND: f64 = 0.10;

/// vCPU points of the micro sections (ends of the paper's Figure 2–3
/// sweep plus the mid-range knee).
const VCPUS: [u32; 3] = [1, 8, 36];

/// Invocation rounds of the e2e soak (each round = one warm + one
/// horse invocation).
const SOAK_ROUNDS: usize = 200;

/// Fleet shape of the throughput runs: hosts × provisioned sandboxes
/// per host. 8×4 = 32 warm sandboxes keeps the pool ahead of the
/// largest supported driver count (16), so a dry pool is a transient
/// all-in-flight window, never a steady state.
const THROUGHPUT_HOSTS: usize = 8;
const THROUGHPUT_PER_HOST: usize = 4;
/// Closed-loop invocation budget shared by the driver threads of one
/// throughput run.
const THROUGHPUT_INVOCATIONS: u64 = 4_000;
/// Largest supported `--threads` entry.
const MAX_THREADS: usize = 16;

struct Options {
    seed: u64,
    out: String,
    against: Option<String>,
    write_baseline: bool,
    slowdown_splice: f64,
    throughput: bool,
    threads: Vec<usize>,
    invocations: u64,
    gate_speedup: Option<f64>,
    gate_min_ips: Option<f64>,
    disable_batching: bool,
    wall_clock_resume: bool,
    serial_splice: bool,
}

const USAGE: &str = "usage: bench_suite [--seed <u64>] [--out <dir>] \
     [--against <baseline.json>] [--write-baseline] [--slowdown-splice <f64>] \
     [--throughput] [--threads <n,n,...>] [--invocations <u64>] \
     [--gate-speedup <f64>] [--gate-min-ips <f64>] [--disable-batching] \
     [--wall-clock-resume] [--serial-splice]";

impl Options {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Options {
            seed: 42,
            out: "results".to_string(),
            against: None,
            write_baseline: false,
            slowdown_splice: 1.0,
            throughput: false,
            threads: vec![1, 4],
            invocations: THROUGHPUT_INVOCATIONS,
            gate_speedup: None,
            gate_min_ips: None,
            disable_batching: false,
            wall_clock_resume: false,
            serial_splice: false,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} needs a value; {USAGE}"))
            };
            match flag.as_str() {
                "--seed" => {
                    opts.seed = value()?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}; {USAGE}"))?;
                }
                "--out" => opts.out = value()?,
                "--against" => opts.against = Some(value()?),
                "--write-baseline" => opts.write_baseline = true,
                "--slowdown-splice" => {
                    opts.slowdown_splice = value()?
                        .parse()
                        .map_err(|e| format!("bad --slowdown-splice: {e}; {USAGE}"))?;
                    if !opts.slowdown_splice.is_finite() || opts.slowdown_splice <= 0.0 {
                        return Err(format!("--slowdown-splice must be positive; {USAGE}"));
                    }
                }
                "--throughput" => opts.throughput = true,
                "--threads" => {
                    let list = value()?;
                    let mut threads = Vec::new();
                    for part in list.split(',') {
                        let n: usize = part
                            .trim()
                            .parse()
                            .map_err(|e| format!("bad --threads entry {part:?}: {e}; {USAGE}"))?;
                        if n == 0 || n > MAX_THREADS {
                            return Err(format!(
                                "--threads entries must be 1..={MAX_THREADS}, got {n}; {USAGE}"
                            ));
                        }
                        if !threads.contains(&n) {
                            threads.push(n);
                        }
                    }
                    if threads.is_empty() {
                        return Err(format!("--threads needs at least one entry; {USAGE}"));
                    }
                    opts.threads = threads;
                }
                "--invocations" => {
                    opts.invocations = value()?
                        .parse()
                        .map_err(|e| format!("bad --invocations: {e}; {USAGE}"))?;
                    if opts.invocations == 0 {
                        return Err(format!("--invocations must be positive; {USAGE}"));
                    }
                }
                "--gate-speedup" => {
                    let g: f64 = value()?
                        .parse()
                        .map_err(|e| format!("bad --gate-speedup: {e}; {USAGE}"))?;
                    if !g.is_finite() || g <= 0.0 {
                        return Err(format!("--gate-speedup must be positive; {USAGE}"));
                    }
                    opts.gate_speedup = Some(g);
                }
                "--gate-min-ips" => {
                    let g: f64 = value()?
                        .parse()
                        .map_err(|e| format!("bad --gate-min-ips: {e}; {USAGE}"))?;
                    if !g.is_finite() || g <= 0.0 {
                        return Err(format!("--gate-min-ips must be positive; {USAGE}"));
                    }
                    opts.gate_min_ips = Some(g);
                }
                "--disable-batching" => opts.disable_batching = true,
                "--wall-clock-resume" => opts.wall_clock_resume = true,
                "--serial-splice" => opts.serial_splice = true,
                other => return Err(format!("unknown flag {other}; {USAGE}")),
            }
        }
        if opts.serial_splice && !opts.wall_clock_resume {
            return Err(format!(
                "--serial-splice requires --wall-clock-resume; {USAGE}"
            ));
        }
        if opts.gate_min_ips.is_some() {
            if !opts.throughput {
                return Err(format!("--gate-min-ips requires --throughput; {USAGE}"));
            }
            if !opts.threads.contains(&1) {
                return Err(format!(
                    "--gate-min-ips gates the single-threaded run; --threads must include 1; \
                     {USAGE}"
                ));
            }
        }
        if opts.gate_speedup.is_some() {
            if !opts.throughput {
                return Err(format!("--gate-speedup requires --throughput; {USAGE}"));
            }
            if !opts.threads.contains(&1) || opts.threads.iter().all(|&t| t == 1) {
                return Err(format!(
                    "--gate-speedup needs --threads to include 1 and at least one multi-threaded \
                     point; {USAGE}"
                ));
            }
        }
        Ok(opts)
    }
}

fn git_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The calibrated model with the 𝒫²𝒮ℳ splice path scaled by `factor`
/// (1.0 = faithful). Used by CI to prove the gate catches a splice-path
/// regression.
fn cost_model(factor: f64) -> CostModel {
    let mut cost = CostModel::calibrated();
    cost.horse_merge_base_ns *= factor;
    cost.splice_thread_ns *= factor;
    cost
}

fn obj(entries: Vec<(String, JsonValue)>) -> JsonValue {
    JsonValue::Object(entries.into_iter().collect::<BTreeMap<_, _>>())
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

/// One deterministic pause/resume cycle under `cost`.
///
/// The splice pool is parallel here *on purpose*: the virtual `*_ns`
/// leaves this feeds are gated against the committed baseline, so every
/// gated run re-proves that real splice-worker threads leave the virtual
/// cost accounting bit-identical to the sequential path.
fn one_resume(cost: &CostModel, vcpus: u32, mode: ResumeMode) -> horse_vmm::ResumeBreakdown {
    let mut vmm = Vmm::new(paper_sched_config(), *cost);
    vmm.set_splice_pool(SplicePool::parallel(4));
    let cfg = SandboxConfig::builder()
        .vcpus(vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("static config is valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("fresh sandbox starts");
    vmm.pause(id, policy_for(mode))
        .expect("running sandbox pauses");
    vmm.resume(id, mode)
        .expect("paused sandbox resumes")
        .breakdown
}

/// The `resume` / `merge` / `coalesce` sections of `BENCH_resume.json`.
fn micro_sections(cost: &CostModel) -> (JsonValue, JsonValue, JsonValue) {
    let mut resume = BTreeMap::new();
    let mut merge = BTreeMap::new();
    let mut coalesce = BTreeMap::new();
    for mode in ResumeMode::ALL {
        for vcpus in VCPUS {
            let b = one_resume(cost, vcpus, mode);
            let key = format!("{}_v{vcpus}", mode.label());
            let total: u64 = b.total_ns();
            let mut steps = BTreeMap::new();
            for step in ResumeStep::ALL {
                steps.insert(format!("{}_ns", step.label()), num(b.get(step) as f64));
            }
            let dominant = (b.get(ResumeStep::SortedMerge) + b.get(ResumeStep::LoadUpdate)) as f64
                / total.max(1) as f64;
            resume.insert(
                key.clone(),
                obj(vec![
                    ("total_ns".into(), num(total as f64)),
                    ("steps".into(), JsonValue::Object(steps)),
                    ("dominant_share".into(), num(dominant)),
                ]),
            );
            merge.insert(
                format!("{key}_ns"),
                num(b.get(ResumeStep::SortedMerge) as f64),
            );
            coalesce.insert(
                format!("{key}_ns"),
                num(b.get(ResumeStep::LoadUpdate) as f64),
            );
        }
    }
    (
        JsonValue::Object(resume),
        JsonValue::Object(merge),
        JsonValue::Object(coalesce),
    )
}

/// vCPU points of the wall-clock resume sweep — past the paper's 36-vCPU
/// range, out to 2× the r650 core count, where linear growth is
/// unmistakable.
const WALL_VCPUS: [u32; 5] = [1, 8, 36, 72, 144];
/// Measured repetitions per wall-clock point (one warm-up cycle runs
/// first and is discarded).
const WALL_REPS: usize = 7;
/// Splice-pool width of the parallel points. Fixed — the whole claim is
/// that dispatch cost does not grow with the vCPU count.
const WALL_WORKERS: usize = 8;
/// Emulated per-vCPU wake cost. Stands in for the IPI + context-switch
/// work a real kernel does per woken vCPU; drives only real
/// `thread::sleep`s, never the virtual cost axis, so the deterministic
/// baseline gate is untouched.
const WALL_WAKE_NANOS: u64 = 20_000;
/// Growth bound for the 1→144 sweep. Vanilla resume wakes all 144 vCPUs
/// from the resuming thread, so its wall-clock grows ~144× (timer slack
/// scales with it); the parallel splice spreads the same wakes over
/// [`WALL_WORKERS`] workers, growing ≤ ~18×. 36 sits between the two
/// with ≥ 2× margin each way.
const WALL_SUBLINEAR_BOUND: f64 = 36.0;

/// One wall-clock point of `(vcpus, mode)`: real resume latencies in
/// nanoseconds over [`WALL_REPS`] warm pause/resume cycles.
///
/// The host carries a background uLL sandbox on even credits and the
/// measured sandbox on odd credits, so each resume splices one distinct
/// point per vCPU into a populated queue — the adversarial shape for
/// 𝒫²𝒮ℳ (maximum splice points) and the fair one for vanilla (same
/// per-vCPU insert count).
fn wall_resume_samples(
    cost: &CostModel,
    vcpus: u32,
    mode: ResumeMode,
    serial_splice: bool,
) -> Vec<f64> {
    let mut vmm = Vmm::new(paper_sched_config(), *cost);
    if mode.uses_ppsm() {
        let mut pool = SplicePool::parallel(WALL_WORKERS);
        pool.set_serial(serial_splice);
        vmm.set_splice_pool(pool);
    }
    vmm.set_wake_emulation_nanos(WALL_WAKE_NANOS);

    let config = || {
        SandboxConfig::builder()
            .vcpus(vcpus)
            .memory_mb(512)
            .ull(true)
            .build()
            .expect("static config is valid")
    };
    let background = vmm.create(config());
    let evens: Vec<i64> = (0..i64::from(vcpus)).map(|i| 2 * i + 2).collect();
    vmm.start_with_credits(background, &evens)
        .expect("background sandbox starts");
    let measured = vmm.create(config());
    let odds: Vec<i64> = (0..i64::from(vcpus)).map(|i| 2 * i + 1).collect();
    vmm.start_with_credits(measured, &odds)
        .expect("measured sandbox starts");

    let policy = policy_for(mode);
    let mut samples = Vec::with_capacity(WALL_REPS);
    for rep in 0..=WALL_REPS {
        vmm.pause(measured, policy).expect("running sandbox pauses");
        let t0 = Instant::now();
        vmm.resume(measured, mode).expect("paused sandbox resumes");
        if rep > 0 {
            samples.push(t0.elapsed().as_nanos() as f64);
        }
    }
    samples
}

/// One summarised point of the wall-clock sweep.
struct WallPoint {
    vcpus: u32,
    summary: RobustSummary,
}

/// Measures the full [`WALL_VCPUS`] sweep for one mode.
fn wall_sweep(cost: &CostModel, mode: ResumeMode, serial_splice: bool) -> Vec<WallPoint> {
    WALL_VCPUS
        .iter()
        .map(|&vcpus| WallPoint {
            vcpus,
            summary: RobustSummary::of(&wall_resume_samples(cost, vcpus, mode, serial_splice)),
        })
        .collect()
}

/// Wall-clock growth of the sweep: last point over first point, on the
/// outlier-robust means.
fn wall_growth(points: &[WallPoint]) -> f64 {
    let first = points.first().expect("sweep is non-empty").summary.mean;
    let last = points.last().expect("sweep is non-empty").summary.mean;
    last / first.max(f64::MIN_POSITIVE)
}

/// JSON section of one mode's sweep. Keys use `_nanos` (never `_ns`):
/// wall-clock numbers are machine-dependent and must stay invisible to
/// the deterministic baseline gate's leaf scan.
fn wall_mode_json(points: &[WallPoint]) -> JsonValue {
    let mut map = BTreeMap::new();
    for p in points {
        map.insert(
            format!("v{}", p.vcpus),
            obj(vec![
                ("resume_mean_nanos".into(), num(p.summary.mean)),
                ("resume_median_nanos".into(), num(p.summary.median)),
                ("resume_min_nanos".into(), num(p.summary.min)),
                ("resume_max_nanos".into(), num(p.summary.max)),
                ("samples_kept".into(), num(p.summary.kept as f64)),
                ("samples_rejected".into(), num(p.summary.rejected as f64)),
            ]),
        );
    }
    map.insert("growth_144_over_1".to_string(), num(wall_growth(points)));
    JsonValue::Object(map)
}

/// Seeded cluster soak: warm (vanilla resume) and horse invocations on a
/// 3-host cluster, traced end to end. Returns the e2e JSON section and
/// the snapshot (for the sample Chrome trace artifact).
fn e2e_soak(seed: u64, cost: &CostModel) -> (JsonValue, TraceSnapshot) {
    let config = PlatformConfig {
        cost: *cost,
        ..PlatformConfig::default()
    };
    let mut cluster = Cluster::with_config(3, DispatchPolicy::RoundRobin, seed, config);
    let recorder = Recorder::enabled();
    cluster.set_recorder(recorder.clone());

    let vanilla = SandboxConfig::builder().vcpus(1).build().unwrap();
    let ull = SandboxConfig::builder().vcpus(2).ull(true).build().unwrap();
    let warm_fn = cluster.register("nat", Category::Cat2, vanilla);
    let horse_fn = cluster.register("filter", Category::Cat3, ull);
    cluster
        .provision_all(warm_fn, 2, StartStrategy::Warm)
        .expect("provision warm pool");
    cluster
        .provision_all(horse_fn, 2, StartStrategy::Horse)
        .expect("provision horse pool");
    recorder.drain(); // provisioning is untraced noise: keep it out

    for _ in 0..SOAK_ROUNDS {
        cluster
            .invoke(warm_fn, StartStrategy::Warm)
            .expect("warm invoke");
        cluster
            .invoke(horse_fn, StartStrategy::Horse)
            .expect("horse invoke");
    }
    let snapshot = recorder.drain();

    let attribution = TailAttribution::from_snapshot(&snapshot);
    let mut classes = BTreeMap::new();
    for (class, attr) in &attribution.classes {
        let mut entry = vec![("invocations".to_string(), num(attr.e2e.len() as f64))];
        for (pct, tag) in [(50.0, "p50"), (99.0, "p99"), (99.9, "p999")] {
            entry.push((
                format!("e2e_{tag}_ns"),
                num(attr.e2e.percentile(pct) as f64),
            ));
            entry.push((
                format!("resume_{tag}_ns"),
                num(attr.resume.percentile(pct) as f64),
            ));
        }
        classes.insert(class.to_string(), obj(entry));
    }
    let report = attribution.report(&[50.0, 99.0, 99.9]);
    let section = obj(vec![
        ("invocations".into(), num((SOAK_ROUNDS * 2) as f64)),
        ("classes".into(), JsonValue::Object(classes)),
        ("attribution".into(), report.to_json()),
    ]);
    (section, snapshot)
}

/// Result of one closed-loop throughput run at a fixed driver count.
struct ThroughputRun {
    threads: usize,
    invocations: u64,
    elapsed_seconds: f64,
    invocations_per_sec: f64,
    /// Wall-clock per-invocation latency (slot claim → success),
    /// including retry backoff under contention.
    wall: Histogram,
    /// Virtual (cost-model) init and end-to-end latency — deterministic
    /// for a single driver thread.
    virt_init: Histogram,
    virt_total: Histogram,
    retries: u64,
    warm_hit_ratio: f64,
    /// Invariant breaches (lost/duplicated sandboxes, stats drift,
    /// starved drivers). Non-empty fails the suite.
    violations: Vec<String>,
}

/// Requests each driver claims from the shared budget per batched
/// submission ([`Cluster::invoke_batch`]). Matches the fleet's warm
/// inventory, so one single-threaded batch exercises every host.
const DRIVER_BATCH: u64 = 32;

/// Drives a fresh seeded cluster with `threads` closed-loop workers
/// sharing one atomic invocation budget, then audits the fleet for
/// conservation and stats consistency.
///
/// With `batching`, workers claim [`DRIVER_BATCH`] slots at a time and
/// submit them through the ring-fed [`Cluster::invoke_batch`] path —
/// the default, and what the `--gate-min-ips` floor measures. Without
/// it (`--disable-batching`) each slot goes through the sequential
/// [`Cluster::invoke`] path; CI uses that as the floor gate's negative
/// test. Virtual-latency leaves are identical either way at one driver
/// thread (the equivalence `crates/faas/tests/batch.rs` pins).
fn throughput_run(
    seed: u64,
    cost: &CostModel,
    threads: usize,
    budget: u64,
    batching: bool,
) -> ThroughputRun {
    let config = PlatformConfig {
        cost: *cost,
        ..PlatformConfig::default()
    };
    // The recorder stays disabled: traced runs are single-driver
    // (DESIGN.md §10), and the ring would only add contention noise to
    // the wall-clock numbers.
    let mut cluster =
        Cluster::with_config(THROUGHPUT_HOSTS, DispatchPolicy::RoundRobin, seed, config);
    let ull = SandboxConfig::builder()
        .vcpus(2)
        .ull(true)
        .build()
        .expect("static config");
    let f = cluster.register("filter", Category::Cat3, ull);
    cluster
        .provision_all(f, THROUGHPUT_PER_HOST, StartStrategy::Horse)
        .expect("provision throughput pool");
    let provisioned = THROUGHPUT_HOSTS * THROUGHPUT_PER_HOST;
    let cluster = Arc::new(cluster);

    struct WorkerResult {
        wall: Histogram,
        virt_init: Histogram,
        virt_total: Histogram,
        successes: u64,
        retries: u64,
        starved: u64,
    }

    let next_slot = AtomicU64::new(0);
    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cluster = &cluster;
                let next_slot = &next_slot;
                scope.spawn(move || {
                    let mut r = WorkerResult {
                        wall: Histogram::new(),
                        virt_init: Histogram::new(),
                        virt_total: Histogram::new(),
                        successes: 0,
                        retries: 0,
                        starved: 0,
                    };
                    if batching {
                        // Batched driver: claim a run of slots, submit
                        // them through the per-host rings, and keep
                        // draining until the call returns clean. The
                        // drains are cooperative, so a worker's batch
                        // may serve requests another worker enqueued —
                        // successes count records *received*, which is
                        // conserved across workers.
                        let mut got: Vec<(HostId, horse_faas::InvocationRecord)> =
                            Vec::with_capacity(2 * DRIVER_BATCH as usize);
                        let mut drain = |r: &mut WorkerResult, enqueue: usize| loop {
                            let t0 = Instant::now();
                            got.clear();
                            let result =
                                cluster.invoke_batch(f, StartStrategy::Horse, enqueue, &mut got);
                            if !got.is_empty() {
                                // Amortized wall share: the batch is the
                                // unit of work, each record gets its
                                // slice.
                                let share = (t0.elapsed().as_nanos() / got.len() as u128) as u64;
                                for (_, record) in &got {
                                    r.wall.record(share);
                                    r.virt_init.record(record.init_ns);
                                    r.virt_total.record(record.total_ns());
                                }
                                r.successes += got.len() as u64;
                            }
                            match result {
                                Ok(_) => return true,
                                // Transient dry pool: the unserved tail
                                // went back into the rings — mop up.
                                Err(FaasError::NoWarmSandbox { .. }) => {
                                    r.retries += 1;
                                    std::thread::yield_now();
                                }
                                Err(_) => {
                                    r.starved += 1;
                                    return false;
                                }
                            }
                        };
                        loop {
                            let start = next_slot.fetch_add(DRIVER_BATCH, Ordering::Relaxed);
                            if start >= budget {
                                break;
                            }
                            let want = DRIVER_BATCH.min(budget - start) as usize;
                            if !drain(&mut r, want) {
                                break;
                            }
                        }
                        // Final mop-up: leftovers another worker's error
                        // returned to the rings after our last drain.
                        drain(&mut r, 0);
                        return r;
                    }
                    while next_slot.fetch_add(1, Ordering::Relaxed) < budget {
                        let t0 = Instant::now();
                        // A dry pool under contention is a transient
                        // all-in-flight window (the fleet holds 2×
                        // MAX_THREADS sandboxes): retry, charging the
                        // wait to this invocation's wall latency.
                        let mut attempts = 0u64;
                        loop {
                            match cluster.invoke(f, StartStrategy::Horse) {
                                Ok((_, record)) => {
                                    r.wall.record(t0.elapsed().as_nanos() as u64);
                                    r.virt_init.record(record.init_ns);
                                    r.virt_total.record(record.total_ns());
                                    r.successes += 1;
                                    break;
                                }
                                Err(FaasError::NoWarmSandbox { .. }) if attempts < 100_000 => {
                                    attempts += 1;
                                    r.retries += 1;
                                    std::thread::yield_now();
                                }
                                Err(_) => {
                                    r.starved += 1;
                                    break;
                                }
                            }
                        }
                    }
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut wall = Histogram::new();
    let mut virt_init = Histogram::new();
    let mut virt_total = Histogram::new();
    let mut successes = 0u64;
    let mut retries = 0u64;
    let mut starved = 0u64;
    for r in results {
        wall.merge(&r.wall);
        virt_init.merge(&r.virt_init);
        virt_total.merge(&r.virt_total);
        successes += r.successes;
        retries += r.retries;
        starved += r.starved;
    }

    let mut violations = Vec::new();
    if starved > 0 {
        violations.push(format!(
            "{threads} threads: {starved} invocation(s) starved or failed outright"
        ));
    }
    if successes != budget {
        violations.push(format!(
            "{threads} threads: {successes} successes for a budget of {budget}"
        ));
    }
    // Conservation: every sandbox re-paused into its pool — nothing
    // lost to a race, nothing duplicated.
    let inventory: usize = (0..THROUGHPUT_HOSTS)
        .map(|i| cluster.host(HostId(i)).pool_size(f, StartStrategy::Horse))
        .sum();
    if inventory != provisioned {
        violations.push(format!(
            "{threads} threads: warm inventory {inventory} != provisioned {provisioned}"
        ));
    }
    // Stats consistency: one pool hit per success, no evictions (the
    // keep-alive clock never advances, no faults are armed).
    let stats = cluster.aggregate_pool_stats(f, StartStrategy::Horse);
    if stats.hits != successes {
        violations.push(format!(
            "{threads} threads: {} pool hits for {successes} successes",
            stats.hits
        ));
    }
    if stats.evictions != 0 {
        violations.push(format!(
            "{threads} threads: {} evictions on an idle keep-alive clock",
            stats.evictions
        ));
    }
    let attempts = stats.hits + stats.misses;
    let warm_hit_ratio = if attempts == 0 {
        0.0
    } else {
        stats.hits as f64 / attempts as f64
    };

    ThroughputRun {
        threads,
        invocations: successes,
        elapsed_seconds,
        invocations_per_sec: successes as f64 / elapsed_seconds.max(f64::MIN_POSITIVE),
        wall,
        virt_init,
        virt_total,
        retries,
        warm_hit_ratio,
        violations,
    }
}

/// Wall-clock cost of `Histogram::record`, measured in-process over a
/// deterministic latency-shaped value stream (same stream as the
/// `histogram` criterion bench). Reported per `crates/metrics`'s
/// `#[inline]` documentation.
fn histogram_record_cost_ns() -> f64 {
    const N: usize = 1_000_000;
    let mut x = 0x9e3779b97f4a7c15u64;
    let values: Vec<u64> = (0..N)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            200 + (x % 2_000_000)
        })
        .collect();
    let mut h = Histogram::new();
    let t0 = Instant::now();
    for &v in &values {
        h.record(v);
    }
    let per_op = t0.elapsed().as_nanos() as f64 / h.len().max(1) as f64;
    // The histogram itself must not be optimized away.
    assert_eq!(h.len(), N as u64);
    per_op
}

/// The JSON section of one throughput run. Wall-clock metrics
/// deliberately avoid the `_ns` key suffix so the deterministic perf
/// gate never sees them; the single-threaded run additionally carries
/// `virtual` `*_ns` leaves, which are deterministic and gated.
fn throughput_run_json(run: &ThroughputRun) -> JsonValue {
    let mut entry = vec![
        ("threads".to_string(), num(run.threads as f64)),
        ("invocations".to_string(), num(run.invocations as f64)),
        ("elapsed_seconds".to_string(), num(run.elapsed_seconds)),
        (
            "invocations_per_sec".to_string(),
            num(run.invocations_per_sec),
        ),
        (
            "wall_p50_nanos".to_string(),
            num(run.wall.percentile(50.0) as f64),
        ),
        (
            "wall_p99_nanos".to_string(),
            num(run.wall.percentile(99.0) as f64),
        ),
        ("warm_hit_ratio".to_string(), num(run.warm_hit_ratio)),
        ("retries".to_string(), num(run.retries as f64)),
        (
            "invariant_violations".to_string(),
            num(run.violations.len() as f64),
        ),
    ];
    if run.threads == 1 {
        entry.push((
            "virtual".to_string(),
            obj(vec![
                (
                    "init_p50_ns".into(),
                    num(run.virt_init.percentile(50.0) as f64),
                ),
                (
                    "init_p99_ns".into(),
                    num(run.virt_init.percentile(99.0) as f64),
                ),
                (
                    "total_p50_ns".into(),
                    num(run.virt_total.percentile(50.0) as f64),
                ),
                (
                    "total_p99_ns".into(),
                    num(run.virt_total.percentile(99.0) as f64),
                ),
            ]),
        ));
    }
    obj(entry)
}

/// Flattens every numeric leaf whose key ends in `_ns` to
/// `(dotted.path, value)` — the latency surface the gate compares.
fn latency_leaves(value: &JsonValue, prefix: &str, out: &mut BTreeMap<String, f64>) {
    if let JsonValue::Object(map) = value {
        for (key, child) in map {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            match child {
                JsonValue::Number(n) if key.ends_with("_ns") => {
                    out.insert(path, *n);
                }
                _ => latency_leaves(child, &path, out),
            }
        }
    }
}

/// Compares current sections against the baseline's entry for `seed`.
/// Returns the list of violations (empty = gate passes).
///
/// The comparison is *section-scoped*: only baseline sections (top-level
/// keys of the seed entry, e.g. `resume_doc`, `throughput_doc`,
/// `profile_doc`) that the current run also produced are compared, so a
/// baseline carrying `profile_report`'s section does not fail a
/// `bench_suite` run that never measures it — each binary gates the
/// sections it owns.
fn compare(baseline: &JsonValue, seed: u64, current: &JsonValue) -> Result<Vec<String>, String> {
    if baseline.get("schema").and_then(|v| v.as_str()) != Some(SCHEMA_BASELINE) {
        return Err(format!("baseline schema is not {SCHEMA_BASELINE}"));
    }
    let entry = baseline
        .get("seeds")
        .and_then(|s| s.get(&seed.to_string()))
        .ok_or_else(|| format!("baseline has no entry for seed {seed}"))?;
    let (JsonValue::Object(entry_map), JsonValue::Object(current_map)) = (entry, current) else {
        return Err(format!("baseline entry for seed {seed} is not an object"));
    };
    let mut expected = BTreeMap::new();
    for (section, child) in entry_map {
        if current_map.contains_key(section) {
            latency_leaves(child, section, &mut expected);
        } else {
            println!("perf gate: skipping baseline section {section} (not produced by this run)");
        }
    }
    let mut actual = BTreeMap::new();
    latency_leaves(current, "", &mut actual);
    if expected.is_empty() {
        return Err(format!(
            "baseline entry for seed {seed} has no *_ns leaves in any section this run produced"
        ));
    }

    let mut violations = Vec::new();
    for (path, base) in &expected {
        match actual.get(path) {
            None => violations.push(format!("{path}: present in baseline, missing in run")),
            Some(cur) => {
                let drift = (cur - base).abs() / base.abs().max(1.0);
                if drift > NOISE_BAND {
                    violations.push(format!(
                        "{path}: {base:.0} ns -> {cur:.0} ns ({:+.1} % > ±{:.0} % band)",
                        100.0 * (cur - base) / base.abs().max(1.0),
                        100.0 * NOISE_BAND
                    ));
                }
            }
        }
    }
    Ok(violations)
}

fn write_json(path: &str, value: &JsonValue) {
    let mut text = value.render();
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out).expect("create out dir");
    let sha = git_sha();
    let cost = cost_model(opts.slowdown_splice);

    let (resume, merge, coalesce) = micro_sections(&cost);
    let resume_doc = obj(vec![
        ("schema".into(), JsonValue::String(SCHEMA_RESUME.into())),
        ("git_sha".into(), JsonValue::String(sha.clone())),
        ("seed".into(), num(opts.seed as f64)),
        ("slowdown_splice".into(), num(opts.slowdown_splice)),
        ("resume".into(), resume),
        ("merge".into(), merge),
        ("coalesce".into(), coalesce),
    ]);
    let resume_path = format!("{}/BENCH_resume.json", opts.out);
    write_json(&resume_path, &resume_doc);

    let (e2e_section, snapshot) = e2e_soak(opts.seed, &cost);
    let e2e_doc = obj(vec![
        ("schema".into(), JsonValue::String(SCHEMA_E2E.into())),
        ("git_sha".into(), JsonValue::String(sha.clone())),
        ("seed".into(), num(opts.seed as f64)),
        ("slowdown_splice".into(), num(opts.slowdown_splice)),
        ("e2e".into(), e2e_section),
    ]);
    let e2e_path = format!("{}/BENCH_e2e.json", opts.out);
    write_json(&e2e_path, &e2e_doc);

    // Sample Chrome trace of the soak — uploaded by CI next to the JSON
    // so a regression comes with the trace that explains it.
    let trace_path = format!("{}/BENCH_e2e.trace.json", opts.out);
    write_chrome_trace(&trace_path, &snapshot).expect("write sample trace");
    if snapshot.dropped > 0 {
        eprintln!(
            "warning: soak dropped {} events — percentiles are lower bounds",
            snapshot.dropped
        );
    }

    // Postmortem stitch of the same soak: the slowest invoke trees as a
    // Chrome trace with flow arrows plus the stitch ledger, so a perf
    // gate failure uploads the causal trees that explain it (the soak
    // has no reliability plane; these are invoke-rooted trees, not
    // submission trees).
    let forensics = ForensicIndex::stitch(&snapshot);
    let mut worst: Vec<&SpanTree> = forensics.trees.iter().collect();
    worst.sort_by(|a, b| {
        b.duration_ns()
            .cmp(&a.duration_ns())
            .then(a.invocation.cmp(&b.invocation))
    });
    worst.truncate(WORST_TREES);
    let forensics_doc = obj(vec![
        (
            "schema".into(),
            JsonValue::String(SCHEMA_E2E_FORENSICS.into()),
        ),
        ("git_sha".into(), JsonValue::String(sha.clone())),
        ("seed".into(), num(opts.seed as f64)),
        ("trees".into(), num(forensics.trees.len() as f64)),
        ("orphan_events".into(), num(forensics.orphan_events as f64)),
        ("extra_roots".into(), num(forensics.extra_roots as f64)),
        (
            "dropped_events".into(),
            num(forensics.dropped_events as f64),
        ),
        (
            "fingerprint".into(),
            JsonValue::String(format!("{:016x}", forensics.fingerprint())),
        ),
        (
            "worst".into(),
            JsonValue::Array(
                worst
                    .iter()
                    .map(|t| {
                        obj(vec![
                            ("invocation".into(), num(t.invocation as f64)),
                            ("dur_ns".into(), num(t.duration_ns() as f64)),
                            ("nodes".into(), num(t.len() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let forensics_path = format!("{}/BENCH_e2e.forensics.json", opts.out);
    write_json(&forensics_path, &forensics_doc);
    let forensics_trace_path = format!("{}/BENCH_e2e.forensics.trace.json", opts.out);
    let mut forensics_trace = chrome_trace_with_flows(worst.iter().copied());
    forensics_trace.push('\n');
    std::fs::write(&forensics_trace_path, forensics_trace)
        .unwrap_or_else(|e| panic!("write {forensics_trace_path}: {e}"));
    println!(
        "{forensics_path}: {SCHEMA_E2E_FORENSICS} ({} trees, {} orphans)",
        forensics.trees.len(),
        forensics.orphan_events
    );
    println!(
        "{forensics_trace_path}: worst {} invoke trees with flow events",
        worst.len()
    );
    println!(
        "{resume_path}: {SCHEMA_RESUME} (sha {sha}, seed {})",
        opts.seed
    );
    println!(
        "{e2e_path}: {SCHEMA_E2E} ({} traced events)",
        snapshot.events.len()
    );
    println!("{trace_path}: sample Chrome trace");

    // The comparable surface: every document's *_ns leaves under one
    // root (the throughput doc joins below when `--throughput` ran, so
    // a baseline carrying its leaves must be gated with the same flag).
    let mut section_entries = vec![
        ("resume_doc".to_string(), resume_doc),
        ("e2e_doc".to_string(), e2e_doc),
    ];

    let mut throughput_failures: Vec<String> = Vec::new();
    if opts.throughput {
        let record_cost = histogram_record_cost_ns();
        let mut runs = BTreeMap::new();
        let mut single_thread_ips = None;
        let mut best_multi: Option<&ThroughputRun> = None;
        let mut all_runs = Vec::new();
        for &threads in &opts.threads {
            let run = throughput_run(
                opts.seed,
                &cost,
                threads,
                opts.invocations,
                !opts.disable_batching,
            );
            println!(
                "throughput: {:>2} thread(s) -> {:>10.0} inv/s \
                 (wall p50 {} ns, p99 {} ns, {} retries, {} violation(s))",
                threads,
                run.invocations_per_sec,
                run.wall.percentile(50.0),
                run.wall.percentile(99.0),
                run.retries,
                run.violations.len()
            );
            throughput_failures.extend(run.violations.iter().cloned());
            all_runs.push(run);
        }
        for run in &all_runs {
            if run.threads == 1 {
                single_thread_ips = Some(run.invocations_per_sec);
            } else {
                match best_multi {
                    Some(b) if run.invocations_per_sec <= b.invocations_per_sec => {}
                    _ => best_multi = Some(run),
                }
            }
            runs.insert(run.threads.to_string(), throughput_run_json(run));
        }
        let speedup = match (single_thread_ips, best_multi) {
            (Some(single), Some(best)) if single > 0.0 => {
                Some((best.threads, best.invocations_per_sec / single))
            }
            _ => None,
        };
        if let Some(floor) = opts.gate_min_ips {
            match single_thread_ips {
                Some(ips) if ips >= floor => println!(
                    "throughput gate: single-thread reaches {ips:.0} inv/s (>= {floor:.0} floor)"
                ),
                Some(ips) => throughput_failures.push(format!(
                    "min-ips gate: single-thread reaches only {ips:.0} inv/s, \
                     below the {floor:.0} floor"
                )),
                None => throughput_failures
                    .push("min-ips gate: no single-threaded run measured".to_string()),
            }
        }
        if let Some(gate) = opts.gate_speedup {
            match speedup {
                Some((threads, s)) if s >= gate => println!(
                    "throughput gate: {threads} threads reach {s:.2}x single-thread (>= {gate}x)"
                ),
                Some((threads, s)) => throughput_failures.push(format!(
                    "speedup gate: best multi-threaded point ({threads} threads) reaches only \
                     {s:.2}x single-thread, below the {gate}x gate"
                )),
                None => throughput_failures
                    .push("speedup gate: no comparable single/multi thread pair ran".to_string()),
            }
        }

        let mut throughput_entries = vec![
            (
                "schema".to_string(),
                JsonValue::String(SCHEMA_THROUGHPUT.into()),
            ),
            ("git_sha".to_string(), JsonValue::String(sha.clone())),
            ("seed".to_string(), num(opts.seed as f64)),
            ("hosts".to_string(), num(THROUGHPUT_HOSTS as f64)),
            (
                "provisioned_per_host".to_string(),
                num(THROUGHPUT_PER_HOST as f64),
            ),
            (
                "invocation_budget".to_string(),
                num(opts.invocations as f64),
            ),
            (
                "available_parallelism".to_string(),
                num(std::thread::available_parallelism().map_or(0, |n| n.get()) as f64),
            ),
            ("histogram_record_ns_per_op".to_string(), num(record_cost)),
            (
                "batching".to_string(),
                JsonValue::Bool(!opts.disable_batching),
            ),
            ("runs".to_string(), JsonValue::Object(runs)),
        ];
        if let Some((threads, s)) = speedup {
            throughput_entries.push((
                "best_speedup".to_string(),
                obj(vec![
                    ("threads".into(), num(threads as f64)),
                    ("vs_single_thread".into(), num(s)),
                ]),
            ));
        }
        let throughput_doc = obj(throughput_entries);
        let throughput_path = format!("{}/BENCH_throughput.json", opts.out);
        write_json(&throughput_path, &throughput_doc);
        println!(
            "{throughput_path}: {SCHEMA_THROUGHPUT} (Histogram::record = {record_cost:.1} ns/op)"
        );
        section_entries.push(("throughput_doc".to_string(), throughput_doc));
    }

    // Wall-clock resume sweep: real threads, real sleeps, robust stats.
    // Deliberately NOT part of `sections` — nothing here is
    // deterministic, so nothing here may join the baseline gate.
    let mut wall_failures: Vec<String> = Vec::new();
    if opts.wall_clock_resume {
        let horse = wall_sweep(&cost, ResumeMode::Horse, opts.serial_splice);
        let vanil = wall_sweep(&cost, ResumeMode::Vanilla, false);
        for (label, points) in [("horse", &horse), ("vanil", &vanil)] {
            for p in points {
                println!(
                    "wallclock: {label} v{:>3} -> mean {:>12.0} ns \
                     (median {:.0}, min {:.0}, max {:.0}, {} kept / {} rejected)",
                    p.vcpus,
                    p.summary.mean,
                    p.summary.median,
                    p.summary.min,
                    p.summary.max,
                    p.summary.kept,
                    p.summary.rejected
                );
            }
        }
        let horse_growth = wall_growth(&horse);
        let vanil_growth = wall_growth(&vanil);
        if horse_growth < WALL_SUBLINEAR_BOUND {
            println!(
                "wallclock gate: parallel-splice growth 1→144 is {horse_growth:.1}x \
                 (sub-linear, < {WALL_SUBLINEAR_BOUND}x)"
            );
        } else {
            wall_failures.push(format!(
                "parallel-splice wall-clock growth 1→144 is {horse_growth:.1}x, \
                 not sub-linear (gate: < {WALL_SUBLINEAR_BOUND}x)"
            ));
        }
        if vanil_growth >= WALL_SUBLINEAR_BOUND {
            println!(
                "wallclock gate: vanilla growth 1→144 is {vanil_growth:.1}x \
                 (~linear, >= {WALL_SUBLINEAR_BOUND}x) — the comparison is live"
            );
        } else {
            wall_failures.push(format!(
                "vanilla wall-clock growth 1→144 is only {vanil_growth:.1}x \
                 (gate: >= {WALL_SUBLINEAR_BOUND}x) — the wake emulation is not \
                 exercising the linear path, so the sub-linear claim proves nothing"
            ));
        }

        let wall_doc = obj(vec![
            ("schema".into(), JsonValue::String(SCHEMA_WALLCLOCK.into())),
            ("git_sha".into(), JsonValue::String(sha.clone())),
            ("seed".into(), num(opts.seed as f64)),
            ("splice_workers".into(), num(WALL_WORKERS as f64)),
            ("wake_emulation_nanos".into(), num(WALL_WAKE_NANOS as f64)),
            ("repetitions".into(), num(WALL_REPS as f64)),
            ("serial_splice".into(), JsonValue::Bool(opts.serial_splice)),
            ("sublinear_bound".into(), num(WALL_SUBLINEAR_BOUND)),
            (
                "available_parallelism".into(),
                num(std::thread::available_parallelism().map_or(0, |n| n.get()) as f64),
            ),
            ("horse".into(), wall_mode_json(&horse)),
            ("vanil".into(), wall_mode_json(&vanil)),
        ]);
        let wall_path = format!("{}/BENCH_wallclock.json", opts.out);
        write_json(&wall_path, &wall_doc);
        println!(
            "{wall_path}: {SCHEMA_WALLCLOCK} (horse {horse_growth:.1}x, \
             vanil {vanil_growth:.1}x over 1→144 vCPUs)"
        );
    }

    let sections = obj(section_entries);

    if opts.write_baseline {
        let path = format!("{}/bench_baseline.json", opts.out);
        // The baseline is committed *before* the commit it will gate, so
        // an embedded sha would always name the wrong tree — drop it.
        let mut sections = sections.clone();
        if let JsonValue::Object(docs) = &mut sections {
            for doc in docs.values_mut() {
                if let JsonValue::Object(map) = doc {
                    map.remove("git_sha");
                }
            }
        }
        let mut seeds = match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text).expect("existing baseline parses") {
                JsonValue::Object(mut map) => match map.remove("seeds") {
                    Some(JsonValue::Object(seeds)) => seeds,
                    _ => BTreeMap::new(),
                },
                _ => BTreeMap::new(),
            },
            Err(_) => BTreeMap::new(),
        };
        // Merge at the section level: sections other binaries own (e.g.
        // `profile_report`'s `profile_doc`) survive a bench_suite
        // baseline refresh, and vice versa.
        let mut entry = match seeds.remove(&opts.seed.to_string()) {
            Some(JsonValue::Object(existing)) => existing,
            _ => BTreeMap::new(),
        };
        if let JsonValue::Object(new_sections) = &sections {
            for (k, v) in new_sections {
                entry.insert(k.clone(), v.clone());
            }
        }
        seeds.insert(opts.seed.to_string(), JsonValue::Object(entry));
        let baseline = obj(vec![
            ("schema".into(), JsonValue::String(SCHEMA_BASELINE.into())),
            ("seeds".into(), JsonValue::Object(seeds)),
        ]);
        write_json(&path, &baseline);
        println!("{path}: baseline updated for seed {}", opts.seed);
    }

    if let Some(baseline_path) = &opts.against {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let baseline = json::parse(&text).expect("baseline is valid JSON");
        match compare(&baseline, opts.seed, &sections) {
            Ok(violations) if violations.is_empty() => {
                println!(
                    "perf gate: all *_ns leaves within ±{:.0} % of {baseline_path} (seed {})",
                    100.0 * NOISE_BAND,
                    opts.seed
                );
            }
            Ok(violations) => {
                eprintln!(
                    "perf gate FAILED against {baseline_path} (seed {}): {} leaf(s) out of band",
                    opts.seed,
                    violations.len()
                );
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
            Err(msg) => {
                eprintln!("perf gate error: {msg}");
                std::process::exit(1);
            }
        }
    }

    if !throughput_failures.is_empty() {
        eprintln!(
            "throughput suite FAILED: {} problem(s)",
            throughput_failures.len()
        );
        for f in &throughput_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }

    if !wall_failures.is_empty() {
        eprintln!("wall-clock gate FAILED: {} problem(s)", wall_failures.len());
        for f in &wall_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
