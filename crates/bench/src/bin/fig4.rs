//! Regenerates **Figure 4**: sandbox initialization percentage for the
//! three uLL workloads under all four start strategies, including HORSE.
//!
//! Expected shape (paper §5.3): HORSE achieves the lowest share for every
//! category, between 0.77 % and 17.64 %, outclassing warm by up to
//! 8.95×, restore by up to 142.7× and cold by up to 142.84×.
//!
//! Run: `cargo run -p horse-bench --bin fig4`

use horse_faas::{FaasPlatform, PlatformConfig, StartStrategy};
use horse_metrics::chart::BarChart;
use horse_metrics::report::Table;
use horse_vmm::SandboxConfig;
use horse_workloads::Category;

fn main() {
    let mut table = Table::new(
        "Figure 4 — init % per category and start strategy",
        &["category", "cold %", "restore %", "warm %", "horse %"],
    );
    let mut horse_shares: Vec<f64> = Vec::new();
    let mut ratios: Vec<(String, f64)> = Vec::new();
    let mut chart_rows: Vec<(String, Vec<(&str, f64)>)> = Vec::new();

    for category in Category::ULL {
        let mut shares = Vec::new();
        for strategy in StartStrategy::ALL {
            let mut platform = FaasPlatform::new(PlatformConfig::default());
            let cfg = SandboxConfig::builder()
                .vcpus(1)
                .ull(true)
                .build()
                .expect("valid");
            let f = platform.register(category.short_label(), category, cfg);
            if strategy.needs_warm_pool() {
                platform.provision(f, 1, strategy).expect("provision");
            }
            let mut share = 0.0;
            for _ in 0..horse_bench::REPETITIONS {
                share += 100.0 * platform.invoke(f, strategy).expect("invoke").init_share();
            }
            shares.push(share / f64::from(horse_bench::REPETITIONS));
        }
        let horse = shares[3];
        horse_shares.push(horse);
        ratios.push((
            format!("{} cold/horse", category.short_label()),
            shares[0] / horse,
        ));
        ratios.push((
            format!("{} restore/horse", category.short_label()),
            shares[1] / horse,
        ));
        ratios.push((
            format!("{} warm/horse", category.short_label()),
            shares[2] / horse,
        ));
        table.row_owned(vec![
            category.short_label().to_string(),
            format!("{:.2}", shares[0]),
            format!("{:.2}", shares[1]),
            format!("{:.2}", shares[2]),
            format!("{:.2}", shares[3]),
        ]);
        chart_rows.push((
            category.short_label().to_string(),
            vec![
                ("cold", shares[0]),
                ("restore", shares[1]),
                ("warm", shares[2]),
                ("horse", shares[3]),
            ],
        ));
    }
    println!("{}", table.render());

    let mut chart = BarChart::new("Figure 4 — init % (lower is better)", 50);
    for (category, shares) in &chart_rows {
        for (strategy, share) in shares {
            chart.bar(format!("{category}/{strategy}"), *share);
        }
    }
    println!("{}", chart.render());

    let lo = horse_shares.iter().copied().fold(f64::MAX, f64::min);
    let hi = horse_shares.iter().copied().fold(0.0f64, f64::max);
    println!("HORSE init share range: {lo:.2}%–{hi:.2}%  (paper: 0.77%–17.64%)");
    for (label, ratio) in ratios {
        println!("  {label}: {ratio:.2}x better");
    }
    println!("paper: HORSE outclasses warm by up to 8.95x, restore by up to 142.7x, cold by up to 142.84x");
}
