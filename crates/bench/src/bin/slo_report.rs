//! SLO soak: the end-to-end reliability plane under churn, with a CI
//! gate.
//!
//! Drives 12 000+ seeded requests (uLL-class HORSE starts with tight
//! deadlines, background warm starts, periodic 64-wide background
//! bursts) through [`Cluster::submit`] / [`Cluster::submit_batch`]
//! against a 6-host fleet with one chronically sick host and a seeded
//! join/leave/crash churn schedule, then emits `BENCH_slo.json` (and a
//! Prometheus text page) with the run's reliability ledger:
//!
//! * per-class SLO attainment (deadline-met over *submissions*, so
//!   sheds and failures count against it — an all-shedding fleet cannot
//!   hide behind an empty completions denominator),
//! * hedge rate / hedge wins, shed rate by reason, retry volume,
//! * circuit-breaker transition counts (opened / half-opened / closed),
//! * churn events applied and fleet size at the end.
//!
//! Hard gates (exit non-zero): the conservation invariant
//! (`submissions == completions + sheds + deadline_misses + failures`),
//! bit-identical replay (the soak runs twice; every deterministic
//! section, the disposition-stream fingerprint and the stitched
//! forensic-forest fingerprint must match), ≥10 000 submissions, uLL
//! attainment ≥ 99.9 % *with churn on*, a hedge rate below 5 %,
//! forensic completeness (every submission stitches into exactly one
//! orphan-free span tree whose root stamp tallies reconcile with the
//! reliability ledger) and a quiet multi-window SLO burn-rate monitor.
//!
//! Forensic artifacts (always written): `BENCH_forensics.json` (stitch
//! ledger, burn-rate windows, flight-recorder summary) and
//! `BENCH_forensics.trace.json` (the worst span trees per class as
//! Chrome trace events with flow arrows, loadable in Perfetto). The
//! worst uLL tree is also printed as an ASCII postmortem outline.
//!
//! Modes:
//!
//! * `slo_report --seed 42 --out results` — run and write artifacts;
//! * `slo_report --against results/bench_baseline.json` — additionally
//!   compare the gated leaves against the committed baseline's
//!   `slo_doc` section (±10 % band, same contract as the profile gate);
//! * `slo_report --write-baseline` — merge this seed's `slo_doc`
//!   section into the baseline, preserving sections other binaries own;
//! * `slo_report --no-churn` — static fleet (used by the CI matrix to
//!   show the plane is not *relying* on churn-driven resets);
//! * `slo_report --force-open-breakers` — every breaker starts and
//!   stays open; the run MUST fail the attainment gate (CI runs this as
//!   the negative self-test);
//! * `slo_report --slowdown-splice <factor>` — scale the 𝒫²𝒮ℳ splice
//!   path by `factor`; at CI's factor 2000 the injected latency
//!   regression MUST trip both the attainment gate and the burn-rate
//!   monitor (the forensics negative self-test).

use std::collections::BTreeMap;
use std::process::Command;

use horse_faas::{
    Cluster, DispatchPolicy, Disposition, FunctionId, HostId, PlatformConfig, Request,
    StartStrategy,
};
use horse_faults::{FaultInjector, FaultPlan, FaultSite, FaultTrigger, RetryPolicy};
use horse_metrics::prometheus::TextExporter;
use horse_metrics::{BurnRateMonitor, FlightRecorder, Objective};
use horse_reliability::{
    BreakerState, ChurnConfig, ChurnSchedule, ReliabilityConfig, RequestClass, ShedReason,
};
use horse_sim::rng::SeedFactory;
use horse_telemetry::forensics::{outcome, ForensicIndex};
use horse_telemetry::json::{self, JsonValue};
use horse_telemetry::{Recorder, TelemetryConfig};
use horse_vmm::{CostModel, SandboxConfig};
use horse_workloads::Category;
use rand::rngs::StdRng;
use rand::Rng;

const SCHEMA_SLO: &str = "horse-bench/slo/1";
const SCHEMA_FORENSICS: &str = "horse-bench/forensics/1";
const SCHEMA_BASELINE: &str = "horse-bench/baseline/1";

/// Relative drift tolerated per gated leaf by `--against`.
const NOISE_BAND: f64 = 0.10;

const HOSTS: usize = 6;
/// The soak stops at the first round boundary past this many
/// submissions (the acceptance floor is 10 000).
const TARGET_SUBMISSIONS: u64 = 12_000;
/// Background burst width (vs `max_inflight` 32 / `ull_reserve` 8: the
/// burst must overflow the background share and shed the rest).
const BURST: usize = 64;
/// One burst every this many single submissions.
const BURST_EVERY: u64 = 512;
/// Warm entries provisioned per host per function up front and restored
/// on rejoin.
const PROVISION: usize = 6;
/// Top-up cadence: one entry per host per function.
const REPLENISH_EVERY: u64 = 32;
/// uLL-class end-to-end deadline (virtual ns). Cat3 service time is
/// ~1 µs; the headroom absorbs cross-host retry backoffs.
const ULL_DEADLINE_NS: u64 = 100_000;
/// Background deadline when one is attached at all.
const BG_DEADLINE_NS: u64 = 50_000_000;

/// Gate floors/ceilings (hard, not baseline-relative).
const ULL_ATTAINMENT_FLOOR: f64 = 0.999;
const HEDGE_RATE_CEILING: f64 = 0.05;

/// SLO targets the burn-rate monitor alerts on (uLL mirrors the
/// attainment floor; background is looser, matching its soft deadline).
const OBJECTIVES: [Objective; 2] = [
    Objective {
        class: "ull",
        target: 0.999,
    },
    Objective {
        class: "background",
        target: 0.95,
    },
];

struct Options {
    seed: u64,
    out: String,
    against: Option<String>,
    write_baseline: bool,
    churn: bool,
    force_open: bool,
    slowdown_splice: f64,
}

const USAGE: &str = "usage: slo_report [--seed <u64>] [--out <dir>] \
     [--against <baseline.json>] [--write-baseline] [--no-churn] \
     [--force-open-breakers] [--slowdown-splice <factor>]";

impl Options {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Options {
            seed: 42,
            out: "results".to_string(),
            against: None,
            write_baseline: false,
            churn: true,
            force_open: false,
            slowdown_splice: 1.0,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} needs a value; {USAGE}"))
            };
            match flag.as_str() {
                "--seed" => {
                    opts.seed = value()?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}; {USAGE}"))?;
                }
                "--out" => opts.out = value()?,
                "--against" => opts.against = Some(value()?),
                "--write-baseline" => opts.write_baseline = true,
                "--no-churn" => opts.churn = false,
                "--force-open-breakers" => opts.force_open = true,
                "--slowdown-splice" => {
                    opts.slowdown_splice = value()?
                        .parse()
                        .map_err(|e| format!("bad --slowdown-splice: {e}; {USAGE}"))?;
                }
                other => return Err(format!("unknown flag {other}; {USAGE}")),
            }
        }
        Ok(opts)
    }
}

fn git_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Per-class external ledger, built from returned dispositions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ClassTally {
    submissions: u64,
    completions: u64,
    met_deadline: u64,
    hedged: u64,
    sheds: u64,
    deadline_misses: u64,
    failures: u64,
}

impl ClassTally {
    fn observe(&mut self, d: &Disposition) {
        self.submissions += 1;
        match d {
            Disposition::Completed {
                met_deadline,
                hedged,
                ..
            } => {
                self.completions += 1;
                if *met_deadline {
                    self.met_deadline += 1;
                }
                if *hedged {
                    self.hedged += 1;
                }
            }
            Disposition::Shed { .. } => self.sheds += 1,
            Disposition::DeadlineExceeded { .. } => self.deadline_misses += 1,
            Disposition::Failed { .. } => self.failures += 1,
        }
    }

    /// Deadline-met completions over *submissions*: sheds, failures and
    /// misses all count against attainment.
    fn attainment(&self) -> f64 {
        if self.submissions == 0 {
            return 1.0;
        }
        self.met_deadline as f64 / self.submissions as f64
    }
}

struct SoakResult {
    ull: ClassTally,
    background: ClassTally,
    sheds_by_reason: BTreeMap<&'static str, u64>,
    internal: horse_reliability::StatsSnapshot,
    transitions: (u64, u64, u64),
    breaker_states: Vec<((u64, usize), BreakerState)>,
    churn_applied: u64,
    churn_skipped: u64,
    hosts_alive: usize,
    fingerprint: u64,
    snapshot: horse_telemetry::TraceSnapshot,
}

fn fnv1a(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fold_disposition(hash: u64, d: &Disposition) -> u64 {
    match d {
        Disposition::Completed {
            host,
            latency_ns,
            hedged,
            met_deadline,
            ..
        } => {
            let tags = 1u64 | (u64::from(*hedged) << 8) | (u64::from(*met_deadline) << 9);
            fnv1a(fnv1a(fnv1a(hash, tags), host.0 as u64), *latency_ns)
        }
        Disposition::Shed { reason } => fnv1a(hash, 2 | ((*reason as u64) << 8)),
        Disposition::DeadlineExceeded { observed_ns, .. } => fnv1a(fnv1a(hash, 3), *observed_ns),
        Disposition::Failed { .. } => fnv1a(hash, 4),
    }
}

fn shed_reason(d: &Disposition) -> Option<ShedReason> {
    match d {
        Disposition::Shed { reason } => Some(*reason),
        _ => None,
    }
}

fn ull_request(f: FunctionId) -> Request {
    Request {
        function: f,
        strategy: StartStrategy::Horse,
        class: RequestClass::Ull,
        deadline_ns: Some(ULL_DEADLINE_NS),
    }
}

fn bg_request(f: FunctionId, rng: &mut StdRng) -> Request {
    Request {
        function: f,
        strategy: StartStrategy::Warm,
        class: RequestClass::Background,
        deadline_ns: if rng.gen_bool(0.5) {
            Some(BG_DEADLINE_NS)
        } else {
            None
        },
    }
}

/// The calibrated cost model with the 𝒫²𝒮ℳ splice path scaled by
/// `factor` (1.0 = faithful) — the burn-rate monitor's negative
/// self-test injects a latency regression exactly where the paper's
/// resume path is most sensitive.
fn cost_model(factor: f64) -> CostModel {
    let mut cost = CostModel::calibrated();
    cost.horse_merge_base_ns *= factor;
    cost.splice_thread_ns *= factor;
    cost
}

fn soak(seed: u64, churn: bool, force_open: bool, slowdown_splice: f64) -> SoakResult {
    let mut cluster = Cluster::with_config(
        HOSTS,
        DispatchPolicy::RoundRobin,
        seed,
        PlatformConfig {
            cost: cost_model(slowdown_splice),
            seed,
            ..PlatformConfig::default()
        },
    );
    // One shard so the single-threaded soak cannot overflow a ring
    // shard: forensic stitching gates on a lossless stream.
    let recorder = Recorder::new(TelemetryConfig {
        shards: 1,
        capacity_per_shard: 1 << 20,
    });
    cluster.set_recorder(recorder.clone());

    let ull_cfg = SandboxConfig::builder().vcpus(1).ull(true).build().unwrap();
    let bg_cfg = SandboxConfig::builder().vcpus(2).build().unwrap();
    let ull_fn = cluster.register("filter", Category::Cat3, ull_cfg);
    let bg_fn = cluster.register("nat", Category::Cat2, bg_cfg);

    let mut rel = ReliabilityConfig::with_seed(seed);
    rel.breaker.forced_open = force_open;
    cluster.set_reliability(rel);

    // Host 0 is chronically sick: every third pool take rots in its
    // hands and it performs no local recovery — the breaker and the
    // cluster-level retry own the problem.
    cluster.set_host_injector(
        HostId(0),
        FaultInjector::new(
            seed ^ 0x51C4,
            FaultPlan::new().with(FaultSite::PoolEntryInvalid, FaultTrigger::Nth(3)),
        ),
    );
    cluster.set_host_retry_policy(
        HostId(0),
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
    );

    for (f, strat) in [(ull_fn, StartStrategy::Horse), (bg_fn, StartStrategy::Warm)] {
        cluster
            .provision_all(f, PROVISION, strat)
            .expect("initial provisioning on a healthy fleet");
    }

    let factory = SeedFactory::new(seed);
    let mut rng = factory.stream("bench/slo-report");
    let schedule = if churn {
        ChurnSchedule::generate(
            &factory,
            HOSTS,
            &ChurnConfig {
                period: 700,
                events: 12,
                min_alive: 3,
            },
        )
    } else {
        ChurnSchedule::empty()
    };
    let rejoin_warm = [
        (ull_fn, StartStrategy::Horse, PROVISION),
        (bg_fn, StartStrategy::Warm, PROVISION),
    ];

    let mut ull = ClassTally::default();
    let mut background = ClassTally::default();
    let mut sheds_by_reason: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut fingerprint = 0xCBF2_9CE4_8422_2325u64;
    let mut churn_applied = 0u64;
    let mut churn_skipped = 0u64;
    let mut churn_cursor = 0usize;
    let mut submitted = 0u64;
    let mut round = 0u64;

    let mut observe = |class: RequestClass, d: &Disposition| {
        match class {
            RequestClass::Ull => ull.observe(d),
            RequestClass::Background => background.observe(d),
        }
        if let Some(reason) = shed_reason(d) {
            *sheds_by_reason.entry(reason.label()).or_default() += 1;
        }
        fingerprint = fold_disposition(fingerprint, d);
    };

    while submitted < TARGET_SUBMISSIONS {
        for event in schedule.due(&mut churn_cursor, submitted) {
            // Rebalance-on-leave can fail if a survivor's pool is at
            // capacity; the event is then skipped, identically per seed.
            match cluster.apply_churn(event, &rejoin_warm) {
                Ok(true) => churn_applied += 1,
                Ok(false) => {}
                Err(_) => churn_skipped += 1,
            }
        }
        if round % REPLENISH_EVERY == 0 {
            for h in 0..HOSTS {
                let _ = cluster.provision_on(HostId(h), ull_fn, 1, StartStrategy::Horse);
                let _ = cluster.provision_on(HostId(h), bg_fn, 1, StartStrategy::Warm);
            }
        }
        if round % BURST_EVERY == BURST_EVERY - 1 {
            // A background storm: one batch admission decision across 64
            // requests. The reserve must hold the line.
            let batch: Vec<Request> = (0..BURST).map(|_| bg_request(bg_fn, &mut rng)).collect();
            let dispositions = cluster.submit_batch(&batch);
            for d in &dispositions {
                observe(RequestClass::Background, d);
            }
            submitted += BURST as u64;
        } else {
            let req = if rng.gen_bool(0.8) {
                ull_request(ull_fn)
            } else {
                bg_request(bg_fn, &mut rng)
            };
            let d = cluster.submit(req);
            observe(req.class, &d);
            submitted += 1;
        }
        round += 1;
    }

    SoakResult {
        ull,
        background,
        sheds_by_reason,
        internal: cluster.reliability_snapshot(),
        transitions: cluster.breaker_transitions(),
        breaker_states: cluster.breaker_states(),
        churn_applied,
        churn_skipped,
        hosts_alive: cluster.alive_count(),
        fingerprint,
        snapshot: recorder.drain(),
    }
}

fn obj(entries: Vec<(String, JsonValue)>) -> JsonValue {
    JsonValue::Object(entries.into_iter().collect::<BTreeMap<_, _>>())
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn class_section(t: &ClassTally) -> JsonValue {
    obj(vec![
        ("submissions".into(), num(t.submissions as f64)),
        ("completions".into(), num(t.completions as f64)),
        ("met_deadline".into(), num(t.met_deadline as f64)),
        ("hedged".into(), num(t.hedged as f64)),
        ("sheds".into(), num(t.sheds as f64)),
        ("deadline_misses".into(), num(t.deadline_misses as f64)),
        ("failures".into(), num(t.failures as f64)),
        ("attainment".into(), num(t.attainment())),
    ])
}

/// The deterministic sections of `BENCH_slo.json` (everything the
/// baseline stores).
fn deterministic_sections(r: &SoakResult) -> Vec<(String, JsonValue)> {
    let snap = &r.internal;
    let submissions = snap.submissions.max(1) as f64;
    let gate = obj(vec![
        ("ull_attainment".into(), num(r.ull.attainment())),
        (
            "hedge_rate".into(),
            num(snap.hedges_launched as f64 / submissions),
        ),
        ("shed_rate".into(), num(snap.sheds as f64 / submissions)),
        ("retries".into(), num(snap.retries as f64)),
        ("breaker_opened".into(), num(r.transitions.0 as f64)),
    ]);
    let mut sheds = BTreeMap::new();
    for (reason, count) in &r.sheds_by_reason {
        sheds.insert(reason.to_string(), num(*count as f64));
    }
    vec![
        ("gate".to_string(), gate),
        ("ull".to_string(), class_section(&r.ull)),
        ("background".to_string(), class_section(&r.background)),
        ("sheds_by_reason".to_string(), JsonValue::Object(sheds)),
        (
            "plane".to_string(),
            obj(vec![
                ("submissions".into(), num(snap.submissions as f64)),
                ("completions".into(), num(snap.completions as f64)),
                ("sheds".into(), num(snap.sheds as f64)),
                ("deadline_misses".into(), num(snap.deadline_misses as f64)),
                ("failures".into(), num(snap.failures as f64)),
                ("retries".into(), num(snap.retries as f64)),
                ("hedges_launched".into(), num(snap.hedges_launched as f64)),
                ("hedge_wins".into(), num(snap.hedge_wins as f64)),
            ]),
        ),
        (
            "breaker".to_string(),
            obj(vec![
                ("opened".into(), num(r.transitions.0 as f64)),
                ("half_opened".into(), num(r.transitions.1 as f64)),
                ("closed".into(), num(r.transitions.2 as f64)),
            ]),
        ),
        (
            "churn".to_string(),
            obj(vec![
                ("events_applied".into(), num(r.churn_applied as f64)),
                ("events_skipped".into(), num(r.churn_skipped as f64)),
                ("hosts_alive_end".into(), num(r.hosts_alive as f64)),
            ]),
        ),
    ]
}

/// Flattens every numeric leaf to `(dotted.path, value)`.
fn numeric_leaves(value: &JsonValue, prefix: &str, out: &mut BTreeMap<String, f64>) {
    if let JsonValue::Object(map) = value {
        for (key, child) in map {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            match child {
                JsonValue::Number(n) => {
                    out.insert(path, *n);
                }
                _ => numeric_leaves(child, &path, out),
            }
        }
    }
}

/// Compares this run's gated leaves against the baseline's
/// `slo_doc.gate` for `seed`. Returns violations (empty = pass).
fn compare_gate(baseline: &JsonValue, seed: u64, gate: &JsonValue) -> Result<Vec<String>, String> {
    if baseline.get("schema").and_then(|v| v.as_str()) != Some(SCHEMA_BASELINE) {
        return Err(format!("baseline schema is not {SCHEMA_BASELINE}"));
    }
    let expected_gate = baseline
        .get("seeds")
        .and_then(|s| s.get(&seed.to_string()))
        .and_then(|e| e.get("slo_doc"))
        .and_then(|d| d.get("gate"))
        .ok_or_else(|| {
            format!("baseline has no slo_doc.gate for seed {seed} (run --write-baseline)")
        })?;
    let mut expected = BTreeMap::new();
    numeric_leaves(expected_gate, "gate", &mut expected);
    let mut actual = BTreeMap::new();
    numeric_leaves(gate, "gate", &mut actual);
    if expected.is_empty() {
        return Err(format!("baseline slo_doc.gate for seed {seed} is empty"));
    }
    let mut violations = Vec::new();
    for (path, base) in &expected {
        match actual.get(path) {
            None => violations.push(format!("{path}: present in baseline, missing in run")),
            Some(cur) => {
                let drift = (cur - base).abs() / base.abs().max(1.0);
                if drift > NOISE_BAND {
                    violations.push(format!(
                        "{path}: {base:.4} -> {cur:.4} ({:+.1} % > ±{:.0} % band)",
                        100.0 * (cur - base) / base.abs().max(1.0),
                        100.0 * NOISE_BAND
                    ));
                }
            }
        }
    }
    Ok(violations)
}

fn write_json(path: &str, value: &JsonValue) {
    let mut text = value.render();
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out).expect("create out dir");
    let sha = git_sha();
    println!(
        "slo soak: {TARGET_SUBMISSIONS}+ submissions, {HOSTS} hosts, seed {}, churn {}, \
         forced-open {}",
        opts.seed,
        if opts.churn { "on" } else { "off" },
        opts.force_open
    );

    let mut failed = false;

    // The soak runs twice: the reliability plane promises bit-identical
    // replay per seed, and the gate is only sound if it delivers.
    let run_a = soak(opts.seed, opts.churn, opts.force_open, opts.slowdown_splice);
    let run_b = soak(opts.seed, opts.churn, opts.force_open, opts.slowdown_splice);
    let forensics_a = ForensicIndex::stitch(&run_a.snapshot);
    let forensics_b = ForensicIndex::stitch(&run_b.snapshot);
    let sections_a = obj(deterministic_sections(&run_a));
    let sections_b = obj(deterministic_sections(&run_b));
    if sections_a.render() == sections_b.render()
        && run_a.fingerprint == run_b.fingerprint
        && forensics_a.fingerprint() == forensics_b.fingerprint()
    {
        println!(
            "determinism: OK — two seed-{} runs, identical books, disposition fingerprint \
             {:#018x}, forensic fingerprint {:#018x}",
            opts.seed,
            run_a.fingerprint,
            forensics_a.fingerprint()
        );
    } else {
        println!("determinism: FAILED — same-seed runs diverge");
        failed = true;
    }

    let snap = &run_a.internal;
    if snap.conserves() && snap.hedges_consistent() {
        println!(
            "conservation: OK — {} submissions == {} completions + {} sheds + {} deadline \
             misses + {} failures",
            snap.submissions, snap.completions, snap.sheds, snap.deadline_misses, snap.failures
        );
    } else {
        println!(
            "conservation: FAILED — {} submissions vs {} + {} + {} + {} (hedges {} wins / {} \
             launched)",
            snap.submissions,
            snap.completions,
            snap.sheds,
            snap.deadline_misses,
            snap.failures,
            snap.hedge_wins,
            snap.hedges_launched
        );
        failed = true;
    }
    if snap.submissions < 10_000 {
        println!(
            "volume: FAILED — only {} submissions (<10k)",
            snap.submissions
        );
        failed = true;
    }

    // Forensic completeness: every submission (sheds included) must
    // stitch into exactly one orphan-free Submit-rooted span tree, and
    // the root stamps must retell the ledger exactly.
    let tree_count = forensics_a.submission_trees().count() as u64;
    let mut stamp_tally = [0u64; 4]; // completed / shed / deadline / failed
    let mut stamp_violations = 0u64;
    for tree in forensics_a.submission_trees() {
        let stamp = tree.stamp().expect("submission trees carry a stamp");
        if usize::from(stamp.outcome) < stamp_tally.len() {
            stamp_tally[usize::from(stamp.outcome)] += 1;
        }
        stamp_violations += tree.check().len() as u64;
    }
    let ledger_consistent = stamp_tally[usize::from(outcome::COMPLETED)] == snap.completions
        && stamp_tally[usize::from(outcome::SHED)] == snap.sheds
        && stamp_tally[usize::from(outcome::DEADLINE)] == snap.deadline_misses
        && stamp_tally[usize::from(outcome::FAILED)] == snap.failures;
    let forensics_complete = forensics_a.is_complete()
        && tree_count == snap.submissions
        && forensics_a.trees.len() as u64 == tree_count
        && stamp_violations == 0
        && ledger_consistent;
    if forensics_complete {
        println!(
            "forensics: OK — {tree_count} span trees (one per submission), 0 orphans, 0 extra \
             roots, 0 ring drops; stamp tallies match the ledger"
        );
    } else {
        println!(
            "forensics: FAILED — {tree_count} trees for {} submissions, {} orphans, {} extra \
             roots, {} drops, {stamp_violations} structural violations, ledger consistent: \
             {ledger_consistent}",
            snap.submissions,
            forensics_a.orphan_events,
            forensics_a.extra_roots,
            forensics_a.dropped_events
        );
        failed = true;
    }

    // Multi-window SLO burn rate, replayed from the stitched trees in
    // arrival order on the virtual clock. Sheds are admission policy,
    // not latency, and are excluded — they already gate attainment.
    let mut monitor = BurnRateMonitor::new(&OBJECTIVES);
    for tree in forensics_a.submission_trees() {
        let stamp = tree.stamp().expect("submission trees carry a stamp");
        if stamp.outcome == outcome::SHED {
            continue;
        }
        let good = stamp.outcome == outcome::COMPLETED && stamp.met_deadline;
        monitor.observe(
            stamp.class_label(),
            good,
            tree.invocation,
            tree.duration_ns(),
        );
    }
    let alerts = monitor.alerts();
    if alerts.is_empty() {
        let rates: Vec<String> = monitor
            .burn_rates()
            .iter()
            .map(|(class, short, long, _)| format!("{class} {short:.2}x/{long:.2}x"))
            .collect();
        println!(
            "burn-rate: OK — quiet on both windows ({})",
            rates.join(", ")
        );
    } else {
        for alert in &alerts {
            println!("{}", alert.render());
        }
        failed = true;
    }

    // Flight recorder: the worst trees per class, kept for the
    // postmortem artifacts below.
    let mut flight = FlightRecorder::new();
    for tree in forensics_a.submission_trees() {
        flight.record(tree);
    }

    let ull_attainment = run_a.ull.attainment();
    if ull_attainment >= ULL_ATTAINMENT_FLOOR {
        println!(
            "uLL SLO: OK — {:.4} % attainment over {} submissions (floor {:.1} %)",
            100.0 * ull_attainment,
            run_a.ull.submissions,
            100.0 * ULL_ATTAINMENT_FLOOR
        );
    } else {
        println!(
            "uLL SLO: FAILED — {:.4} % attainment over {} submissions (floor {:.1} %)",
            100.0 * ull_attainment,
            run_a.ull.submissions,
            100.0 * ULL_ATTAINMENT_FLOOR
        );
        failed = true;
    }

    let hedge_rate = snap.hedges_launched as f64 / snap.submissions.max(1) as f64;
    if hedge_rate < HEDGE_RATE_CEILING {
        println!(
            "hedging: OK — {:.2} % of submissions hedged ({} launched, {} won), below the \
             {:.0} % ceiling",
            100.0 * hedge_rate,
            snap.hedges_launched,
            snap.hedge_wins,
            100.0 * HEDGE_RATE_CEILING
        );
    } else {
        println!(
            "hedging: FAILED — {:.2} % of submissions hedged (ceiling {:.0} %)",
            100.0 * hedge_rate,
            100.0 * HEDGE_RATE_CEILING
        );
        failed = true;
    }

    let (opened, half_opened, closed) = run_a.transitions;
    println!(
        "breakers: {opened} opened, {half_opened} half-opened, {closed} closed; churn: {} \
         applied / {} skipped, {}/{HOSTS} hosts alive at the end; sheds by reason: {:?}",
        run_a.churn_applied, run_a.churn_skipped, run_a.hosts_alive, run_a.sheds_by_reason
    );

    let mut doc_entries = vec![
        ("schema".to_string(), JsonValue::String(SCHEMA_SLO.into())),
        ("git_sha".to_string(), JsonValue::String(sha.clone())),
        ("seed".to_string(), num(opts.seed as f64)),
        ("churn_enabled".to_string(), JsonValue::Bool(opts.churn)),
        (
            "force_open_breakers".to_string(),
            JsonValue::Bool(opts.force_open),
        ),
        (
            "checks".to_string(),
            obj(vec![
                ("deterministic".into(), JsonValue::Bool(true)),
                ("conservation".into(), JsonValue::Bool(snap.conserves())),
                (
                    "forensics_complete".into(),
                    JsonValue::Bool(forensics_complete),
                ),
                ("burn_quiet".into(), JsonValue::Bool(alerts.is_empty())),
            ]),
        ),
    ];
    doc_entries.extend(deterministic_sections(&run_a));
    let doc = obj(doc_entries);

    let json_path = format!("{}/BENCH_slo.json", opts.out);
    write_json(&json_path, &doc);
    let prom_path = format!("{}/BENCH_slo.prom", opts.out);
    horse_metrics::export::write_prometheus_page(
        &prom_path,
        &run_a.snapshot,
        &horse_telemetry::alloc::snapshot(),
        &horse_telemetry::contention::snapshot(),
    )
    .expect("write prometheus page");
    // Append the per-(function, host) circuit state as a labeled gauge:
    // 0 = closed, 1 = half-open, 2 = open.
    let breaker_samples: Vec<(String, u64)> = run_a
        .breaker_states
        .iter()
        .map(|((function, host), state)| {
            (
                format!("function=\"{function}\",host=\"{host}\""),
                state.gauge_value(),
            )
        })
        .collect();
    let mut breaker_page = TextExporter::new();
    breaker_page.labeled_pairs(
        "horse_breaker_state",
        "Circuit-breaker state per (function, host): 0 closed, 1 half-open, 2 open.",
        "gauge",
        &breaker_samples,
    );
    let mut prom_text = std::fs::read_to_string(&prom_path).expect("read prometheus page back");
    prom_text.push_str(&breaker_page.finish());
    std::fs::write(&prom_path, prom_text).expect("append breaker gauge");
    println!("{json_path}: {SCHEMA_SLO} (sha {sha}, seed {})", opts.seed);
    println!("{prom_path}: Prometheus text-format page (+ horse_breaker_state gauge)");

    // Postmortem artifacts: the stitch ledger + burn windows + flight
    // recorder as JSON, and the retained worst trees as a Chrome trace
    // with flow arrows (open in Perfetto).
    let forensics_doc = obj(vec![
        (
            "schema".to_string(),
            JsonValue::String(SCHEMA_FORENSICS.into()),
        ),
        ("git_sha".to_string(), JsonValue::String(sha.clone())),
        ("seed".to_string(), num(opts.seed as f64)),
        ("slowdown_splice".to_string(), num(opts.slowdown_splice)),
        (
            "stitch".to_string(),
            obj(vec![
                ("trees".into(), num(forensics_a.trees.len() as f64)),
                (
                    "orphan_events".into(),
                    num(forensics_a.orphan_events as f64),
                ),
                ("extra_roots".into(), num(forensics_a.extra_roots as f64)),
                (
                    "untraced_events".into(),
                    num(forensics_a.untraced_events as f64),
                ),
                (
                    "dropped_events".into(),
                    num(forensics_a.dropped_events as f64),
                ),
                (
                    "fingerprint".into(),
                    JsonValue::String(format!("{:016x}", forensics_a.fingerprint())),
                ),
            ]),
        ),
        ("burn".to_string(), monitor.to_json()),
        ("flight_recorder".to_string(), flight.to_json()),
    ]);
    let forensics_path = format!("{}/BENCH_forensics.json", opts.out);
    write_json(&forensics_path, &forensics_doc);
    let trace_path = format!("{}/BENCH_forensics.trace.json", opts.out);
    let mut trace_text = flight.to_chrome_trace();
    trace_text.push('\n');
    std::fs::write(&trace_path, trace_text).unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
    println!("{forensics_path}: {SCHEMA_FORENSICS}");
    println!(
        "{trace_path}: Chrome trace with flow events ({} trees)",
        flight.len()
    );
    if let Some(worst_ull) = flight
        .trees()
        .find(|t| t.stamp().is_some_and(|s| s.class_label() == "ull"))
    {
        println!("postmortem: worst uLL span tree —");
        print!("{}", worst_ull.render_ascii());
    }

    if opts.write_baseline {
        let path = format!("{}/bench_baseline.json", opts.out);
        let mut seeds = match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text).expect("existing baseline parses") {
                JsonValue::Object(mut map) => match map.remove("seeds") {
                    Some(JsonValue::Object(seeds)) => seeds,
                    _ => BTreeMap::new(),
                },
                _ => BTreeMap::new(),
            },
            Err(_) => BTreeMap::new(),
        };
        // Merge at the section level: other binaries' sections survive
        // an SLO baseline refresh, and vice versa.
        let mut entry = match seeds.remove(&opts.seed.to_string()) {
            Some(JsonValue::Object(existing)) => existing,
            _ => BTreeMap::new(),
        };
        entry.insert("slo_doc".to_string(), obj(deterministic_sections(&run_a)));
        seeds.insert(opts.seed.to_string(), JsonValue::Object(entry));
        let baseline = obj(vec![
            ("schema".into(), JsonValue::String(SCHEMA_BASELINE.into())),
            ("seeds".into(), JsonValue::Object(seeds)),
        ]);
        write_json(&path, &baseline);
        println!("{path}: slo_doc baseline updated for seed {}", opts.seed);
    }

    if let Some(baseline_path) = &opts.against {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let baseline = json::parse(&text).expect("baseline is valid JSON");
        let gate = doc.get("gate").expect("doc carries gate").clone();
        match compare_gate(&baseline, opts.seed, &gate) {
            Ok(violations) if violations.is_empty() => {
                println!("baseline gate: OK — every slo_doc.gate leaf within ±10 %");
            }
            Ok(violations) => {
                println!("baseline gate: FAILED");
                for v in &violations {
                    println!("  {v}");
                }
                failed = true;
            }
            Err(e) => {
                println!("baseline gate: ERROR — {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
