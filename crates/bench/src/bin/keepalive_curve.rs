//! The keep-alive tax curve: warm-hit rate and mean initialization cost
//! versus the keep-alive TTL, replayed from an Azure-like trace chunk —
//! the economics motivating the paper's §1 (and the premium provisioned
//! options whose resume path HORSE accelerates).
//!
//! Run: `cargo run -p horse-bench --bin keepalive_curve`

use horse_faas::replay::{replay_trace, ReplayConfig};
use horse_faas::KeepAlive;
use horse_metrics::chart::BarChart;
use horse_metrics::report::{fmt_ns, Table};
use horse_sim::rng::SeedFactory;
use horse_sim::SimDuration;
use horse_traces::SynthConfig;

fn main() {
    let opts = horse_bench::CliOptions::from_env();
    let trace = SynthConfig {
        apps: 24,
        median_rpm: 0.4,
        rate_sigma: 1.5,
        ..SynthConfig::default()
    }
    .generate(&SeedFactory::new(opts.seed));

    let mut table = Table::new(
        "Keep-alive tax — hit rate and init cost vs TTL (30 min replay)",
        &[
            "ttl (s)",
            "invocations",
            "hit rate",
            "cold starts",
            "evictions",
            "mean init",
        ],
    );
    let mut chart = BarChart::new("warm-hit rate (%) by TTL", 40);
    for ttl_secs in [30u64, 60, 120, 300, 600, 1_200, 3_600] {
        let o = replay_trace(
            &trace,
            ReplayConfig {
                keep_alive: KeepAlive::Ttl(SimDuration::from_secs(ttl_secs)),
                seed: opts.seed,
                ..ReplayConfig::default()
            },
        );
        table.row_owned(vec![
            ttl_secs.to_string(),
            o.invocations.to_string(),
            format!("{:.1}%", 100.0 * o.hit_rate()),
            o.cold_starts.to_string(),
            o.evictions.to_string(),
            fmt_ns(o.mean_init_ns as u64),
        ]);
        chart.bar(format!("{ttl_secs}s"), 100.0 * o.hit_rate());
    }
    // Provisioned mode as the upper bound.
    let provisioned = replay_trace(
        &trace,
        ReplayConfig {
            keep_alive: KeepAlive::Provisioned,
            seed: opts.seed,
            ..ReplayConfig::default()
        },
    );
    table.row_owned(vec![
        "provisioned".into(),
        provisioned.invocations.to_string(),
        format!("{:.1}%", 100.0 * provisioned.hit_rate()),
        provisioned.cold_starts.to_string(),
        provisioned.evictions.to_string(),
        fmt_ns(provisioned.mean_init_ns as u64),
    ]);
    println!("{}", table.render());
    println!("{}", chart.render());
    println!(
        "longer TTLs buy warm hits at memory cost — the keep-alive tax. Provisioned\n\
         concurrency caps the curve; HORSE then removes the remaining ~1.1 µs warm\n\
         resume from the fast path (figures 3–4)."
    );
}
