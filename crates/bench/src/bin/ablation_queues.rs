//! Ablation: number of reserved uLL run queues (DESIGN.md §5.3).
//!
//! Paper §4.1.3 supports multiple `ull_runqueue`s under high trigger
//! frequency. This ablation quantifies the trade-off: with more queues,
//! paused sandboxes spread out, so each queue mutation invalidates fewer
//! plans — pause-time maintenance drops — while the resume itself stays
//! O(1) regardless.
//!
//! Run: `cargo run -p horse-bench --bin ablation_queues`

use horse_metrics::report::Table;
use horse_sched::{CpuTopology, GovernorPolicy, SchedConfig, SchedFlavor};
use horse_vmm::{CostModel, PausePolicy, ResumeMode, SandboxConfig, Vmm};

fn main() {
    let mut table = Table::new(
        "Ablation — reserved uLL queue count (16 paused uLL sandboxes, 8 vCPUs each)",
        &[
            "ull queues",
            "mean resume (ns)",
            "total maintenance (ns)",
            "max paused/queue",
        ],
    );

    for queues in [1usize, 2, 4, 8] {
        let mut vmm = Vmm::new(
            SchedConfig {
                topology: CpuTopology::r650(false),
                ull_queues: queues,
                governor_policy: GovernorPolicy::Performance,
                flavor: SchedFlavor::default(),
            },
            CostModel::calibrated(),
        );
        let cfg = SandboxConfig::builder()
            .vcpus(8)
            .ull(true)
            .build()
            .expect("valid");

        // 16 sandboxes, all paused with plans.
        let ids: Vec<_> = (0..16)
            .map(|_| {
                let id = vmm.create(cfg);
                vmm.start(id).expect("starts");
                id
            })
            .collect();
        for &id in &ids {
            vmm.pause(id, PausePolicy::horse()).expect("pauses");
        }
        let max_paused = vmm
            .sched()
            .ull_queues()
            .iter()
            .map(|q| vmm.sched().queue(*q).paused_assigned())
            .max()
            .unwrap_or(0);

        // Churn: resume and re-pause everything twice; every resume
        // mutates its queue and forces the *other* paused plans on that
        // queue to rebuild — the maintenance cost under ablation.
        for _ in 0..2 {
            for &id in &ids {
                vmm.resume(id, ResumeMode::Horse).expect("resumes");
            }
            for &id in &ids {
                vmm.pause(id, PausePolicy::horse()).expect("pauses");
            }
        }

        let stats = vmm.stats();
        let mean_resume = stats.mean_resume_ns(ResumeMode::Horse);
        table.row_owned(vec![
            queues.to_string(),
            mean_resume.to_string(),
            vmm.total_maintenance_ns().to_string(),
            max_paused.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "more reserved queues -> fewer co-paused sandboxes per queue -> less plan\n\
         maintenance under churn, at the cost of cores removed from general use;\n\
         the resume itself is O(1) at every setting."
    );
}
