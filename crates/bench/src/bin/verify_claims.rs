//! The reproduction certificate: checks every headline claim of the
//! paper against this repository's measured behaviour and prints
//! PASS/FAIL per claim. Exits non-zero if any claim fails.
//!
//! Run: `cargo run -p horse-bench --bin verify_claims`

use horse_bench::{measure_resume, one_resume};
use horse_faas::colocation::compare_colocation;
use horse_faas::overhead::compare_overhead;
use horse_faas::{FaasPlatform, PlatformConfig, StartStrategy};
use horse_vmm::{ResumeMode, SandboxConfig};
use horse_workloads::Category;

struct Claims {
    failures: u32,
}

impl Claims {
    fn check(&mut self, name: &str, paper: &str, measured: String, pass: bool) {
        let tag = if pass { "PASS" } else { "FAIL" };
        println!("[{tag}] {name}\n       paper: {paper}\n       measured: {measured}");
        if !pass {
            self.failures += 1;
        }
    }
}

fn main() {
    let mut c = Claims { failures: 0 };

    // §3.2: steps ④+⑤ dominate the vanilla resume.
    let shares: Vec<f64> = [1u32, 36]
        .iter()
        .map(|&v| measure_resume(v, ResumeMode::Vanilla).dominant_share())
        .collect();
    c.check(
        "steps 4+5 dominate the resume and grow with vCPUs",
        "87.5%–93.1% of the resume",
        format!("{:.1}%–{:.1}%", 100.0 * shares[0], 100.0 * shares[1]),
        shares[0] > 0.85 && shares[1] > shares[0] && shares[1] < 0.95,
    );

    // §5.1: resume-time improvements per mechanism and combined.
    let vanil = measure_resume(36, ResumeMode::Vanilla).mean_total_ns();
    let ppsm = measure_resume(36, ResumeMode::Ppsm).mean_total_ns();
    let coal = measure_resume(36, ResumeMode::Coal).mean_total_ns();
    let horse = measure_resume(36, ResumeMode::Horse).mean_total_ns();
    c.check(
        "coal improves the resume",
        "16%–20%",
        format!("{:.1}%", 100.0 * (1.0 - coal / vanil)),
        (0.10..0.30).contains(&(1.0 - coal / vanil)),
    );
    c.check(
        "ppsm improves the resume",
        "55%–69%",
        format!("{:.1}%", 100.0 * (1.0 - ppsm / vanil)),
        (0.45..0.78).contains(&(1.0 - ppsm / vanil)),
    );
    c.check(
        "HORSE speeds the resume up",
        "up to 7.16x (85%)",
        format!("{:.2}x", vanil / horse),
        (5.0..9.0).contains(&(vanil / horse)),
    );
    let h1 = one_resume(1, ResumeMode::Horse).total_ns();
    let h36 = one_resume(36, ResumeMode::Horse).total_ns();
    c.check(
        "HORSE resume is O(1) in vCPUs at ~150ns",
        "constant, ~150 ns",
        format!("{h1} ns at 1 vCPU, {h36} ns at 36"),
        h36 as f64 / h1 as f64 <= 1.2 && h36 < 300,
    );

    // §5.3: init share per strategy (Figure 4).
    let mut platform = FaasPlatform::new(PlatformConfig::default());
    let cfg = SandboxConfig::builder()
        .vcpus(1)
        .ull(true)
        .build()
        .expect("valid");
    let f = platform.register("cat3", Category::Cat3, cfg);
    platform
        .provision(f, 1, StartStrategy::Warm)
        .expect("provision");
    platform
        .provision(f, 1, StartStrategy::Horse)
        .expect("provision");
    let warm = platform.invoke(f, StartStrategy::Warm).expect("invoke");
    let horse_rec = platform.invoke(f, StartStrategy::Horse).expect("invoke");
    c.check(
        "warm start init ~1.1us; HORSE lowest init share",
        "warm 1.1 µs; HORSE share 0.77%–17.64%",
        format!(
            "warm {} ns; HORSE share {:.2}%",
            warm.init_ns,
            100.0 * horse_rec.init_share()
        ),
        (1_000..1_300).contains(&warm.init_ns) && horse_rec.init_share() < 0.25,
    );

    // §5.2: overhead.
    let cmp = compare_overhead(36);
    c.check(
        "CPU and memory overhead below 1%",
        "memory ~0.1%, CPU ≤2.7% in bursts",
        format!(
            "memory {:.4}%, resume-phase CPU {:.4}%",
            cmp.memory_overhead_pct(),
            cmp.cpu_resume_phase_pct(72)
        ),
        cmp.memory_overhead_pct() < 1.0 && cmp.cpu_resume_phase_pct(72) < 1.0,
    );

    // §5.4: colocation.
    let col = compare_colocation(36, 7);
    c.check(
        "colocated long-running functions unaffected except tiny p99",
        "mean/p95 unchanged; p99 ≤ 0.00107%",
        format!(
            "mean delta {:.5}%, p99 delta {:.5}%",
            col.mean_overhead_pct(),
            col.p99_overhead_pct()
        ),
        col.mean_overhead_pct().abs() < 0.01 && col.p99_overhead_pct() < 0.01,
    );

    println!();
    if c.failures == 0 {
        println!("all claims reproduced.");
    } else {
        println!("{} claim(s) FAILED", c.failures);
        std::process::exit(1);
    }
}
