//! Regenerates the **§5.2 overhead experiment**: CPU and memory usage
//! while pausing and resuming 10 uLL sandboxes over 10 background
//! CPU-stress sandboxes, sampled every 500 ms, sweeping the uLL vCPU
//! count from 1 to 36.
//!
//! Expected shape (paper): memory overhead up to ~hundreds of KB,
//! ≈0.1 % of the ≈5 GB sandbox memory; CPU increase ≤0.3 % during pause
//! and ≤2.7 % during resume; no steady-state increase.
//!
//! Run: `cargo run -p horse-bench --bin overhead`

use horse_faas::overhead::compare_overhead;
use horse_metrics::report::Table;

fn main() {
    let opts = horse_bench::CliOptions::from_env();
    let cores = 72;
    let mut table = Table::new(
        "§5.2 — HORSE overhead vs vanilla (10 uLL + 10 background sandboxes)",
        &[
            "ull vcpus",
            "plan mem (bytes)",
            "mem overhead %",
            "pause phase cpu %",
            "resume phase cpu %",
            "pause vs vanil %",
        ],
    );
    let mut peak_mem = 0usize;
    let mut peak_pause: f64 = 0.0;
    let mut peak_resume: f64 = 0.0;
    for vcpus in opts.sweep_or(&horse_bench::VCPU_SWEEP) {
        let cmp = compare_overhead(vcpus);
        let mem = cmp.memory_overhead_bytes();
        let mem_pct = cmp.memory_overhead_pct();
        let pause = cmp.cpu_pause_phase_pct(cores);
        let resume = cmp.cpu_resume_phase_pct(cores);
        let pause_delta = cmp.cpu_pause_overhead_pct(cores);
        peak_mem = peak_mem.max(mem);
        peak_pause = peak_pause.max(pause);
        peak_resume = peak_resume.max(resume);
        table.row_owned(vec![
            vcpus.to_string(),
            mem.to_string(),
            format!("{mem_pct:.5}"),
            format!("{pause:.6}"),
            format!("{resume:.6}"),
            format!("{pause_delta:.6}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "peak 𝒫²𝒮ℳ memory: {peak_mem} bytes for 10 paused sandboxes \
         (paper: up to 528 KB incl. kernel struct overhead; ours counts only \
         the arrayB/posA heap)"
    );
    println!(
        "peak CPU overhead: pause {peak_pause:.6}% (paper ≤0.3%), \
         resume {peak_resume:.6}% (paper ≤2.7%) — both phases visible, both <1%"
    );
}
