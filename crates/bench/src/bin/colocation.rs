//! Regenerates the **§5.4 colocation experiment**: thumbnail-function
//! latency (mean / p95 / p99) while 10 uLL sandboxes per second are
//! resumed on the same host, driven by a 30 s Azure-like trace chunk,
//! sweeping the uLL sandbox size and comparing vanilla against HORSE.
//!
//! Expected shape (paper): mean and p95 identical; p99 degraded by at
//! most ≈0.00107 % (≈30 µs) at 36 uLL vCPUs.
//!
//! Run: `cargo run --release -p horse-bench --bin colocation`

use horse_faas::colocation::compare_colocation;
use horse_metrics::report::{fmt_ns, Table};

fn main() {
    let opts = horse_bench::CliOptions::from_env();
    let mut table = Table::new(
        "§5.4 — thumbnail latency with colocated uLL resumes",
        &[
            "ull vcpus",
            "mode",
            "invocations",
            "mean",
            "p95",
            "p99",
            "preempts",
        ],
    );
    let mut worst_p99_pct: f64 = 0.0;
    let mut worst_mean_pct: f64 = 0.0;
    // Several seeds stand in for the paper's repeated runs; the reported
    // overhead is the worst observed ("up to").
    let seeds = [
        opts.seed,
        opts.seed + 4,
        opts.seed + 16,
        opts.seed + 35,
        opts.seed + 92,
    ];
    for vcpus in opts.sweep_or(&[1, 8, 16, 24, 36]) {
        let mut shown = false;
        for &seed in &seeds {
            let cmp = compare_colocation(vcpus, seed);
            worst_p99_pct = worst_p99_pct.max(cmp.p99_overhead_pct());
            worst_mean_pct = worst_mean_pct.max(cmp.mean_overhead_pct().abs());
            if !shown {
                for (label, r) in [("vanilla", &cmp.vanilla), ("horse", &cmp.horse)] {
                    table.row_owned(vec![
                        vcpus.to_string(),
                        label.to_string(),
                        r.invocations.to_string(),
                        fmt_ns(r.mean_ns as u64),
                        fmt_ns(r.p95_ns),
                        fmt_ns(r.p99_ns),
                        r.preemptions.to_string(),
                    ]);
                }
                shown = true;
            }
        }
    }
    println!("{}", table.render());
    println!("worst p99 overhead across sweep: {worst_p99_pct:.5}%  (paper: up to 0.00107%)");
    println!(
        "worst |mean| delta: {worst_mean_pct:.5}%  (paper: no difference in mean/p95 — \
         uLL sandboxes are isolated on reserved run queues)"
    );
}
