//! Chaos soak: 10 000 seeded invocations against a fault-injected
//! cluster, asserting that every injected fault maps to a typed recovery
//! outcome, that run-queue invariants hold throughout, and that the whole
//! fault sequence replays bit-identically under the same seed.
//!
//! The soak drives a 4-host cluster with a [`FaultPlan`] firing every
//! probabilistic site per arrival plus a deterministic whole-host failure
//! every 3 000 invocations (3 of the 4 hosts die over the run). It then
//! reports:
//!
//! * the fault → recovery outcome table (from the injector log),
//! * clean vs degraded init latency per start strategy,
//! * the telemetry counters (`fault.injected`, `horse.fallback`,
//!   `pool.quarantined`, `merge.straggler_rescue`),
//! * the determinism self-check (two same-seed runs, identical logs).
//!
//! Exits non-zero on any invariant violation, unresolved fault, or
//! determinism mismatch — CI runs this across a seed matrix.
//!
//! Run: `cargo run --release -p horse-bench --bin chaos_soak -- --seed 42`

use horse_faas::{Cluster, DispatchPolicy, FaasError, HostId, StartStrategy};
use horse_faults::{FaultInjector, FaultPlan, FaultRecord, FaultSite, FaultTrigger};
use horse_metrics::report::{fmt_ns, Table};
use horse_telemetry::{Counter, Recorder};
use horse_vmm::SandboxConfig;
use horse_workloads::Category;
use std::collections::BTreeMap;

const INVOCATIONS: u64 = 10_000;
const HOSTS: usize = 4;
/// Per-arrival probability of each probabilistic fault site.
const FAULT_P: f64 = 0.008;
/// A whole host dies every this many invocations (3 deaths over the run).
const HOST_FAILURE_EVERY: u64 = 3_000;

struct SoakResult {
    log: Vec<FaultRecord>,
    /// init_ns per strategy, split into fault-free and fault-affected
    /// invocations.
    clean: BTreeMap<&'static str, Vec<u64>>,
    degraded: BTreeMap<&'static str, Vec<u64>>,
    violations: u64,
    unresolved: u64,
    pool_dry: u64,
    retries_exhausted: u64,
    replenished: u64,
    hosts_alive: usize,
    counters: [(&'static str, u64); 4],
}

/// Sweeps every run queue of every alive host for sorted-list invariant
/// breaks, returning the number of broken queues.
fn broken_queues(cluster: &Cluster) -> u64 {
    let mut broken = 0;
    for i in 0..cluster.len() {
        let id = HostId(i);
        if !cluster.is_alive(id) {
            continue;
        }
        let vmm = cluster.host(id).vmm();
        let sched = vmm.sched();
        for rq in sched.general_queues().iter().chain(sched.ull_queues()) {
            if sched
                .queue_list(*rq)
                .check_invariants(sched.arena())
                .is_err()
            {
                broken += 1;
            }
        }
    }
    broken
}

fn soak(seed: u64) -> SoakResult {
    let mut cluster = Cluster::new(HOSTS, DispatchPolicy::RoundRobin, seed);
    let ull2 = SandboxConfig::builder()
        .vcpus(2)
        .ull(true)
        .build()
        .expect("valid config");
    let ull1 = SandboxConfig::builder()
        .vcpus(1)
        .ull(true)
        .build()
        .expect("valid config");
    let nat = cluster.register("nat", Category::Cat2, ull2);
    let filter = cluster.register("filter", Category::Cat3, ull1);
    for f in [nat, filter] {
        cluster
            .provision_all(f, 4, StartStrategy::Horse)
            .expect("provisioning with a disarmed injector cannot fail");
        cluster
            .provision_all(f, 2, StartStrategy::Warm)
            .expect("provisioning with a disarmed injector cannot fail");
    }

    // Arm chaos only after the baseline pools exist, so both runs start
    // from the same fleet state.
    let plan = FaultPlan::uniform(FAULT_P).with(
        FaultSite::HostFailure,
        FaultTrigger::Nth(HOST_FAILURE_EVERY),
    );
    let injector = FaultInjector::new(seed, plan);
    cluster.set_injector(injector.clone());
    let recorder = Recorder::enabled();
    cluster.set_recorder(recorder.clone());

    let mut result = SoakResult {
        log: Vec::new(),
        clean: BTreeMap::new(),
        degraded: BTreeMap::new(),
        violations: 0,
        unresolved: 0,
        pool_dry: 0,
        retries_exhausted: 0,
        replenished: 0,
        hosts_alive: 0,
        counters: [("", 0); 4],
    };

    for i in 0..INVOCATIONS {
        // Deterministic workload mix: 70 % HORSE starts, 30 % plain warm,
        // alternating between the two functions.
        let strategy = if i % 10 < 7 {
            StartStrategy::Horse
        } else {
            StartStrategy::Warm
        };
        let function = if i % 2 == 0 { nat } else { filter };
        let injected_before = injector.injected_total();
        match cluster.invoke(function, strategy) {
            Ok((_, record)) => {
                let bucket = if injector.injected_total() > injected_before {
                    &mut result.degraded
                } else {
                    &mut result.clean
                };
                bucket
                    .entry(strategy.label())
                    .or_default()
                    .push(record.init_ns);
            }
            Err(FaasError::NoWarmSandbox { .. }) => {
                // Crashes and quarantines shrink the pools over the soak;
                // replenish one entry per alive host and move on (the
                // provisioning itself is also under chaos and may fail).
                result.pool_dry += 1;
                if cluster.provision_all(function, 1, strategy).is_ok() {
                    result.replenished += 1;
                }
            }
            Err(FaasError::RetriesExhausted { .. }) => {
                result.retries_exhausted += 1;
                if cluster.provision_all(function, 1, strategy).is_ok() {
                    result.replenished += 1;
                }
            }
            Err(FaasError::NoHealthyHost) => {
                unreachable!("the host-failure schedule leaves one survivor")
            }
            Err(e) => {
                // Chaos striking the replenishment/re-pause path surfaces
                // as a contained VMM error; the invocation is lost but the
                // fleet keeps serving.
                let _ = e;
            }
        }
        // Queue invariants must hold after every single invocation.
        if i % 100 == 0 || i + 1 == INVOCATIONS {
            result.violations += broken_queues(&cluster);
        }
    }

    result.unresolved = injector.unresolved();
    result.log = injector.log();
    result.hosts_alive = cluster.alive_count();
    result.counters = [
        (
            Counter::FaultsInjected.name(),
            recorder.counter_value(Counter::FaultsInjected),
        ),
        (
            Counter::HorseFallbacks.name(),
            recorder.counter_value(Counter::HorseFallbacks),
        ),
        (
            Counter::PoolQuarantined.name(),
            recorder.counter_value(Counter::PoolQuarantined),
        ),
        (
            Counter::StragglerRescues.name(),
            recorder.counter_value(Counter::StragglerRescues),
        ),
    ];
    result
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn mean(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    (xs.iter().sum::<u64>() as f64 / xs.len() as f64).round() as u64
}

fn main() {
    let opts = horse_bench::CliOptions::from_env();
    println!(
        "chaos soak: {INVOCATIONS} invocations, {HOSTS} hosts, p={FAULT_P} per site, \
         host failure every {HOST_FAILURE_EVERY}, seed {}",
        opts.seed
    );

    let run_a = soak(opts.seed);
    let run_b = soak(opts.seed);

    let mut failed = false;

    // Determinism: the entire fault/recovery sequence must replay.
    if run_a.log == run_b.log {
        println!(
            "determinism: OK — two seed-{} runs produced identical {}-record fault logs",
            opts.seed,
            run_a.log.len()
        );
    } else {
        println!(
            "determinism: FAILED — same-seed logs diverge ({} vs {} records)",
            run_a.log.len(),
            run_b.log.len()
        );
        failed = true;
    }

    if run_a.violations == 0 {
        println!("queue invariants: OK — zero violations across the soak");
    } else {
        println!(
            "queue invariants: FAILED — {} broken-queue observations",
            run_a.violations
        );
        failed = true;
    }

    if run_a.unresolved == 0 {
        println!("recovery coverage: OK — every injected fault has a typed outcome");
    } else {
        println!(
            "recovery coverage: FAILED — {} faults left unresolved",
            run_a.unresolved
        );
        failed = true;
    }

    // Fault → recovery outcome table.
    let mut by_pair: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
    for rec in &run_a.log {
        *by_pair
            .entry((rec.site.label(), rec.outcome.label()))
            .or_default() += 1;
    }
    let mut outcomes = Table::new(
        "chaos soak — injected faults and their recoveries",
        &["site", "recovery", "count"],
    );
    for ((site, outcome), count) in &by_pair {
        outcomes.row(&[site, outcome, &count.to_string()]);
    }
    println!("\n{}", outcomes.render());

    // Clean vs degraded latency per strategy.
    let mut latency = Table::new(
        "chaos soak — init latency, fault-free vs fault-affected",
        &["strategy", "class", "n", "mean", "p99"],
    );
    for (label, buckets) in [("clean", &run_a.clean), ("degraded", &run_a.degraded)] {
        for (strategy, xs) in buckets {
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            latency.row(&[
                strategy,
                label,
                &sorted.len().to_string(),
                &fmt_ns(mean(&sorted)),
                &fmt_ns(percentile(&sorted, 0.99)),
            ]);
        }
    }
    println!("{}", latency.render());

    let mut counters = Table::new("chaos soak — telemetry counters", &["counter", "value"]);
    for (name, value) in &run_a.counters {
        counters.row(&[name, &value.to_string()]);
    }
    println!("{}", counters.render());

    println!(
        "fleet: {}/{HOSTS} hosts alive at the end; {} dry-pool misses, \
         {} retry exhaustions, {} replenishments",
        run_a.hosts_alive, run_a.pool_dry, run_a.retries_exhausted, run_a.replenished
    );

    if failed {
        std::process::exit(1);
    }
}
