//! Wall-clock micro-benchmark of load-update coalescing (paper §4.2):
//! applying the affine update `L(x)=αx+β` once per vCPU versus the
//! precomputed closed form, under a real lock as in the kernel.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use horse_core::LoadUpdate;
use horse_sched::{LoadTracker, RqLoad};

fn bench_update_math(c: &mut Criterion) {
    // The bare arithmetic, no lock: iterated vs closed form.
    let update = LoadUpdate::new(0.9785, 1024.0).expect("valid");
    let mut group = c.benchmark_group("load_update_math");
    for &n in &[1u32, 8, 36, 256] {
        group.bench_with_input(BenchmarkId::new("iterated", n), &n, |b, &n| {
            b.iter(|| update.apply_iterated(black_box(1000.0), n));
        });
        let coalesced = update.coalesce(n);
        group.bench_with_input(BenchmarkId::new("coalesced", n), &n, |b, _| {
            b.iter(|| coalesced.apply(black_box(1000.0)));
        });
    }
    group.finish();
}

fn bench_locked_update(c: &mut Criterion) {
    // The full step-⑤ behaviour: lock acquisition per update (vanilla)
    // versus one acquisition (HORSE).
    let tracker = LoadTracker::pelt_default();
    let mut group = c.benchmark_group("load_update_locked");
    for &n in &[1u32, 8, 36] {
        group.bench_with_input(BenchmarkId::new("per_vcpu_locked", n), &n, |b, &n| {
            let load = RqLoad::new();
            b.iter(|| load.apply_per_vcpu(tracker.update(), n));
        });
        let coalesced = tracker.coalesce(n);
        group.bench_with_input(BenchmarkId::new("coalesced_locked", n), &n, |b, _| {
            let load = RqLoad::new();
            b.iter(|| load.apply_coalesced(coalesced));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_math, bench_locked_update);
criterion_main!(benches);
