//! Wall-clock benchmark of the full resume pipeline in the paper's four
//! setups (Figure 3's real-execution counterpart): the entire
//! pause-precompute-resume cycle runs on the scheduler substrate and the
//! resume call itself is timed.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use horse_bench::{paper_sched_config, policy_for};
use horse_sched::SandboxId;
use horse_vmm::{CostModel, ResumeMode, SandboxConfig, Vmm};

fn prepared_vmm(vcpus: u32, mode: ResumeMode) -> (Vmm, SandboxId) {
    let mut vmm = Vmm::new(paper_sched_config(), CostModel::calibrated());
    let cfg = SandboxConfig::builder()
        .vcpus(vcpus)
        .memory_mb(512)
        .ull(true)
        .build()
        .expect("valid");
    let id = vmm.create(cfg);
    vmm.start(id).expect("starts");
    vmm.pause(id, policy_for(mode)).expect("pauses");
    (vmm, id)
}

fn bench_resume(c: &mut Criterion) {
    let mut group = c.benchmark_group("resume_pipeline");
    for &vcpus in &[1u32, 8, 36] {
        for mode in ResumeMode::ALL {
            group.bench_with_input(
                BenchmarkId::new(mode.label(), vcpus),
                &vcpus,
                |b, &vcpus| {
                    b.iter_batched(
                        || prepared_vmm(vcpus, mode),
                        |(mut vmm, id)| {
                            vmm.resume(id, mode).expect("resumes");
                            vmm
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn bench_pause(c: &mut Criterion) {
    // The off-critical-path cost HORSE moves to pause time (ablation for
    // DESIGN.md §5.2: precompute-on-pause).
    let mut group = c.benchmark_group("pause_pipeline");
    for &vcpus in &[1u32, 36] {
        for mode in [ResumeMode::Vanilla, ResumeMode::Horse] {
            group.bench_with_input(
                BenchmarkId::new(mode.label(), vcpus),
                &vcpus,
                |b, &vcpus| {
                    b.iter_batched(
                        || {
                            let mut vmm = Vmm::new(paper_sched_config(), CostModel::calibrated());
                            let cfg = SandboxConfig::builder()
                                .vcpus(vcpus)
                                .ull(true)
                                .build()
                                .expect("valid");
                            let id = vmm.create(cfg);
                            vmm.start(id).expect("starts");
                            (vmm, id)
                        },
                        |(mut vmm, id)| {
                            vmm.pause(id, policy_for(mode)).expect("pauses");
                            vmm
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_resume, bench_pause);
criterion_main!(benches);
