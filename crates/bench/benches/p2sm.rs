//! Wall-clock micro-benchmarks of 𝒫²𝒮ℳ versus the vanilla sorted merge.
//!
//! These complement the deterministic cost model: they measure the *real*
//! execution time of the same data-structure code on the build machine.
//! The expected shape mirrors the paper's Figure 3: the vanilla
//! per-element merge grows with the number of merged elements, the
//! 𝒫²𝒮ℳ splice does not. The ablation also compares the sequential and
//! parallel splice, isolating the thread-kickoff cost (DESIGN.md §5.1).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use horse_core::{Arena, MergePlan, SortedList, SpliceMode};

/// Builds the merge inputs: a run queue B of `b_len` entries and a
/// sandbox vCPU list A of `a_len` entries with interleaved keys.
fn setup(b_len: usize, a_len: usize) -> (Arena<u64>, SortedList, SortedList) {
    let mut arena = Arena::with_capacity(b_len + a_len);
    let mut b = SortedList::new();
    for i in 0..b_len {
        b.insert_sorted(&mut arena, (i as i64) * 10, i as u64);
    }
    let mut a = SortedList::new();
    for i in 0..a_len {
        a.insert_sorted(&mut arena, (i as i64) * 10 + 5, i as u64);
    }
    (arena, b, a)
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorted_merge_36_vcpus");
    const B_LEN: usize = 64;
    for &a_len in &[1usize, 4, 16, 36] {
        group.bench_with_input(
            BenchmarkId::new("vanilla_per_element", a_len),
            &a_len,
            |bench, &a_len| {
                bench.iter_batched(
                    || setup(B_LEN, 0),
                    |(mut arena, mut b, _)| {
                        for i in 0..a_len {
                            b.insert_sorted(&mut arena, (i as i64) * 10 + 5, i as u64);
                        }
                        (arena, b)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("merge_walk_on_plus_m", a_len),
            &a_len,
            |bench, &a_len| {
                bench.iter_batched(
                    || setup(B_LEN, a_len),
                    |(arena, mut b, a)| {
                        b.merge_walk(&arena, a);
                        (arena, b)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("p2sm_sequential", a_len),
            &a_len,
            |bench, &a_len| {
                bench.iter_batched(
                    || {
                        let (arena, b, a) = setup(B_LEN, a_len);
                        let plan = MergePlan::precompute(&arena, &b, a);
                        (arena, b, plan)
                    },
                    |(arena, mut b, plan)| {
                        plan.merge(&arena, &mut b, SpliceMode::Sequential).unwrap();
                        (arena, b)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("p2sm_chunked_4", a_len),
            &a_len,
            |bench, &a_len| {
                bench.iter_batched(
                    || {
                        let (arena, b, a) = setup(B_LEN, a_len);
                        let plan = MergePlan::precompute(&arena, &b, a);
                        (arena, b, plan)
                    },
                    |(arena, mut b, plan)| {
                        plan.merge(&arena, &mut b, SpliceMode::ParallelChunked { threads: 4 })
                            .unwrap();
                        (arena, b)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("p2sm_parallel", a_len),
            &a_len,
            |bench, &a_len| {
                bench.iter_batched(
                    || {
                        let (arena, b, a) = setup(B_LEN, a_len);
                        let plan = MergePlan::precompute(&arena, &b, a);
                        (arena, b, plan)
                    },
                    |(arena, mut b, plan)| {
                        plan.merge(&arena, &mut b, SpliceMode::Parallel).unwrap();
                        (arena, b)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_precompute(c: &mut Criterion) {
    // The pause-time cost 𝒫²𝒮ℳ pays to make the resume O(1).
    let mut group = c.benchmark_group("p2sm_precompute");
    for &size in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, &size| {
            bench.iter_batched(
                || setup(size, size),
                |(arena, b, a)| MergePlan::precompute(&arena, &b, a),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merge,
    bench_precompute,
    bench_plan_maintenance
);
criterion_main!(benches);

/// Ablation (DESIGN.md §5.2): maintaining the plan incrementally when the
/// ull_runqueue changes versus rebuilding it from scratch. The paper's
/// §4.1.1 claims cheap incremental updates; this measures both against a
/// pop-front churn pattern.
fn bench_plan_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_maintenance");
    for &b_len in &[16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("incremental_pop", b_len),
            &b_len,
            |bench, &b_len| {
                bench.iter_batched(
                    || {
                        let (mut arena, mut b, a) = setup(b_len, 16);
                        let plan = MergePlan::precompute(&arena, &b, a);
                        // One pop to maintain.
                        b.pop_front(&mut arena);
                        (arena, b, plan)
                    },
                    |(arena, b, mut plan)| {
                        plan.on_b_pop_front(&arena, &b);
                        (arena, b, plan)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_rebuild", b_len),
            &b_len,
            |bench, &b_len| {
                bench.iter_batched(
                    || {
                        let (mut arena, mut b, a) = setup(b_len, 16);
                        let plan = MergePlan::precompute(&arena, &b, a);
                        b.pop_front(&mut arena);
                        (arena, b, plan)
                    },
                    |(arena, b, plan)| {
                        let list = plan.into_list(&arena);
                        let rebuilt = MergePlan::precompute(&arena, &b, list);
                        (arena, b, rebuilt)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}
