//! Wall-clock micro-benchmark of `Histogram::record`, the per-sample
//! cost on the multi-threaded load generator's hot path (one latency
//! record per invocation per driver thread) and in the tail attributor.
//!
//! `record` is `#[inline]` so the cross-crate call dissolves into the
//! caller's loop; this bench tracks the per-op cost (the throughput
//! suite reports the same measurement as `histogram_record_ns_per_op`
//! in `BENCH_throughput.json`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use horse_metrics::Histogram;

/// A deterministic latency-shaped value stream (xorshift around a
/// ~200ns..~2ms span) — exercises bucket 0 and the log buckets alike.
fn values(n: usize) -> Vec<u64> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            200 + (x % 2_000_000)
        })
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_record");
    for &n in &[1_000usize, 100_000] {
        let vals = values(n);
        group.bench_with_input(BenchmarkId::new("record", n), &vals, |b, vals| {
            b.iter(|| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.record(black_box(v));
                }
                black_box(h.len())
            });
        });
    }
    // The merge path the per-thread histograms funnel through.
    let vals = values(100_000);
    group.bench_function("merge_100k_into_empty", |b| {
        let mut src = Histogram::new();
        for &v in &vals {
            src.record(v);
        }
        b.iter(|| {
            let mut dst = Histogram::new();
            dst.merge(black_box(&src));
            black_box(dst.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
