//! Periodic sampling on the virtual clock.
//!
//! The paper's §5.2 experiment samples CPU and memory every 500 ms.
//! [`Sampler`] produces those tick instants on the virtual clock and
//! tells a simulation loop which sample indices are due — decoupling the
//! sampling cadence from the event cadence.

use crate::{SimDuration, SimTime};

/// A fixed-period tick generator over virtual time.
///
/// # Example
///
/// ```
/// use horse_sim::{Sampler, SimDuration, SimTime};
///
/// let mut s = Sampler::new(SimDuration::from_millis(500));
/// // Nothing due at t=0 except the initial tick.
/// assert_eq!(s.due(SimTime::ZERO), vec![0]);
/// // Advancing 1.2 s emits ticks 1 and 2.
/// let t = SimTime::ZERO + SimDuration::from_millis(1_200);
/// assert_eq!(s.due(t), vec![1, 2]);
/// assert_eq!(s.emitted(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sampler {
    period: SimDuration,
    next_index: u64,
}

impl Sampler {
    /// Creates a sampler with the given period.
    ///
    /// # Panics
    ///
    /// Panics on a zero period.
    pub fn new(period: SimDuration) -> Self {
        assert!(
            period > SimDuration::ZERO,
            "sampler needs a positive period"
        );
        Self {
            period,
            next_index: 0,
        }
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Number of ticks emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_index
    }

    /// Virtual time of a given tick index.
    pub fn tick_time(&self, index: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(index * self.period.as_nanos())
    }

    /// Returns every not-yet-emitted tick index with `tick_time <= now`,
    /// in order. Call on each simulation step; empty when nothing is due.
    pub fn due(&mut self, now: SimTime) -> Vec<u64> {
        let mut out = Vec::new();
        while self.tick_time(self.next_index) <= now {
            out.push(self.next_index);
            self.next_index += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_regular() {
        let mut s = Sampler::new(SimDuration::from_millis(500));
        assert_eq!(s.tick_time(3), SimTime::from_nanos(1_500_000_000));
        let due = s.due(SimTime::from_nanos(2_000_000_000));
        assert_eq!(due, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.emitted(), 5);
    }

    #[test]
    fn no_double_emission() {
        let mut s = Sampler::new(SimDuration::from_secs(1));
        assert_eq!(s.due(SimTime::from_nanos(1_500_000_000)), vec![0, 1]);
        assert!(s.due(SimTime::from_nanos(1_900_000_000)).is_empty());
        assert_eq!(s.due(SimTime::from_nanos(2_000_000_000)), vec![2]);
    }

    #[test]
    fn period_accessor() {
        let s = Sampler::new(SimDuration::from_micros(250));
        assert_eq!(s.period(), SimDuration::from_micros(250));
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_period_panics() {
        Sampler::new(SimDuration::ZERO);
    }
}
