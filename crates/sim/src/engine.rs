//! Event-heap discrete-event loop.

use crate::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: ordered by time, then by insertion sequence so that
/// same-time events are delivered FIFO (deterministic replay).
struct Pending<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A minimal deterministic discrete-event engine.
///
/// The engine owns a priority queue of `(time, event)` pairs. Simulations
/// drive it with a `while let Some((t, ev)) = engine.pop()` loop, scheduling
/// follow-up events as they process each one. Events scheduled for the same
/// instant are delivered in scheduling order.
///
/// # Example
///
/// ```
/// use horse_sim::{Engine, SimDuration, SimTime};
///
/// let mut e = Engine::new();
/// e.schedule_after(SimDuration::from_nanos(10), "b");
/// e.schedule_after(SimDuration::from_nanos(10), "c");
/// e.schedule(SimTime::ZERO, "a");
/// let seen: Vec<_> = std::iter::from_fn(|| e.pop().map(|(_, ev)| ev)).collect();
/// assert_eq!(seen, vec!["a", "b", "c"]);
/// ```
#[derive(Default)]
pub struct Engine<E> {
    heap: BinaryHeap<Reverse<Pending<E>>>,
    now: SimTime,
    next_seq: u64,
    delivered: u64,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            delivered: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the engine's current time):
    /// discrete-event causality would otherwise be violated.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Pending { at, seq, event }));
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// Returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(p) = self.heap.pop()?;
        debug_assert!(p.at >= self.now);
        self.now = p.at;
        self.delivered += 1;
        Some((p.at, p.event))
    }

    /// Pops the next event only if it occurs at or before `limit`.
    /// The clock never advances past `limit` via this method.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse(p)) if p.at <= limit => self.pop(),
            _ => None,
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(p)| p.at)
    }

    /// Delivers *every* event scheduled for the next pending timestamp
    /// in one call, appending them (in FIFO scheduling order) to `out`
    /// and returning that timestamp. Returns `None` when the engine is
    /// drained; `out` is untouched then.
    ///
    /// This is the batch fast path for simultaneous-event bursts: a
    /// `pop`-loop peeks and then pops each event (two heap inspections
    /// per delivery, plus a wasted peek at the first event of the next
    /// timestamp); `drain_at` inspects the head once per event via
    /// [`std::collections::binary_heap::PeekMut`] and stops at the
    /// first head that belongs to a later instant without disturbing
    /// the heap. Delivery order and clock behaviour are identical to
    /// the `pop` loop (see the equivalence test).
    pub fn drain_at(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        use std::collections::binary_heap::PeekMut;
        let at = self.heap.peek().map(|Reverse(p)| p.at)?;
        debug_assert!(at >= self.now);
        self.now = at;
        while let Some(top) = self.heap.peek_mut() {
            if top.0.at != at {
                break;
            }
            let Reverse(p) = PeekMut::pop(top);
            self.delivered += 1;
            out.push(p.event);
        }
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(30), 3);
        e.schedule(SimTime::from_nanos(10), 1);
        e.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<_> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.delivered(), 3);
        assert!(e.is_idle());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut e = Engine::new();
        for i in 0..100 {
            e.schedule(SimTime::from_nanos(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(5), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(10), ());
        e.pop();
        e.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(100), "first");
        e.pop();
        e.schedule_after(SimDuration::from_nanos(50), "second");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(150));
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(10), 1);
        e.schedule(SimTime::from_nanos(100), 2);
        assert_eq!(
            e.pop_until(SimTime::from_nanos(50)).map(|(_, v)| v),
            Some(1)
        );
        assert_eq!(e.pop_until(SimTime::from_nanos(50)), None);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.peek_time(), Some(SimTime::from_nanos(100)));
    }

    #[test]
    fn drain_at_delivers_a_whole_instant_fifo() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(10), "b1");
        e.schedule(SimTime::from_nanos(5), "a1");
        e.schedule(SimTime::from_nanos(10), "b2");
        e.schedule(SimTime::from_nanos(5), "a2");
        let mut batch = Vec::new();
        assert_eq!(e.drain_at(&mut batch), Some(SimTime::from_nanos(5)));
        assert_eq!(batch, vec!["a1", "a2"]);
        assert_eq!(e.now(), SimTime::from_nanos(5));
        batch.clear();
        assert_eq!(e.drain_at(&mut batch), Some(SimTime::from_nanos(10)));
        assert_eq!(batch, vec!["b1", "b2"]);
        assert_eq!(e.delivered(), 4);
        assert_eq!(e.drain_at(&mut batch), None, "drained");
        assert_eq!(batch, vec!["b1", "b2"], "untouched on None");
    }

    #[test]
    fn drain_at_is_equivalent_to_the_pop_loop() {
        // Same schedule, two engines: the batched drain must deliver the
        // exact event sequence (and clock trajectory) of the pop loop.
        let build = || {
            let mut e = Engine::new();
            for (seq, t) in [7u64, 3, 7, 3, 3, 12, 7, 12, 0].into_iter().enumerate() {
                e.schedule(SimTime::from_nanos(t), seq as u32);
            }
            e
        };
        let mut popped = Vec::new();
        let mut by_pop = build();
        while let Some((t, v)) = by_pop.pop() {
            popped.push((t, v));
        }
        let mut drained = Vec::new();
        let mut by_drain = build();
        let mut batch = Vec::new();
        while let Some(t) = by_drain.drain_at(&mut batch) {
            drained.extend(batch.drain(..).map(|v| (t, v)));
            assert_eq!(by_drain.now(), t);
        }
        assert_eq!(popped, drained);
        assert_eq!(by_pop.delivered(), by_drain.delivered());
        assert_eq!(by_pop.now(), by_drain.now());
    }

    #[test]
    fn interleaved_scheduling_stays_deterministic() {
        // Two identically-seeded runs must produce identical delivery.
        let run = || {
            let mut e = Engine::new();
            e.schedule(SimTime::from_nanos(1), 0u32);
            let mut log = Vec::new();
            while let Some((t, v)) = e.pop() {
                log.push((t.as_nanos(), v));
                if v < 5 {
                    e.schedule_after(SimDuration::from_nanos(3), v + 1);
                    e.schedule_after(SimDuration::from_nanos(3), v + 100);
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
