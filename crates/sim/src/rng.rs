//! Deterministic random-number plumbing.
//!
//! Every stochastic element of an experiment (trace synthesis, arrival
//! jitter, service-time noise…) draws from its own named stream derived
//! from one master seed, so adding a new consumer never perturbs existing
//! ones and every run is reproducible bit-for-bit from `--seed`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent [`StdRng`] streams from a master seed.
///
/// Streams are identified by a string label; the same `(seed, label)` pair
/// always yields the same stream, and distinct labels yield statistically
/// independent streams (label is mixed into the seed with FNV-1a followed
/// by SplitMix64 finalization).
///
/// # Example
///
/// ```
/// use horse_sim::rng::SeedFactory;
/// use rand::Rng;
///
/// let f = SeedFactory::new(42);
/// let mut a = f.stream("arrivals");
/// let mut b = f.stream("service");
/// let x: u64 = a.gen();
/// let y: u64 = b.gen();
/// // Re-deriving the same stream replays it.
/// let mut a2 = f.stream("arrivals");
/// assert_eq!(x, a2.gen::<u64>());
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Creates a factory from a master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the RNG stream for `label`.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.stream_seed(label))
    }

    /// Derives a numbered sub-stream, e.g. one per simulated entity.
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        let base = self.stream_seed(label);
        StdRng::seed_from_u64(splitmix64(base ^ splitmix64(index)))
    }

    /// The 64-bit seed behind [`Self::stream`] for `label` — for
    /// consumers that run their own counter-based generator (e.g. a
    /// pure splitmix64 stream indexed by invocation) instead of a
    /// stateful [`StdRng`]. Stable across runs for a fixed
    /// `(master, label)` pair.
    pub fn stream_seed(&self, label: &str) -> u64 {
        // FNV-1a over the label, mixed with the master seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(h ^ self.master.rotate_left(32))
    }
}

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer. Public
/// so lock-free consumers (e.g. the platform's per-invocation exec
/// jitter) can derive counter-indexed draws without a shared RNG.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_replays() {
        let f = SeedFactory::new(7);
        let xs: Vec<u64> = f
            .stream("a")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = f
            .stream("a")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let f = SeedFactory::new(7);
        let x: u64 = f.stream("a").gen();
        let y: u64 = f.stream("b").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn different_seeds_diverge() {
        let x: u64 = SeedFactory::new(1).stream("a").gen();
        let y: u64 = SeedFactory::new(2).stream("a").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let f = SeedFactory::new(99);
        let x: u64 = f.stream_indexed("fn", 0).gen();
        let y: u64 = f.stream_indexed("fn", 1).gen();
        let x2: u64 = f.stream_indexed("fn", 0).gen();
        assert_ne!(x, y);
        assert_eq!(x, x2);
        assert_eq!(f.master(), 99);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
