//! Discrete-event simulation engine for the HORSE reproduction.
//!
//! The paper's macro-scale experiments (cold boots taking 1.5 s, traces
//! spanning 30 s, 500 ms usage sampling) cannot be executed in real time in
//! a reproduction, so they run on a **virtual clock**. This crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time;
//! * [`Engine`] — a classic event-heap discrete-event loop with
//!   deterministic FIFO tie-breaking;
//! * [`rng`] — seeded, stream-split random number generation so every
//!   experiment is reproducible from a single `--seed`.
//!
//! The *micro*-scale resume-path costs (the paper's Figures 2–3) are not
//! simulated: they are executed for real by `horse-vmm` on the
//! `horse-sched` substrate and only *accounted* in virtual time here.
//!
//! # Example
//!
//! ```
//! use horse_sim::{Engine, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::ZERO + SimDuration::from_micros(5), Ev::Ping(1));
//! engine.schedule(SimTime::ZERO + SimDuration::from_micros(1), Ev::Ping(2));
//! let mut order = Vec::new();
//! while let Some((t, ev)) = engine.pop() {
//!     let Ev::Ping(id) = ev;
//!     order.push((t.as_nanos(), id));
//! }
//! assert_eq!(order, vec![(1_000, 2), (5_000, 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod rng;
mod sampler;
mod time;

pub use engine::Engine;
pub use sampler::Sampler;
pub use time::{SimDuration, SimTime};
