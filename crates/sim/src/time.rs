//! Virtual time types.
//!
//! All simulation time in this repository is expressed in nanoseconds,
//! matching the paper's measurement resolution (HORSE resumes take ≈150 ns).
//! [`SimTime`] is an absolute instant on the virtual clock; [`SimDuration`]
//! is a span between instants. Both are thin `u64` newtypes so arithmetic is
//! explicit and unit bugs are caught at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An absolute instant on the virtual clock, in nanoseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the origin (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since the origin (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {} < {}",
            self.0,
            earlier.0
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "duration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}µs", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.2}s", self.0 as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        let t2 = t + SimDuration::from_micros(5);
        assert_eq!((t2 - t).as_nanos(), 5_000);
        assert_eq!((SimDuration::from_nanos(10) * 3).as_nanos(), 30);
        let mut d = SimDuration::from_nanos(1);
        d += SimDuration::from_nanos(2);
        assert_eq!(d.as_nanos(), 3);
        assert_eq!(
            (SimDuration::from_nanos(5) - SimDuration::from_nanos(2)).as_nanos(),
            3
        );
        assert_eq!(
            SimDuration::from_nanos(2)
                .saturating_sub(SimDuration::from_nanos(5))
                .as_nanos(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_rejects_backwards() {
        SimTime::from_nanos(5).since(SimTime::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "duration underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_micros(1_500);
        assert!((d.as_micros_f64() - 1_500.0).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.0015).abs() < 1e-12);
        let t = SimTime::from_nanos(2_500);
        assert!((t.as_micros_f64() - 2.5).abs() < 1e-12);
        assert!((t.as_secs_f64() - 2.5e-6).abs() < 1e-18);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(999).to_string(), "999ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.50µs");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.00ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.00s");
        assert_eq!(SimTime::from_nanos(7).to_string(), "t+7ns");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        SimDuration::from_secs_f64(-1.0);
    }
}
