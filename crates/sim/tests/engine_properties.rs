//! Property tests of the discrete-event engine: total ordering,
//! FIFO tie-breaking, and replay determinism under arbitrary schedules.

use horse_sim::{Engine, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always come out in (time, insertion) order regardless of
    /// the insertion order.
    #[test]
    fn delivery_is_totally_ordered(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let mut e = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut seen = 0;
        while let Some((t, idx)) = e.pop() {
            prop_assert_eq!(t.as_nanos(), times[idx]);
            if let Some((lt, lidx)) = last {
                prop_assert!(t > lt || (t == lt && idx > lidx), "order violated");
            }
            last = Some((t, idx));
            seen += 1;
        }
        prop_assert_eq!(seen, times.len());
        prop_assert_eq!(e.delivered(), times.len() as u64);
        prop_assert!(e.is_idle());
    }

    /// The clock never goes backwards, even with follow-up scheduling.
    #[test]
    fn clock_is_monotone(
        seeds in proptest::collection::vec((0u64..1000, 0u64..100), 1..50),
    ) {
        let mut e = Engine::new();
        for &(t, _) in &seeds {
            e.schedule(SimTime::from_nanos(t), t);
        }
        let mut now = SimTime::ZERO;
        let mut budget = 500; // bound follow-ups
        while let Some((t, v)) = e.pop() {
            prop_assert!(t >= now);
            now = t;
            if budget > 0 && v % 3 == 0 {
                budget -= 1;
                e.schedule_after(SimDuration::from_nanos(v % 7 + 1), v + 1);
            }
        }
    }

    /// pop_until never crosses the limit and preserves the remainder.
    #[test]
    fn pop_until_respects_limit(
        times in proptest::collection::vec(0u64..1_000, 0..100),
        limit in 0u64..1_000,
    ) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule(SimTime::from_nanos(t), t);
        }
        let mut below = 0;
        while let Some((t, _)) = e.pop_until(SimTime::from_nanos(limit)) {
            prop_assert!(t.as_nanos() <= limit);
            below += 1;
        }
        let expected_below = times.iter().filter(|&&t| t <= limit).count();
        prop_assert_eq!(below, expected_below);
        prop_assert_eq!(e.pending(), times.len() - expected_below);
    }

    /// Identical schedules replay identically (the determinism the whole
    /// experiment suite depends on).
    #[test]
    fn replay_is_deterministic(times in proptest::collection::vec(0u64..10_000, 0..100)) {
        let run = || {
            let mut e = Engine::new();
            for (i, &t) in times.iter().enumerate() {
                e.schedule(SimTime::from_nanos(t), i);
            }
            let mut log = Vec::new();
            while let Some((t, v)) = e.pop() {
                log.push((t.as_nanos(), v));
            }
            log
        };
        prop_assert_eq!(run(), run());
    }
}
