//! Per-site trigger configuration.

use crate::site::FaultSite;
use serde::{Deserialize, Serialize};

/// When a site fires, evaluated against the site's arrival counter and
/// its private RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum FaultTrigger {
    /// Never fires (the default for every site).
    #[default]
    Never,
    /// Fires independently on each arrival with probability `p`
    /// (clamped to `[0, 1]`), drawn from the site's seeded stream.
    Probability(f64),
    /// Fires on every `n`-th arrival (1-based; `Nth(3)` fires on
    /// arrivals 3, 6, 9, …). `Nth(0)` never fires.
    Nth(u64),
    /// Fires exactly once, on arrival `k` (1-based). `Once(0)` never
    /// fires.
    Once(u64),
}

impl FaultTrigger {
    /// Whether the trigger fires for the given 1-based arrival number.
    /// `coin` is a uniform draw in `[0, 1)` from the site's stream —
    /// always consumed by the caller for [`FaultTrigger::Probability`]
    /// so trigger changes don't shift other sites' streams.
    pub(crate) fn fires(self, arrival: u64, coin: f64) -> bool {
        match self {
            FaultTrigger::Never => false,
            FaultTrigger::Probability(p) => coin < p.clamp(0.0, 1.0),
            FaultTrigger::Nth(n) => n != 0 && arrival % n == 0,
            FaultTrigger::Once(k) => k != 0 && arrival == k,
        }
    }
}

/// The full injection configuration: one [`FaultTrigger`] per
/// [`FaultSite`].
///
/// # Example
///
/// ```
/// use horse_faults::{FaultPlan, FaultSite, FaultTrigger};
///
/// let plan = FaultPlan::new()
///     .with(FaultSite::ResumePlanStale, FaultTrigger::Probability(0.05))
///     .with(FaultSite::CrashMidResume, FaultTrigger::Nth(100))
///     .with(FaultSite::HostFailure, FaultTrigger::Once(5_000));
/// assert_eq!(
///     plan.trigger(FaultSite::ResumePlanStale),
///     FaultTrigger::Probability(0.05)
/// );
/// assert_eq!(plan.trigger(FaultSite::CoalescePoisoned), FaultTrigger::Never);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    triggers: [FaultTrigger; FaultSite::COUNT],
}

impl FaultPlan {
    /// A plan where no site fires.
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan firing every site independently with probability `p` —
    /// the chaos-soak default.
    pub fn uniform(p: f64) -> Self {
        let mut plan = Self::new();
        for site in FaultSite::ALL {
            plan.triggers[site.index()] = FaultTrigger::Probability(p);
        }
        plan
    }

    /// Sets one site's trigger (builder style).
    pub fn with(mut self, site: FaultSite, trigger: FaultTrigger) -> Self {
        self.triggers[site.index()] = trigger;
        self
    }

    /// Reads one site's trigger.
    pub fn trigger(&self, site: FaultSite) -> FaultTrigger {
        self.triggers[site.index()]
    }

    /// Whether any site can ever fire.
    pub fn is_armed(&self) -> bool {
        self.triggers
            .iter()
            .any(|t| !matches!(t, FaultTrigger::Never))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_never() {
        let plan = FaultPlan::new();
        assert!(!plan.is_armed());
        for site in FaultSite::ALL {
            assert_eq!(plan.trigger(site), FaultTrigger::Never);
        }
    }

    #[test]
    fn trigger_semantics() {
        assert!(!FaultTrigger::Never.fires(1, 0.0));
        assert!(FaultTrigger::Probability(0.5).fires(1, 0.49));
        assert!(!FaultTrigger::Probability(0.5).fires(1, 0.5));
        assert!(FaultTrigger::Probability(2.0).fires(9, 0.999), "clamped");
        assert!(!FaultTrigger::Nth(0).fires(7, 0.0));
        assert!(FaultTrigger::Nth(3).fires(3, 0.9));
        assert!(FaultTrigger::Nth(3).fires(6, 0.9));
        assert!(!FaultTrigger::Nth(3).fires(4, 0.0));
        assert!(FaultTrigger::Once(2).fires(2, 0.9));
        assert!(!FaultTrigger::Once(2).fires(4, 0.0));
        assert!(!FaultTrigger::Once(0).fires(0, 0.0));
    }

    #[test]
    fn uniform_arms_every_site() {
        let plan = FaultPlan::uniform(0.25);
        assert!(plan.is_armed());
        for site in FaultSite::ALL {
            assert_eq!(plan.trigger(site), FaultTrigger::Probability(0.25));
        }
    }
}
