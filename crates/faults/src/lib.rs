//! # horse-faults — deterministic chaos for the HORSE pipeline
//!
//! HORSE's speed comes from trusting precomputed state (the 𝒫²𝒮ℳ
//! `MergePlan`, the coalesced load factors, the warm pool) that can go
//! stale or be corrupted between pause and resume. The paper assumes it
//! is always valid; a production platform cannot. This crate is the
//! fault-injection plane that exercises those assumptions on purpose:
//!
//! * [`FaultSite`] — the closed vocabulary of injection points, from a
//!   staled `MergePlan` at resume step ④ to whole-host failure.
//! * [`FaultTrigger`] / [`FaultPlan`] — per-site firing rules
//!   (probability, every-nth, one-shot), fully seeded.
//! * [`FaultInjector`] — a cheap-clone, disabled-by-default handle
//!   (mirroring the telemetry `Recorder`) that components consult at
//!   each site. Same seed + same plan + same arrival order ⇒ identical
//!   injection sequence, so chaos runs replay exactly.
//! * [`RecoveryOutcome`] / [`FaultRecord`] — every injected fault is
//!   resolved to a typed outcome in an ordered log, which the
//!   `chaos_soak` bench audits (no fault may end unresolved, and two
//!   same-seed runs must produce identical logs).
//! * [`RetryPolicy`] — bounded retry with exponential backoff for
//!   re-provisioning quarantined sandboxes.
//!
//! The recovery *mechanisms* live with the components they protect
//! (`horse-vmm` falls back to the vanilla merge, `horse-sched` rescues
//! straggling splices, `horse-faas` quarantines pool entries and
//! evacuates failed hosts); this crate only decides *when* to break
//! things and keeps the audit trail.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod injector;
mod plan;
mod retry;
mod site;

pub use injector::{FaultId, FaultInjector, FaultRecord, RecoveryOutcome};
pub use plan::{FaultPlan, FaultTrigger};
pub use retry::RetryPolicy;
pub use site::FaultSite;
