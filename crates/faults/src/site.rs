//! The closed vocabulary of injection sites.

use serde::{Deserialize, Serialize};

/// Where a fault can be injected in the pause/resume pipeline.
///
/// Sites form a closed vocabulary (like the telemetry event kinds) so the
/// injector state is fixed-size arrays indexed by discriminant and a
/// [`FaultPlan`](crate::FaultPlan) can be fully enumerated in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FaultSite {
    /// The `MergePlan` went stale between pause and resume (step ④): *B*
    /// mutated without maintenance callbacks reaching the plan.
    ResumePlanStale = 0,
    /// The `MergePlan`'s auxiliary structures (`arrayB`/`posA`) were
    /// corrupted between pause and resume (step ④).
    ResumePlanCorrupt = 1,
    /// A splice thread straggles past the watchdog budget during the
    /// parallel merge.
    SpliceStraggler = 2,
    /// A splice thread dies outright during the parallel merge.
    SpliceThreadDeath = 3,
    /// The precomputed coalescing factors are poisoned (step ⑤).
    CoalescePoisoned = 4,
    /// The sandbox crashes mid-pause (after vCPUs were dequeued, before
    /// the paused state is sealed).
    CrashMidPause = 5,
    /// The sandbox crashes mid-resume (after sanity checks, before the
    /// merge lands).
    CrashMidResume = 6,
    /// A warm-pool entry turns out to be invalid when popped (the parked
    /// sandbox silently died while pooled).
    PoolEntryInvalid = 7,
    /// A whole host fails in the cluster.
    HostFailure = 8,
}

impl FaultSite {
    /// Every site, in discriminant order.
    pub const ALL: [FaultSite; 9] = [
        FaultSite::ResumePlanStale,
        FaultSite::ResumePlanCorrupt,
        FaultSite::SpliceStraggler,
        FaultSite::SpliceThreadDeath,
        FaultSite::CoalescePoisoned,
        FaultSite::CrashMidPause,
        FaultSite::CrashMidResume,
        FaultSite::PoolEntryInvalid,
        FaultSite::HostFailure,
    ];

    /// Number of sites (array dimension for injector state).
    pub const COUNT: usize = Self::ALL.len();

    /// Export name (used in reports, telemetry args, and RNG stream
    /// labels).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::ResumePlanStale => "resume_plan_stale",
            FaultSite::ResumePlanCorrupt => "resume_plan_corrupt",
            FaultSite::SpliceStraggler => "splice_straggler",
            FaultSite::SpliceThreadDeath => "splice_thread_death",
            FaultSite::CoalescePoisoned => "coalesce_poisoned",
            FaultSite::CrashMidPause => "crash_mid_pause",
            FaultSite::CrashMidResume => "crash_mid_resume",
            FaultSite::PoolEntryInvalid => "pool_entry_invalid",
            FaultSite::HostFailure => "host_failure",
        }
    }

    /// Index into per-site state arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_match_all_order() {
        for (i, s) in FaultSite::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = FaultSite::ALL.iter().map(|s| s.label()).collect();
        let total = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), total);
    }
}
