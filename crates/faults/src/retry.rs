//! Bounded retry with exponential backoff.

use serde::{Deserialize, Serialize};

/// Retry policy for re-provisioning quarantined sandboxes (and any other
/// recoverable platform operation): a bounded number of attempts with
/// exponential backoff, capped so a burst of failures cannot push a
/// single recovery into the seconds range.
///
/// Backoff is charged on the *virtual* clock — it adds to the recorded
/// initialization latency of the invocation that absorbed the recovery,
/// which is how degraded-path tail latency becomes visible in reports.
///
/// # Example
///
/// ```
/// use horse_faults::RetryPolicy;
///
/// let p = RetryPolicy::default();
/// assert_eq!(p.backoff_ns(0), 0);              // first attempt is free
/// assert_eq!(p.backoff_ns(1), p.base_backoff_ns);
/// assert_eq!(p.backoff_ns(2), 2 * p.base_backoff_ns);
/// assert!(p.backoff_ns(30) <= p.max_backoff_ns);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts beyond the first (0 = fail immediately on first error).
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual ns.
    pub base_backoff_ns: u64,
    /// Cap on any single backoff, in virtual ns.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    /// 3 retries, 10 µs base, 1 ms cap — generous next to a ≈1.3 ms
    /// snapshot restore, negligible next to a cold boot.
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_ns: 10_000,
            max_backoff_ns: 1_000_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Doubling stops after this many shifts. `base · 2^32` already
    /// saturates any meaningful `max_backoff_ns` (a 1 ns base reaches
    /// ~4.3 s), and clamping the exponent well below 63 keeps the
    /// multiplier itself representable for every `attempt` up to
    /// `u32::MAX` — the overflow is confined to `saturating_mul`, never
    /// to the shift.
    pub const MAX_BACKOFF_SHIFT: u32 = 32;

    /// Backoff before attempt `attempt` (0-based; the first attempt is
    /// immediate, retry `k` waits `base · 2^(k−1)`, capped).
    ///
    /// Total-ordering guarantee: the result is monotone non-decreasing
    /// in `attempt` and never exceeds `max_backoff_ns`, for *any*
    /// attempt count — the exponent clamps at
    /// [`Self::MAX_BACKOFF_SHIFT`] and the multiply saturates instead
    /// of wrapping.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let shift = (attempt - 1).min(Self::MAX_BACKOFF_SHIFT);
        self.base_backoff_ns
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ns)
    }

    /// Total virtual time spent backing off across `attempts` attempts,
    /// saturating at `u64::MAX` instead of wrapping when the per-attempt
    /// cap is set astronomically high.
    pub fn total_backoff_ns(&self, attempts: u32) -> u64 {
        (0..attempts).fold(0u64, |acc, a| acc.saturating_add(self.backoff_ns(a)))
    }

    /// Maximum number of attempts (initial + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_cap() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ns: 100,
            max_backoff_ns: 450,
        };
        assert_eq!(p.backoff_ns(0), 0);
        assert_eq!(p.backoff_ns(1), 100);
        assert_eq!(p.backoff_ns(2), 200);
        assert_eq!(p.backoff_ns(3), 400);
        assert_eq!(p.backoff_ns(4), 450, "capped");
        assert_eq!(p.backoff_ns(63), 450, "no overflow at large attempts");
        assert_eq!(p.total_backoff_ns(3), 300);
        assert_eq!(p.max_attempts(), 11);
    }

    #[test]
    fn backoff_is_safe_and_monotone_at_extreme_attempts() {
        // Regression: an uncapped shift (`1u64 << (attempt - 1)`) or a
        // plain multiply would overflow long before these attempt
        // counts; the clamped exponent + saturating multiply must not.
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_ns: u64::MAX,
            max_backoff_ns: u64::MAX,
        };
        assert_eq!(p.backoff_ns(1), u64::MAX);
        assert_eq!(p.backoff_ns(u32::MAX), u64::MAX);

        // A tiny base with an uncapped ceiling saturates the doubling at
        // exactly `base << MAX_BACKOFF_SHIFT`.
        let q = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_ns: 3,
            max_backoff_ns: u64::MAX,
        };
        assert_eq!(
            q.backoff_ns(RetryPolicy::MAX_BACKOFF_SHIFT + 1),
            3u64 << RetryPolicy::MAX_BACKOFF_SHIFT
        );
        assert_eq!(
            q.backoff_ns(u32::MAX),
            3u64 << RetryPolicy::MAX_BACKOFF_SHIFT
        );
        // Monotone non-decreasing across the clamp boundary.
        let mut prev = 0;
        for attempt in 0..=(RetryPolicy::MAX_BACKOFF_SHIFT + 4) {
            let b = q.backoff_ns(attempt);
            assert!(b >= prev, "backoff regressed at attempt {attempt}");
            prev = b;
        }
    }

    #[test]
    fn total_backoff_saturates_instead_of_wrapping() {
        // Regression: `Iterator::sum` would panic (debug) or wrap
        // (release) once two near-MAX backoffs are added.
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ns: u64::MAX,
            max_backoff_ns: u64::MAX,
        };
        assert_eq!(p.total_backoff_ns(4), u64::MAX);
        // And the saturated total is still monotone in attempts.
        assert!(p.total_backoff_ns(2) <= p.total_backoff_ns(3));
    }

    #[test]
    fn no_retries_fails_fast() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.total_backoff_ns(1), 0);
    }
}
