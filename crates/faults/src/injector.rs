//! The seeded injector and the typed recovery log.

use crate::plan::FaultPlan;
use crate::site::FaultSite;
use horse_sim::rng::SeedFactory;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Handle to one injected fault, used to attach its recovery outcome to
/// the log entry created at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultId(u64);

impl FaultId {
    /// Position of the fault in the injection sequence (0-based).
    pub fn seq(self) -> u64 {
        self.0
    }
}

/// How an injected fault was recovered — the typed vocabulary the chaos
/// soak audits ("every injected fault mapped to a typed recovery
/// outcome").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryOutcome {
    /// Injected but not yet resolved; the soak treats any record left in
    /// this state as a bug in the recovery wiring.
    Unresolved,
    /// A HORSE resume detected a bad plan via `check_consistent` and
    /// fell back to the vanilla sorted merge, paying `penalty_ns` over
    /// the fast path.
    FellBackToVanillaMerge {
        /// Extra latency versus the intact fast path, in virtual ns.
        penalty_ns: u64,
    },
    /// Straggling or dead splice threads were abandoned at the watchdog
    /// budget and the remaining splice points completed sequentially.
    StragglerRescued {
        /// Splice points completed by the sequential rescue pass.
        rescued_splices: u64,
    },
    /// Poisoned coalescing factors failed validation; step ⑤ reverted to
    /// per-vCPU load updates.
    CoalesceBypassed {
        /// vCPUs updated the slow way.
        vcpus: u64,
    },
    /// A sandbox crash was contained: partial pause/resume state was
    /// rolled back and the sandbox destroyed cleanly.
    CrashContained {
        /// `true` if the crash hit mid-resume, `false` mid-pause.
        mid_resume: bool,
    },
    /// An invalid pool entry (or crash-destroyed sandbox) was
    /// quarantined out of the warm pool.
    EntryQuarantined {
        /// Whether a replacement was successfully re-provisioned.
        reprovisioned: bool,
        /// Provisioning attempts consumed by the retry policy.
        retries: u32,
    },
    /// A failed host was evacuated: its paused sandboxes' queues were
    /// rebalanced onto the survivors.
    HostEvacuated {
        /// Warm sandboxes re-provisioned onto surviving hosts.
        rebalanced: u64,
    },
}

impl RecoveryOutcome {
    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryOutcome::Unresolved => "UNRESOLVED",
            RecoveryOutcome::FellBackToVanillaMerge { .. } => "vanilla_merge_fallback",
            RecoveryOutcome::StragglerRescued { .. } => "straggler_rescued",
            RecoveryOutcome::CoalesceBypassed { .. } => "coalesce_bypassed",
            RecoveryOutcome::CrashContained { .. } => "crash_contained",
            RecoveryOutcome::EntryQuarantined { .. } => "entry_quarantined",
            RecoveryOutcome::HostEvacuated { .. } => "host_evacuated",
        }
    }
}

/// One injected fault and its resolution, in injection order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// Position in the injection sequence (0-based).
    pub seq: u64,
    /// Where the fault was injected.
    pub site: FaultSite,
    /// 1-based arrival number at the site when it fired.
    pub arrival: u64,
    /// How the pipeline recovered.
    pub outcome: RecoveryOutcome,
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    rngs: [StdRng; FaultSite::COUNT],
    arrivals: [u64; FaultSite::COUNT],
    injected: [u64; FaultSite::COUNT],
    log: Vec<FaultRecord>,
}

/// The seeded, deterministic fault-injection plane.
///
/// Mirrors the `Recorder` idiom from `horse-telemetry`: a cheap-clone
/// handle that is **disabled by default**, so production call sites pay
/// one `Option` check when chaos is off. Clones share all state — the
/// per-site arrival counters, the per-site RNG streams, and the ordered
/// fault log — so an injector threaded through `vmm`, `faas`, and
/// `cluster` produces one global, replayable injection sequence.
///
/// Determinism: each site draws from its own stream derived from
/// `(seed, site label)` via [`SeedFactory`], and triggers consume exactly
/// one draw per arrival regardless of outcome, so two runs with the same
/// seed, plan, and arrival order inject identical fault sequences.
///
/// # Example
///
/// ```
/// use horse_faults::{FaultInjector, FaultPlan, FaultSite, FaultTrigger, RecoveryOutcome};
///
/// let plan = FaultPlan::new().with(FaultSite::CrashMidResume, FaultTrigger::Nth(2));
/// let inj = FaultInjector::new(42, plan);
/// assert!(inj.should_inject(FaultSite::CrashMidResume).is_none());
/// let fault = inj.should_inject(FaultSite::CrashMidResume).unwrap();
/// inj.resolve(fault, RecoveryOutcome::CrashContained { mid_resume: true });
/// assert_eq!(inj.injected_total(), 1);
/// assert_eq!(inj.unresolved(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl FaultInjector {
    /// The no-op injector every component starts with.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An armed injector: per-site streams derived from `seed`, firing
    /// per `plan`.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        let factory = SeedFactory::new(seed);
        let rngs = std::array::from_fn(|i| factory.stream(FaultSite::ALL[i].label()));
        Self {
            inner: Some(Arc::new(Mutex::new(Inner {
                plan,
                rngs,
                arrivals: [0; FaultSite::COUNT],
                injected: [0; FaultSite::COUNT],
                log: Vec::new(),
            }))),
        }
    }

    /// Whether this handle can ever inject.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reports an arrival at `site` and decides whether to inject.
    ///
    /// Returns a [`FaultId`] when the site fires; the recovery code must
    /// later [`resolve`](FaultInjector::resolve) it. Exactly one RNG draw
    /// is consumed per arrival (even for non-probabilistic triggers), so
    /// editing one site's trigger never shifts another site's stream.
    pub fn should_inject(&self, site: FaultSite) -> Option<FaultId> {
        let inner = self.inner.as_ref()?;
        let mut g = inner.lock();
        let i = site.index();
        g.arrivals[i] += 1;
        let arrival = g.arrivals[i];
        let coin: f64 = g.rngs[i].gen();
        if !g.plan.trigger(site).fires(arrival, coin) {
            return None;
        }
        g.injected[i] += 1;
        let seq = g.log.len() as u64;
        g.log.push(FaultRecord {
            seq,
            site,
            arrival,
            outcome: RecoveryOutcome::Unresolved,
        });
        Some(FaultId(seq))
    }

    /// Attaches the recovery outcome to an injected fault.
    ///
    /// # Panics
    ///
    /// Panics if the id does not come from this injector's log (a wiring
    /// bug, not a runtime condition).
    pub fn resolve(&self, fault: FaultId, outcome: RecoveryOutcome) {
        let inner = self
            .inner
            .as_ref()
            .expect("resolve called on a disabled injector");
        let mut g = inner.lock();
        let rec = g
            .log
            .get_mut(fault.0 as usize)
            .expect("fault id out of range");
        rec.outcome = outcome;
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().injected.iter().sum())
    }

    /// Faults injected at one site.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().injected[site.index()])
    }

    /// Arrivals observed at one site (injected or not).
    pub fn arrivals_at(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().arrivals[site.index()])
    }

    /// Number of injected faults still [`RecoveryOutcome::Unresolved`].
    pub fn unresolved(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.lock()
                .log
                .iter()
                .filter(|r| matches!(r.outcome, RecoveryOutcome::Unresolved))
                .count() as u64
        })
    }

    /// Snapshot of the ordered fault log.
    pub fn log(&self) -> Vec<FaultRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.lock().log.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultTrigger;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for site in FaultSite::ALL {
            assert!(inj.should_inject(site).is_none());
        }
        assert_eq!(inj.injected_total(), 0);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn armed_plan_with_never_triggers_stays_quiet() {
        let inj = FaultInjector::new(7, FaultPlan::new());
        for _ in 0..100 {
            assert!(inj.should_inject(FaultSite::CrashMidPause).is_none());
        }
        assert_eq!(inj.arrivals_at(FaultSite::CrashMidPause), 100);
        assert_eq!(inj.injected_total(), 0);
    }

    #[test]
    fn nth_and_once_fire_on_schedule() {
        let plan = FaultPlan::new()
            .with(FaultSite::ResumePlanStale, FaultTrigger::Nth(3))
            .with(FaultSite::HostFailure, FaultTrigger::Once(2));
        let inj = FaultInjector::new(1, plan);
        let fired: Vec<bool> = (0..9)
            .map(|_| inj.should_inject(FaultSite::ResumePlanStale).is_some())
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert!(inj.should_inject(FaultSite::HostFailure).is_none());
        assert!(inj.should_inject(FaultSite::HostFailure).is_some());
        assert!(inj.should_inject(FaultSite::HostFailure).is_none());
        assert_eq!(inj.injected_at(FaultSite::ResumePlanStale), 3);
        assert_eq!(inj.injected_at(FaultSite::HostFailure), 1);
    }

    #[test]
    fn same_seed_replays_identical_sequences() {
        let run = |seed| {
            let inj = FaultInjector::new(seed, FaultPlan::uniform(0.3));
            let mut fired = Vec::new();
            for i in 0..200u64 {
                let site = FaultSite::ALL[(i % 9) as usize];
                fired.push(inj.should_inject(site).is_some());
            }
            fired
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn clones_share_state() {
        let inj = FaultInjector::new(
            5,
            FaultPlan::new().with(FaultSite::PoolEntryInvalid, FaultTrigger::Nth(2)),
        );
        let clone = inj.clone();
        assert!(clone.should_inject(FaultSite::PoolEntryInvalid).is_none());
        assert!(inj.should_inject(FaultSite::PoolEntryInvalid).is_some());
        assert_eq!(clone.injected_total(), 1);
    }

    #[test]
    fn resolve_replaces_unresolved() {
        let inj = FaultInjector::new(
            9,
            FaultPlan::new().with(FaultSite::CoalescePoisoned, FaultTrigger::Once(1)),
        );
        let fault = inj.should_inject(FaultSite::CoalescePoisoned).unwrap();
        assert_eq!(inj.unresolved(), 1);
        inj.resolve(fault, RecoveryOutcome::CoalesceBypassed { vcpus: 4 });
        assert_eq!(inj.unresolved(), 0);
        let log = inj.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].site, FaultSite::CoalescePoisoned);
        assert_eq!(log[0].arrival, 1);
        assert_eq!(
            log[0].outcome,
            RecoveryOutcome::CoalesceBypassed { vcpus: 4 }
        );
    }
}
